//! The request scheduler: quota admission → weighted-fair queue →
//! worker pool → micro-batched dispatch.
//!
//! [`serve_requests`] is deliberately *phase-structured* (admit
//! everything, then drain with a fixed pool over
//! [`std::thread::scope`]) so that the admission outcome — including
//! every quota, backpressure, and load-shedding decision — is a pure
//! function of `(requests, config)` and never of worker timing: the
//! determinism contract in the crate docs. Submissions advance a
//! simulated clock by [`ServeConfig::arrival_interval_ms`] per request,
//! which is the timeline token buckets refill on and outage windows are
//! evaluated against.
//!
//! Admission, in order, per request:
//!
//! 1. **Quota.** If a [`TenantPolicy`] applies, the tenant's token
//!    bucket must cover one job; otherwise the request is
//!    [`ServeError::Throttled`] with the exact refill wait.
//! 2. **Load shedding.** Inside a [`ShedPolicy`] outage window the
//!    effective queue capacity drops to `degraded_capacity`. An
//!    over-capacity arrival is shed ([`ServeError::Shed`], retry hint =
//!    window end) — unless it outranks the lowest backlogged class, in
//!    which case the *youngest lowest-class* queued job is displaced
//!    (one for one) and shed in its place.
//! 3. **Backpressure.** Outside outages a full queue rejects with the
//!    classic depth-scaled [`ServeError::Rejected`] hint.
//!
//! Draining replaces the old FIFO `pop_batch` with the
//! [`QosQueue`]'s credit-based weighted-fair dequeue (4:2:1 across
//! [`Priority`] classes, starvation-free), coalescing same-`batch_key`
//! jobs up to `max_batch` per dispatch. The *sequence* of batches is
//! deterministic; which worker runs each batch is not, and result
//! slotting makes that invisible.
//!
//! Continuous-admission serving is the same machinery with producers
//! and consumers running concurrently against the same queue; the
//! phased form is what the reproducible experiments and benches need.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use llmdm_obs::{TraceContext, WindowHandle};
use llmdm_resil::SimClock;

use crate::qos::{QosItem, QosQueue};
use crate::queue::ServeError;
use crate::request::ServeRequest;
use crate::stream::StreamHandle;
use crate::tenant::{
    Priority, ShedPolicy, TenantId, TenantPolicies, TenantPolicy, TenantStats, TokenBucket,
    MILLI_PER_JOB,
};

/// Scheduler configuration.
///
/// Construct via [`ServeConfig::builder`] for build-time validation
/// (zero workers / capacity / batch are typed
/// [`ServeError::InvalidConfig`] errors instead of scheduler panics);
/// the plain struct literal with `..Default::default()` remains
/// available for tests and call sites that want the old ergonomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Fixed worker-pool size (clamped to ≥ 1).
    pub workers: usize,
    /// Queue capacity == admission high-water mark: submissions past
    /// this depth are rejected with backpressure.
    pub queue_capacity: usize,
    /// Micro-batch ceiling: a worker coalesces up to this many
    /// same-key jobs per dispatch.
    pub max_batch: usize,
    /// Base seed for per-request stream ids.
    pub seed: u64,
    /// Simulated milliseconds between consecutive submissions — the
    /// timeline token buckets refill on and outage windows are checked
    /// against. 0 (the default) submits the whole load at t=0: quotas
    /// then admit exactly each tenant's burst.
    pub arrival_interval_ms: u64,
    /// Per-tenant rate quotas. Empty (the default) disables quota
    /// admission entirely.
    pub policies: TenantPolicies,
    /// Outage-driven load-shedding policy. No windows (the default)
    /// disables shedding.
    pub shed: ShedPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            queue_capacity: 1024,
            max_batch: 8,
            seed: 0,
            arrival_interval_ms: 0,
            policies: TenantPolicies::default(),
            shed: ShedPolicy::default(),
        }
    }
}

impl ServeConfig {
    /// Start a fluent validated builder (defaults match
    /// [`ServeConfig::default`]).
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder { config: ServeConfig::default() }
    }
}

/// Fluent validating builder for [`ServeConfig`]; see
/// [`ServeConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Worker-pool size (must be ≥ 1 at build time).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Queue capacity / admission high-water mark (must be ≥ 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Micro-batch ceiling (must be ≥ 1).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Base seed for stream ids.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Simulated ms between consecutive submissions.
    pub fn arrival_interval_ms(mut self, ms: u64) -> Self {
        self.config.arrival_interval_ms = ms;
        self
    }

    /// Quota policy applied to tenants without an explicit entry.
    pub fn default_policy(mut self, policy: TenantPolicy) -> Self {
        self.config.policies.default_policy = Some(policy);
        self
    }

    /// Quota policy override for one tenant.
    pub fn tenant_policy(mut self, tenant: impl Into<String>, policy: TenantPolicy) -> Self {
        self.config.policies.per_tenant.insert(tenant.into(), policy);
        self
    }

    /// Outage-driven load-shedding policy.
    pub fn shed(mut self, shed: ShedPolicy) -> Self {
        self.config.shed = shed;
        self
    }

    /// Validate and build. Zero workers / capacity / batch and
    /// zero-burst quota policies are typed
    /// [`ServeError::InvalidConfig`] errors.
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        let c = &self.config;
        if c.workers == 0 {
            return Err(ServeError::InvalidConfig { reason: "workers must be >= 1".to_string() });
        }
        if c.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "queue_capacity must be >= 1".to_string(),
            });
        }
        if c.max_batch == 0 {
            return Err(ServeError::InvalidConfig { reason: "max_batch must be >= 1".to_string() });
        }
        let zero_burst = c
            .policies
            .default_policy
            .iter()
            .map(|p| ("<default>", p))
            .chain(c.policies.per_tenant.iter().map(|(t, p)| (t.as_str(), p)))
            .find(|(_, p)| p.burst == 0);
        if let Some((tenant, _)) = zero_burst {
            return Err(ServeError::InvalidConfig {
                reason: format!("tenant policy `{tenant}` has zero burst (admits nothing)"),
            });
        }
        Ok(self.config)
    }
}

/// One scheduled request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job<P> {
    /// Submission index (0-based): results are reported under this id.
    pub id: u64,
    /// Seeded per-request stream id — the deterministic substitute for
    /// "whatever randomness the serving layer needs" (chunk boundaries,
    /// tie-breaking, downstream nonces). Depends only on `(seed, id)`.
    pub stream_id: u64,
    /// The tenant this job bills against.
    pub tenant: TenantId,
    /// QoS priority class (weighted-fair dequeue, shed order).
    pub priority: Priority,
    /// Batching class: only jobs of equal class coalesce into one
    /// dispatch (e.g. one model tier, one task family).
    pub class: String,
    /// Request-scoped trace context, captured at admission: trace id is
    /// `stream_id` (clamped off 0), parent span is the job's
    /// `serve.admit` span. A [`serve_jobs`] handler attaches it so
    /// worker-side spans stitch into the request's flame tree.
    pub trace: TraceContext,
    /// The request payload handed to the handler.
    pub payload: P,
}

impl<P> QosItem for Job<P> {
    fn priority(&self) -> Priority {
        self.priority
    }
    fn batch_key(&self) -> &str {
        &self.class
    }
}

/// What happened to one submitted job.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition<T, E> {
    /// Dispatched to a worker; carries the handler's result.
    Done(Result<T, E>),
    /// Refused by admission control (backpressure, quota) or dropped by
    /// load-shedding before reaching a worker.
    Rejected(ServeError),
}

impl<T, E> Disposition<T, E> {
    /// The successful result, if any.
    pub fn ok(&self) -> Option<&T> {
        match self {
            Disposition::Done(Ok(v)) => Some(v),
            _ => None,
        }
    }

    /// Whether this job never reached a worker (rejected, throttled, or
    /// shed).
    pub fn is_rejected(&self) -> bool {
        matches!(self, Disposition::Rejected(_))
    }
}

/// Aggregate accounting for one serve run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs dispatched to a worker.
    pub admitted: u64,
    /// Jobs refused up front (queue backpressure or quota).
    pub rejected: u64,
    /// Jobs dropped by load-shedding (degraded-capacity overflow or
    /// displacement).
    pub shed: u64,
    /// Handler dispatches (each covers ≥ 1 job).
    pub batches: u64,
    /// Largest coalesced batch observed.
    pub largest_batch: usize,
    /// Jobs processed per worker (index = worker ordinal). Under one
    /// worker this is the whole admitted load; under N workers the split
    /// is timing-dependent but always sums to `admitted`.
    pub per_worker_jobs: Vec<u64>,
    /// Per-tenant outcome accounting; every row satisfies
    /// `admitted + rejected + shed == submitted`.
    pub per_tenant: BTreeMap<String, TenantStats>,
}

impl ServeStats {
    /// Whether every per-tenant row and the global tallies reconcile
    /// exactly (`admitted + rejected + shed == submitted`).
    pub fn reconciles(&self) -> bool {
        self.admitted + self.rejected + self.shed == self.submitted
            && self.per_tenant.values().all(TenantStats::reconciles)
            && self.per_tenant.values().map(|t| t.submitted).sum::<u64>() == self.submitted
    }
}

/// Everything one serve run produced.
#[derive(Debug)]
pub struct ServeRun<T, E> {
    /// Per-job outcome, indexed by submission order.
    pub results: Vec<Disposition<T, E>>,
    /// Aggregate counters.
    pub stats: ServeStats,
}

impl<T, E> ServeRun<T, E> {
    /// Successful results in submission order.
    pub fn successes(&self) -> impl Iterator<Item = (usize, &T)> {
        self.results.iter().enumerate().filter_map(|(i, d)| d.ok().map(|v| (i, v)))
    }
}

/// SplitMix64: the seeded id/route mixer (no process entropy).
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic per-request stream id for submission index `id`
/// under `seed`.
pub fn stream_id(seed: u64, id: u64) -> u64 {
    mix64(seed ^ mix64(id))
}

/// Record `usd` of spend for one job of `class` into the windowed
/// per-class dollar meter (`serve.dollars_usd`) and the run-total
/// counter. Call from handlers that know their per-call cost (e.g. a
/// metered model client) so the SLO window sees rolling spend per class.
pub fn record_job_cost(class: &str, usd: f64) {
    llmdm_obs::window_counter_add("serve.dollars_usd", class, usd);
    llmdm_obs::counter_add("serve.dollars_usd", usd);
}

/// Run typed [`ServeRequest`]s through a pool of `config.workers`
/// threads with quota admission, weighted-fair dequeue, and outage
/// load-shedding — the primary entry point of the redesigned API.
///
/// The handler receives `(batch_key, jobs)` for one coalesced batch and
/// must return exactly one result per job, in order. It must be a pure
/// function of each job for the N-worker determinism contract to hold
/// (shared substrates — caches, meters — may be bumped; they reconcile
/// by construction).
pub fn serve_requests<P, T, E, F>(
    config: &ServeConfig,
    requests: Vec<ServeRequest<P>>,
    handler: F,
) -> ServeRun<T, E>
where
    P: Send,
    T: Send,
    E: Send,
    F: Fn(&str, &[Job<P>]) -> Vec<Result<T, E>> + Sync,
{
    serve_requests_core(config, requests, |class, batch: Vec<Job<P>>| {
        let outs = handler(class, &batch);
        assert_eq!(outs.len(), batch.len(), "handler must return one result per job");
        batch.iter().map(|j| j.id).zip(outs).collect()
    })
}

/// [`serve_requests`] for text completions, wrapping every successful
/// result in a deterministic [`StreamHandle`]: chunk boundaries depend
/// only on `(final text, stream id)`, so consumers observe the
/// identical prefix sequence at any worker count.
pub fn serve_requests_streaming<P, E, F>(
    config: &ServeConfig,
    requests: Vec<ServeRequest<P>>,
    handler: F,
) -> ServeRun<StreamHandle, E>
where
    P: Send,
    E: Send,
    F: Fn(&str, &[Job<P>]) -> Vec<Result<String, E>> + Sync,
{
    serve_requests(config, requests, |class, batch: &[Job<P>]| {
        handler(class, batch)
            .into_iter()
            .zip(batch)
            .map(|(out, job)| out.map(|text| StreamHandle::new(text, job.stream_id)))
            .collect()
    })
}

/// The tenant every tuple-era submission bills against.
fn legacy_tenant() -> TenantId {
    TenantId::new("default").expect("literal is non-empty")
}

/// Convert old-style `(class, payload)` tuples into [`ServeRequest`]s:
/// tenant `default`, [`Priority::Standard`], batch key = the class
/// string (unvalidated, preserving historical behavior exactly).
fn legacy_requests<P>(jobs: Vec<(String, P)>) -> Vec<ServeRequest<P>> {
    let tenant = legacy_tenant();
    jobs.into_iter()
        .map(|(class, payload)| ServeRequest {
            tenant: tenant.clone(),
            class: Priority::Standard,
            batch_key: class,
            payload,
        })
        .collect()
}

/// Run `jobs` (as `(class, payload)` pairs, in submission order) through
/// the scheduler — the pre-QoS tuple API, kept as a thin adapter.
///
/// Every job bills against tenant `default` at [`Priority::Standard`],
/// which makes the QoS queue degenerate to exactly the old FIFO +
/// coalescing behavior (same admission outcomes, same retry hints, same
/// batches). New code should build typed requests and call
/// [`serve_requests`].
#[deprecated(
    since = "0.1.0",
    note = "use `serve_requests` with typed `ServeRequest`s built via `ServeRequest::builder`"
)]
pub fn serve<P, T, E, F>(config: &ServeConfig, jobs: Vec<(String, P)>, handler: F) -> ServeRun<T, E>
where
    P: Send,
    T: Send,
    E: Send,
    F: Fn(&str, &[P]) -> Vec<Result<T, E>> + Sync,
{
    serve_requests_core(config, legacy_requests(jobs), |class, batch: Vec<Job<P>>| {
        let ids: Vec<u64> = batch.iter().map(|j| j.id).collect();
        let payloads: Vec<P> = batch.into_iter().map(|j| j.payload).collect();
        let outs = handler(class, &payloads);
        assert_eq!(outs.len(), payloads.len(), "handler must return one result per payload");
        ids.into_iter().zip(outs).collect()
    })
}

/// The tuple-input variant of [`serve_requests`]: the handler receives
/// the full [`Job`]s of one coalesced batch (ids, stream ids, trace
/// contexts) instead of bare payloads.
///
/// This is the trace-aware entry point for callers still on the tuple
/// surface: a handler that wraps each job's work in
/// `let _g = job.trace.attach();` gets its spans stitched into that
/// request's flame tree regardless of which worker ran it. Same
/// adapter semantics as [`serve`] (tenant `default`, standard class).
pub fn serve_jobs<P, T, E, F>(
    config: &ServeConfig,
    jobs: Vec<(String, P)>,
    handler: F,
) -> ServeRun<T, E>
where
    P: Send,
    T: Send,
    E: Send,
    F: Fn(&str, &[Job<P>]) -> Vec<Result<T, E>> + Sync,
{
    serve_requests(config, legacy_requests(jobs), handler)
}

/// The shared machinery behind every entry point: quota + shedding
/// admission (which mints each job's [`TraceContext`] under its
/// `serve.admit` span), the weighted-fair queue, the worker pool,
/// micro-batch spans, windowed per-class and per-tenant telemetry, and
/// result slotting. `dispatch` consumes one coalesced batch and returns
/// `(job id, result)` pairs.
fn serve_requests_core<P, T, E, D>(
    config: &ServeConfig,
    requests: Vec<ServeRequest<P>>,
    dispatch: D,
) -> ServeRun<T, E>
where
    P: Send,
    T: Send,
    E: Send,
    D: Fn(&str, Vec<Job<P>>) -> Vec<(u64, Result<T, E>)> + Sync,
{
    let mut span = llmdm_obs::span("serve.run");
    let workers = config.workers.max(1);
    let queue: QosQueue<Job<P>> = QosQueue::new(config.queue_capacity);
    let clock = SimClock::new();

    let submitted = requests.len() as u64;
    let mut results: Vec<Option<Disposition<T, E>>> = Vec::with_capacity(requests.len());
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    let mut shed = 0u64;
    let mut tenants: BTreeMap<String, TenantStats> = BTreeMap::new();
    let mut buckets: BTreeMap<String, TokenBucket> = BTreeMap::new();

    // ---- Phase 1: admission, in submission order. --------------------
    // Single-threaded, so every quota/shed/backpressure decision — and
    // the simulated clock they run on — is a pure function of the
    // submission sequence, independent of worker count.
    let telemetry = llmdm_obs::is_enabled();
    let mut depth_wins: BTreeMap<String, WindowHandle<'static>> = BTreeMap::new();
    for (i, req) in requests.into_iter().enumerate() {
        if i > 0 {
            clock.advance(config.arrival_interval_ms);
        }
        let now = clock.now_ms();
        let id = i as u64;
        let sid = stream_id(config.seed, id);
        let ctx = TraceContext::root(sid.max(1));
        let guard = ctx.attach();
        let mut aspan = llmdm_obs::span("serve.admit");
        if aspan.is_recording() {
            aspan.field("id", id);
            aspan.field("class", req.batch_key.as_str());
            aspan.field("tenant", req.tenant.as_str());
            aspan.field("priority", req.class.label());
        }
        let tenant_key = req.tenant.as_str().to_string();
        tenants.entry(tenant_key.clone()).or_default().submitted += 1;

        // 1. Quota: the tenant's bucket must cover one job.
        let throttled = match config.policies.policy_for(&tenant_key) {
            Some(policy) => {
                let bucket = buckets
                    .entry(tenant_key.clone())
                    .or_insert_with(|| TokenBucket::new(policy, now));
                bucket.try_take(MILLI_PER_JOB, now).err()
            }
            None => None,
        };
        if let Some(retry_after_ms) = throttled {
            rejected += 1;
            tenants.get_mut(&tenant_key).expect("entry created above").rejected += 1;
            aspan.field("admitted", false);
            if telemetry {
                llmdm_obs::window_counter_add("serve.tenant.rejected", &tenant_key, 1.0);
            }
            results.push(Some(Disposition::Rejected(ServeError::Throttled {
                tenant: tenant_key,
                retry_after_ms,
            })));
            drop(aspan);
            drop(guard);
            continue;
        }

        let job = Job {
            id,
            stream_id: sid,
            tenant: req.tenant,
            priority: req.class,
            class: req.batch_key,
            trace: ctx.at(&aspan),
            payload: req.payload,
        };
        let class_key = job.class.clone();

        // 2. Load shedding: inside an outage window the effective
        // capacity shrinks; overflow is shed lowest class first.
        let outage_end = config.shed.outage_end(now);
        let effective_capacity = match outage_end {
            Some(_) => config.shed.degraded_capacity.min(config.queue_capacity),
            None => config.queue_capacity,
        };
        let outcome = if outage_end.is_some() && queue.len() >= effective_capacity {
            let retry_after_ms = outage_end.expect("checked above").saturating_sub(now).max(1);
            let displaceable = queue
                .lowest_backlogged()
                .is_some_and(|lowest| job.priority.rank() < lowest.rank());
            if displaceable {
                // Displace the youngest job of the lowest backlogged
                // class: its admission is retroactively converted to a
                // shed, and the higher-priority arrival takes its seat.
                let victim = queue.evict_lowest().expect("lowest_backlogged was Some");
                admitted -= 1;
                shed += 1;
                let vt = tenants
                    .get_mut(victim.tenant.as_str())
                    .expect("victim was accounted at its own admission");
                vt.admitted -= 1;
                vt.shed += 1;
                if telemetry {
                    llmdm_obs::window_counter_add(
                        "serve.tenant.shed",
                        victim.tenant.as_str(),
                        1.0,
                    );
                }
                results[victim.id as usize] = Some(Disposition::Rejected(ServeError::Shed {
                    class: victim.priority,
                    retry_after_ms,
                }));
                queue.try_push(job)
            } else {
                Err(ServeError::Shed { class: job.priority, retry_after_ms })
            }
        } else {
            // 3. Plain backpressure (the pre-QoS admission path).
            queue.try_push(job)
        };

        if telemetry {
            depth_wins
                .entry(class_key.clone())
                .or_insert_with(|| llmdm_obs::window("serve.queue_depth", &class_key))
                .observe(queue.len() as f64);
        }
        match outcome {
            Ok(()) => {
                admitted += 1;
                tenants.get_mut(&tenant_key).expect("entry created above").admitted += 1;
                aspan.field("admitted", true);
                if telemetry {
                    llmdm_obs::window_counter_add("serve.tenant.admitted", &tenant_key, 1.0);
                }
                results.push(None);
            }
            Err(e) => {
                let t = tenants.get_mut(&tenant_key).expect("entry created above");
                if matches!(e, ServeError::Shed { .. }) {
                    shed += 1;
                    t.shed += 1;
                    if telemetry {
                        llmdm_obs::window_counter_add("serve.tenant.shed", &tenant_key, 1.0);
                    }
                } else {
                    rejected += 1;
                    t.rejected += 1;
                    if telemetry {
                        llmdm_obs::window_counter_add("serve.tenant.rejected", &tenant_key, 1.0);
                    }
                }
                aspan.field("admitted", false);
                results.push(Some(Disposition::Rejected(e)));
            }
        }
        drop(aspan);
        drop(guard);
    }
    queue.close();
    llmdm_obs::counter_add("serve.jobs.admitted", admitted as f64);
    llmdm_obs::counter_add("serve.jobs.rejected", rejected as f64);
    llmdm_obs::counter_add("serve.jobs.shed", shed as f64);

    // ---- Phase 2: drain with the fixed pool. -------------------------
    let slots = Mutex::new(&mut results);
    let batches = AtomicU64::new(0);
    let largest = AtomicUsize::new(0);
    let per_worker: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queue = &queue;
                let dispatch = &dispatch;
                let slots = &slots;
                let batches = &batches;
                let largest = &largest;
                s.spawn(move || {
                    let mut processed = 0u64;
                    // Per-class latency windows, cached per worker so the
                    // hot loop never takes the registry lock.
                    let mut lat_wins: BTreeMap<String, WindowHandle<'static>> = BTreeMap::new();
                    while let Some(batch) = queue.pop_batch(config.max_batch) {
                        let mut bspan = llmdm_obs::span("serve.batch");
                        let class = batch[0].class.clone();
                        let size = batch.len();
                        if bspan.is_recording() {
                            bspan.field("class", class.as_str());
                            bspan.field("priority", batch[0].priority.label());
                            bspan.field("size", size);
                            bspan.field("worker", w);
                            // Joinable against per-request traces: which
                            // submissions this dispatch covered.
                            let ids: Vec<String> =
                                batch.iter().map(|j| j.id.to_string()).collect();
                            bspan.field("ids", ids.join(","));
                        }
                        let telemetry = llmdm_obs::is_enabled();
                        let t0 = telemetry.then(Instant::now);
                        let outs = dispatch(&class, batch);
                        assert_eq!(outs.len(), size, "dispatch must return one result per job");
                        if let Some(t0) = t0 {
                            let ms = t0.elapsed().as_secs_f64() * 1e3;
                            let win = lat_wins.entry(class.clone()).or_insert_with(|| {
                                llmdm_obs::window("serve.batch_latency_ms", &class)
                            });
                            // One observation per job, so per-class rates
                            // compare across batch sizes.
                            for _ in 0..size {
                                win.observe(ms / size as f64);
                            }
                        }
                        batches.fetch_add(1, Ordering::Relaxed);
                        largest.fetch_max(size, Ordering::Relaxed);
                        processed += size as u64;
                        let mut guard = llmdm_rt::lock_recover(&slots);
                        for (id, out) in outs {
                            guard[id as usize] = Some(Disposition::Done(out));
                        }
                    }
                    processed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let stats = ServeStats {
        submitted,
        admitted,
        rejected,
        shed,
        batches: batches.into_inner(),
        largest_batch: largest.into_inner(),
        per_worker_jobs: per_worker,
        per_tenant: tenants,
    };
    debug_assert!(stats.reconciles(), "admission accounting must reconcile: {stats:?}");
    llmdm_obs::counter_add("serve.batches", stats.batches as f64);
    if span.is_recording() {
        span.field("workers", workers);
        span.field("submitted", stats.submitted);
        span.field("admitted", stats.admitted);
        span.field("rejected", stats.rejected);
        span.field("shed", stats.shed);
        span.field("batches", stats.batches);
    }

    let results = results
        .into_iter()
        .map(|slot| slot.expect("every admitted job is processed before scope exit"))
        .collect();
    ServeRun { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_resil::Window;

    fn echo_jobs(n: usize) -> Vec<(String, u64)> {
        (0..n as u64).map(|i| (if i % 2 == 0 { "even" } else { "odd" }.to_string(), i)).collect()
    }

    fn echo_requests(n: usize) -> Vec<ServeRequest<u64>> {
        (0..n as u64)
            .map(|i| {
                ServeRequest::builder(format!("tenant-{}", i % 3), i)
                    .class(match i % 3 {
                        0 => Priority::Interactive,
                        1 => Priority::Standard,
                        _ => Priority::Batch,
                    })
                    .batch_key(if i % 2 == 0 { "even" } else { "odd" })
                    .build()
                    .unwrap()
            })
            .collect()
    }

    fn echo_handler(class: &str, batch: &[u64]) -> Vec<Result<String, ServeError>> {
        batch.iter().map(|v| Ok(format!("{class}:{v}"))).collect()
    }

    fn echo_jobs_handler(class: &str, batch: &[Job<u64>]) -> Vec<Result<String, ServeError>> {
        batch.iter().map(|j| Ok(format!("{class}:{}", j.payload))).collect()
    }

    #[test]
    #[allow(deprecated)]
    fn single_worker_matches_direct_loop() {
        let cfg = ServeConfig { workers: 1, ..Default::default() };
        let run = serve(&cfg, echo_jobs(20), echo_handler);
        assert_eq!(run.stats.admitted, 20);
        assert_eq!(run.stats.rejected, 0);
        for (i, d) in run.results.iter().enumerate() {
            let class = if i % 2 == 0 { "even" } else { "odd" };
            assert_eq!(d.ok().unwrap(), &format!("{class}:{i}"));
        }
        assert_eq!(run.stats.per_worker_jobs, vec![20]);
        // The tuple adapter bills everything to the `default` tenant.
        assert_eq!(run.stats.per_tenant["default"].submitted, 20);
        assert!(run.stats.reconciles());
    }

    #[test]
    fn n_workers_same_result_set() {
        let base = serve_requests(&ServeConfig::default(), echo_requests(64), echo_jobs_handler);
        for workers in [2, 4, 8] {
            let cfg = ServeConfig { workers, ..Default::default() };
            let run = serve_requests(&cfg, echo_requests(64), echo_jobs_handler);
            assert_eq!(run.results, base.results, "workers={workers}");
            assert_eq!(run.stats.per_tenant, base.stats.per_tenant, "workers={workers}");
            assert_eq!(run.stats.per_worker_jobs.len(), workers);
            assert_eq!(run.stats.per_worker_jobs.iter().sum::<u64>(), 64);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn admission_rejects_deterministically() {
        let cfg = ServeConfig { workers: 2, queue_capacity: 10, ..Default::default() };
        let run = serve(&cfg, echo_jobs(25), echo_handler);
        assert_eq!(run.stats.admitted, 10);
        assert_eq!(run.stats.rejected, 15);
        // Exactly the first `capacity` submissions are admitted.
        for (i, d) in run.results.iter().enumerate() {
            assert_eq!(d.is_rejected(), i >= 10, "job {i}");
        }
        // Rejections carry a usable retry hint.
        match &run.results[10] {
            Disposition::Rejected(e @ ServeError::Rejected { retry_after_ms, .. }) => {
                assert!(e.is_retryable());
                assert!(*retry_after_ms > 0);
                assert_eq!(e.retry_after_ms(), Some(*retry_after_ms));
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    #[allow(deprecated)]
    fn batches_coalesce_only_same_class() {
        let seen = Mutex::new(Vec::new());
        let cfg = ServeConfig { workers: 1, max_batch: 8, ..Default::default() };
        let run = serve(&cfg, echo_jobs(16), |class: &str, batch: &[u64]| {
            llmdm_rt::lock_recover(&seen).push((class.to_string(), batch.to_vec()));
            batch.iter().map(|v| Ok::<u64, ServeError>(*v)).collect()
        });
        assert_eq!(run.stats.admitted, 16);
        let seen = seen.into_inner().unwrap();
        assert_eq!(run.stats.batches as usize, seen.len());
        assert!(run.stats.largest_batch > 1, "coalescing must happen: {seen:?}");
        for (class, batch) in &seen {
            assert!(batch.len() <= 8);
            let want = if class == "even" { 0 } else { 1 };
            assert!(batch.iter().all(|v| v % 2 == want), "mixed batch {class}: {batch:?}");
        }
    }

    #[test]
    fn stream_ids_are_seeded_and_stable() {
        assert_eq!(stream_id(42, 0), stream_id(42, 0));
        assert_ne!(stream_id(42, 0), stream_id(42, 1));
        assert_ne!(stream_id(42, 0), stream_id(43, 0));
    }

    #[test]
    fn serve_jobs_hands_over_identity() {
        let cfg = ServeConfig { workers: 2, seed: 42, ..Default::default() };
        let run: ServeRun<(u64, u64), ServeError> =
            serve_jobs(&cfg, echo_jobs(16), |_class, batch: &[Job<u64>]| {
                batch
                    .iter()
                    .map(|j| {
                        // Every queued job carries an active trace context
                        // whose id matches its stream id (mod the 0 clamp).
                        assert!(j.trace.is_active());
                        assert_eq!(j.trace.trace_id, j.stream_id.max(1));
                        assert_eq!(j.payload, j.id);
                        assert_eq!(j.tenant.as_str(), "default");
                        assert_eq!(j.priority, Priority::Standard);
                        Ok((j.id, j.stream_id))
                    })
                    .collect()
            });
        for (i, d) in run.results.iter().enumerate() {
            let (id, sid) = d.ok().unwrap();
            assert_eq!(*id, i as u64);
            assert_eq!(*sid, stream_id(42, i as u64));
        }
    }

    #[test]
    #[allow(deprecated)]
    fn batch_spans_carry_job_ids() {
        // Isolated recorder? Spans go to the global recorder, so filter
        // by a class name unique to this test instead.
        llmdm_obs::enable();
        let cfg = ServeConfig { workers: 1, max_batch: 4, ..Default::default() };
        let jobs: Vec<(String, u64)> =
            (0..6).map(|i| ("batch_ids_test".to_string(), i)).collect();
        let _run: ServeRun<u64, ServeError> =
            serve(&cfg, jobs, |_c, b: &[u64]| b.iter().map(|v| Ok(*v)).collect());
        let rep = llmdm_obs::snapshot();
        let mut covered: Vec<u64> = Vec::new();
        for s in rep.spans.iter().filter(|s| s.name == "serve.batch") {
            let is_ours = s.fields.iter().any(|(k, v)| {
                k == "class" && matches!(v, llmdm_obs::FieldValue::Str(c) if c == "batch_ids_test")
            });
            if !is_ours {
                continue;
            }
            let ids = s
                .fields
                .iter()
                .find_map(|(k, v)| {
                    (k == "ids").then(|| match v {
                        llmdm_obs::FieldValue::Str(s) => s.clone(),
                        other => other.to_string(),
                    })
                })
                .expect("batch span has ids field");
            covered.extend(ids.split(',').map(|t| t.parse::<u64>().unwrap()));
        }
        covered.sort_unstable();
        assert_eq!(covered, vec![0, 1, 2, 3, 4, 5], "batch ids cover every admitted job");
    }

    #[test]
    #[allow(deprecated)]
    fn handler_errors_surface_per_job() {
        let cfg = ServeConfig { workers: 2, ..Default::default() };
        let run: ServeRun<u64, String> =
            serve(&cfg, echo_jobs(10), |_class, batch: &[u64]| {
                batch
                    .iter()
                    .map(|v| if *v == 3 { Err("boom".to_string()) } else { Ok(*v) })
                    .collect()
            });
        for (i, d) in run.results.iter().enumerate() {
            match d {
                Disposition::Done(Ok(v)) => assert_eq!(*v, i as u64),
                Disposition::Done(Err(e)) => {
                    assert_eq!(i, 3);
                    assert_eq!(e, "boom");
                }
                Disposition::Rejected(_) => panic!("nothing should be rejected"),
            }
        }
    }

    #[test]
    fn config_builder_validates() {
        assert!(ServeConfig::builder().workers(4).queue_capacity(64).build().is_ok());
        for bad in [
            ServeConfig::builder().workers(0).build(),
            ServeConfig::builder().queue_capacity(0).build(),
            ServeConfig::builder().max_batch(0).build(),
            ServeConfig::builder()
                .tenant_policy("acme", TenantPolicy::per_sec(0, 10))
                .build(),
            ServeConfig::builder().default_policy(TenantPolicy::per_sec(0, 1)).build(),
        ] {
            match bad {
                Err(ServeError::InvalidConfig { reason }) => assert!(!reason.is_empty()),
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
        let cfg = ServeConfig::builder()
            .workers(2)
            .seed(7)
            .arrival_interval_ms(5)
            .tenant_policy("acme", TenantPolicy::per_sec(3, 100))
            .build()
            .unwrap();
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.policies.policy_for("acme").unwrap().burst, 3);
        assert_eq!(cfg.policies.policy_for("other"), None);
    }

    #[test]
    fn quota_throttles_past_burst_and_refills_on_the_sim_clock() {
        // Burst 2, 100 tokens/sec, arrivals every 5 ms: tokens refill at
        // 0.1/ms so a new token appears every 10 ms (every 2 arrivals).
        let cfg = ServeConfig::builder()
            .arrival_interval_ms(5)
            .tenant_policy("metered", TenantPolicy::per_sec(2, 100))
            .build()
            .unwrap();
        let requests: Vec<ServeRequest<u64>> = (0..10u64)
            .map(|i| ServeRequest::builder("metered", i).build().unwrap())
            .collect();
        let run = serve_requests(&cfg, requests, echo_jobs_handler);
        let t = &run.stats.per_tenant["metered"];
        assert!(t.reconciles());
        assert!(t.rejected > 0, "a 2-burst quota must throttle 10 rapid arrivals: {t:?}");
        assert!(t.admitted >= 2, "the burst itself must be admitted: {t:?}");
        // Throttle errors carry the exact refill wait.
        let hints: Vec<u64> = run
            .results
            .iter()
            .filter_map(|d| match d {
                Disposition::Rejected(ServeError::Throttled { retry_after_ms, .. }) => {
                    Some(*retry_after_ms)
                }
                _ => None,
            })
            .collect();
        assert_eq!(hints.len() as u64, t.rejected);
        assert!(hints.iter().all(|h| *h > 0 && *h < u64::MAX), "{hints:?}");
        // Unmetered tenants are untouched.
        let free: Vec<ServeRequest<u64>> =
            (0..10u64).map(|i| ServeRequest::builder("free", i).build().unwrap()).collect();
        let free_run = serve_requests(&cfg, free, echo_jobs_handler);
        assert_eq!(free_run.stats.per_tenant["free"].admitted, 10);
    }

    #[test]
    fn quota_outcome_is_identical_across_worker_counts() {
        let mk = |workers: usize| {
            let cfg = ServeConfig::builder()
                .workers(workers)
                .arrival_interval_ms(3)
                .default_policy(TenantPolicy::per_sec(4, 200))
                .build()
                .unwrap();
            let requests: Vec<ServeRequest<u64>> = (0..40u64)
                .map(|i| ServeRequest::builder(format!("t{}", i % 4), i).build().unwrap())
                .collect();
            serve_requests(&cfg, requests, echo_jobs_handler)
        };
        let base = mk(1);
        for workers in [2, 8] {
            let run = mk(workers);
            assert_eq!(run.results, base.results, "workers={workers}");
            assert_eq!(run.stats.per_tenant, base.stats.per_tenant);
        }
    }

    #[test]
    fn outage_sheds_inwindow_arrivals_with_window_hint() {
        // Arrivals every 10 ms; outage [100, 200); degraded capacity 0
        // sheds everything that arrives inside the window. Single class,
        // so no displacement can reshuffle the victims.
        let cfg = ServeConfig::builder()
            .arrival_interval_ms(10)
            .shed(ShedPolicy::new(vec![Window::new(100, 200)], 0))
            .build()
            .unwrap();
        let requests: Vec<ServeRequest<u64>> = (0..30u64)
            .map(|i| {
                ServeRequest::builder("acme", i)
                    .class(Priority::Standard)
                    .batch_key("k")
                    .build()
                    .unwrap()
            })
            .collect();
        let run = serve_requests(&cfg, requests, echo_jobs_handler);
        assert!(run.stats.reconciles());
        // Arrivals 10..=19 land at t in [100, 190] — all inside.
        assert_eq!(run.stats.shed, 10, "{:?}", run.stats);
        for (i, d) in run.results.iter().enumerate() {
            let t = i as u64 * 10;
            let inside = (100..200).contains(&t);
            match d {
                Disposition::Rejected(ServeError::Shed { retry_after_ms, class }) => {
                    assert!(inside, "job {i} at t={t} shed outside the window");
                    assert_eq!(*class, Priority::Standard);
                    assert_eq!(*retry_after_ms, 200 - t, "hint points past the window end");
                }
                _ => assert!(!inside, "job {i} at t={t} should have been shed"),
            }
        }
    }

    #[test]
    fn displacement_evicts_lower_class_for_higher_arrivals() {
        // Degraded capacity 2 during a window covering the whole run:
        // batch work queued first gets displaced by interactive arrivals.
        let cfg = ServeConfig::builder()
            .workers(1)
            .max_batch(1)
            .shed(ShedPolicy::new(vec![Window::new(0, 1_000)], 2))
            .build()
            .unwrap();
        let mut requests = Vec::new();
        for i in 0..2u64 {
            requests
                .push(ServeRequest::builder("bg", i).class(Priority::Batch).build().unwrap());
        }
        for i in 2..4u64 {
            requests.push(
                ServeRequest::builder("fg", i).class(Priority::Interactive).build().unwrap(),
            );
        }
        let run = serve_requests(&cfg, requests, echo_jobs_handler);
        assert!(run.stats.reconciles());
        // Both interactive arrivals displace a batch job each: the
        // youngest batch job (id 1) goes first, then id 0.
        assert_eq!(run.stats.shed, 2, "{:?}", run.stats);
        assert_eq!(run.stats.per_tenant["bg"].shed, 2);
        assert_eq!(run.stats.per_tenant["fg"].admitted, 2);
        for id in [0usize, 1] {
            match &run.results[id] {
                Disposition::Rejected(ServeError::Shed { class, retry_after_ms }) => {
                    assert_eq!(*class, Priority::Batch);
                    assert!(*retry_after_ms > 0);
                }
                other => panic!("batch job {id} should be displaced, got {other:?}"),
            }
        }
        assert!(run.results[2].ok().is_some());
        assert!(run.results[3].ok().is_some());
    }

    #[test]
    fn streaming_prefixes_identical_across_worker_counts() {
        let text_for = |j: &Job<u64>| format!("answer {} with several words to chunk", j.payload);
        let mk = |workers: usize| {
            let cfg = ServeConfig { workers, seed: 99, ..Default::default() };
            serve_requests_streaming(&cfg, echo_requests(24), |_c, batch: &[Job<u64>]| {
                batch.iter().map(|j| Ok::<String, ServeError>(text_for(j))).collect()
            })
        };
        let base = mk(1);
        for workers in [2, 8] {
            let run = mk(workers);
            for (i, (a, b)) in base.results.iter().zip(&run.results).enumerate() {
                let (sa, sb) = (a.ok().unwrap(), b.ok().unwrap());
                assert_eq!(sa.prefixes(), sb.prefixes(), "job {i} at workers={workers}");
                assert_eq!(sa.final_text(), sb.final_text());
            }
        }
        // Prefixes really are prefixes of the final completion.
        for (_, h) in base.successes() {
            for p in h.prefixes() {
                assert!(h.final_text().starts_with(p));
            }
        }
    }
}
