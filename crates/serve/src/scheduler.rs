//! The request scheduler: admission → bounded queue → worker pool →
//! micro-batched dispatch.
//!
//! [`serve`] is deliberately *phase-structured* (admit everything, then
//! drain with a fixed pool over [`std::thread::scope`]) so that the
//! admission outcome is a pure function of `(jobs, queue_capacity)` and
//! never of worker timing — the determinism contract in the crate docs.
//! Continuous-admission serving is the same machinery with producers and
//! consumers running concurrently against the same [`BoundedQueue`]; the
//! phased form is what the reproducible experiments and benches need.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use llmdm_obs::{TraceContext, WindowHandle};

use crate::queue::{BoundedQueue, ServeError};

/// Scheduler configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Fixed worker-pool size (clamped to ≥ 1).
    pub workers: usize,
    /// Queue capacity == admission high-water mark: submissions past
    /// this depth are rejected with backpressure.
    pub queue_capacity: usize,
    /// Micro-batch ceiling: a worker coalesces up to this many
    /// same-class jobs per dispatch.
    pub max_batch: usize,
    /// Base seed for per-request stream ids.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { workers: 1, queue_capacity: 1024, max_batch: 8, seed: 0 }
    }
}

/// One scheduled request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job<P> {
    /// Submission index (0-based): results are reported under this id.
    pub id: u64,
    /// Seeded per-request stream id — the deterministic substitute for
    /// "whatever randomness the serving layer needs" (tie-breaking,
    /// sampling, downstream nonces). Depends only on `(seed, id)`.
    pub stream_id: u64,
    /// Batching class: only jobs of equal class coalesce into one
    /// dispatch (e.g. one model tier, one task family).
    pub class: String,
    /// Request-scoped trace context, captured at admission: trace id is
    /// `stream_id` (clamped off 0), parent span is the job's
    /// `serve.admit` span. A [`serve_jobs`] handler attaches it so
    /// worker-side spans stitch into the request's flame tree.
    pub trace: TraceContext,
    /// The request payload handed to the handler.
    pub payload: P,
}

/// What happened to one submitted job.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition<T, E> {
    /// Dispatched to a worker; carries the handler's result.
    Done(Result<T, E>),
    /// Refused at admission (queue past its high-water mark).
    Rejected(ServeError),
}

impl<T, E> Disposition<T, E> {
    /// The successful result, if any.
    pub fn ok(&self) -> Option<&T> {
        match self {
            Disposition::Done(Ok(v)) => Some(v),
            _ => None,
        }
    }

    /// Whether admission refused this job.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Disposition::Rejected(_))
    }
}

/// Aggregate accounting for one [`serve`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs admitted to the queue.
    pub admitted: u64,
    /// Jobs rejected by admission control.
    pub rejected: u64,
    /// Handler dispatches (each covers ≥ 1 job).
    pub batches: u64,
    /// Largest coalesced batch observed.
    pub largest_batch: usize,
    /// Jobs processed per worker (index = worker ordinal). Under one
    /// worker this is the whole admitted load; under N workers the split
    /// is timing-dependent but always sums to `admitted`.
    pub per_worker_jobs: Vec<u64>,
}

/// Everything one [`serve`] run produced.
#[derive(Debug)]
pub struct ServeRun<T, E> {
    /// Per-job outcome, indexed by submission order.
    pub results: Vec<Disposition<T, E>>,
    /// Aggregate counters.
    pub stats: ServeStats,
}

impl<T, E> ServeRun<T, E> {
    /// Successful results in submission order.
    pub fn successes(&self) -> impl Iterator<Item = (usize, &T)> {
        self.results.iter().enumerate().filter_map(|(i, d)| d.ok().map(|v| (i, v)))
    }
}

/// SplitMix64: the seeded stream-id generator (no process entropy).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic per-request stream id for submission index `id`
/// under `seed`.
pub fn stream_id(seed: u64, id: u64) -> u64 {
    mix64(seed ^ mix64(id))
}

/// Record `usd` of spend for one job of `class` into the windowed
/// per-class dollar meter (`serve.dollars_usd`) and the run-total
/// counter. Call from handlers that know their per-call cost (e.g. a
/// metered model client) so the SLO window sees rolling spend per class.
pub fn record_job_cost(class: &str, usd: f64) {
    llmdm_obs::window_counter_add("serve.dollars_usd", class, usd);
    llmdm_obs::counter_add("serve.dollars_usd", usd);
}

/// Run `jobs` (as `(class, payload)` pairs, in submission order) through
/// a pool of `config.workers` threads, micro-batching same-class jobs up
/// to `config.max_batch` per handler dispatch.
///
/// The handler receives `(class, payloads)` for one coalesced batch and
/// must return exactly one result per payload, in order. It must be a
/// pure function of each payload for the N-worker determinism contract
/// to hold (shared substrates — caches, meters — may be bumped; they
/// reconcile by construction).
///
/// Admission happens up front in submission order: once the queue hits
/// `queue_capacity`, the remaining jobs are `Rejected` deterministically.
///
/// Handlers that need per-request identity (stream ids, trace contexts)
/// should use [`serve_jobs`], which hands over the whole [`Job`].
pub fn serve<P, T, E, F>(config: &ServeConfig, jobs: Vec<(String, P)>, handler: F) -> ServeRun<T, E>
where
    P: Send,
    T: Send,
    E: Send,
    F: Fn(&str, &[P]) -> Vec<Result<T, E>> + Sync,
{
    serve_core(config, jobs, |class, batch: Vec<Job<P>>| {
        let ids: Vec<u64> = batch.iter().map(|j| j.id).collect();
        let payloads: Vec<P> = batch.into_iter().map(|j| j.payload).collect();
        let outs = handler(class, &payloads);
        assert_eq!(outs.len(), payloads.len(), "handler must return one result per payload");
        ids.into_iter().zip(outs).collect()
    })
}

/// [`serve`], but the handler receives the full [`Job`]s of one coalesced
/// batch (ids, stream ids, trace contexts) instead of bare payloads.
///
/// This is the trace-aware entry point: a handler that wraps each job's
/// work in `let _g = job.trace.attach();` gets its spans stitched into
/// that request's flame tree (rooted at the job's `serve.admit` span),
/// regardless of which worker thread ran it or how the batch was
/// composed. Same determinism contract and admission semantics as
/// [`serve`].
pub fn serve_jobs<P, T, E, F>(
    config: &ServeConfig,
    jobs: Vec<(String, P)>,
    handler: F,
) -> ServeRun<T, E>
where
    P: Send,
    T: Send,
    E: Send,
    F: Fn(&str, &[Job<P>]) -> Vec<Result<T, E>> + Sync,
{
    serve_core(config, jobs, |class, batch: Vec<Job<P>>| {
        let outs = handler(class, &batch);
        assert_eq!(outs.len(), batch.len(), "handler must return one result per job");
        batch.iter().map(|j| j.id).zip(outs).collect()
    })
}

/// The shared machinery behind [`serve`] and [`serve_jobs`]: admission
/// (which mints each job's [`TraceContext`] under its `serve.admit`
/// span), the worker pool, micro-batch spans, windowed per-class
/// telemetry, and result slotting. `dispatch` consumes one coalesced
/// batch and returns `(job id, result)` pairs.
fn serve_core<P, T, E, D>(
    config: &ServeConfig,
    jobs: Vec<(String, P)>,
    dispatch: D,
) -> ServeRun<T, E>
where
    P: Send,
    T: Send,
    E: Send,
    D: Fn(&str, Vec<Job<P>>) -> Vec<(u64, Result<T, E>)> + Sync,
{
    let mut span = llmdm_obs::span("serve.run");
    let workers = config.workers.max(1);
    let queue: BoundedQueue<Job<P>> = BoundedQueue::new(config.queue_capacity);

    let submitted = jobs.len() as u64;
    let mut results: Vec<Option<Disposition<T, E>>> = Vec::with_capacity(jobs.len());
    let mut admitted = 0u64;
    let mut rejected = 0u64;

    // ---- Phase 1: admission, in submission order. --------------------
    // Each submission gets a trace context derived from (seed, id) —
    // byte-stable across worker counts — and an `serve.admit` span opened
    // under it, which becomes the root of the request's flame tree. The
    // queued job carries the context re-rooted at that span.
    let telemetry = llmdm_obs::is_enabled();
    let mut depth_wins: BTreeMap<String, WindowHandle<'static>> = BTreeMap::new();
    for (i, (class, payload)) in jobs.into_iter().enumerate() {
        let id = i as u64;
        let sid = stream_id(config.seed, id);
        let ctx = TraceContext::root(sid.max(1));
        let guard = ctx.attach();
        let mut aspan = llmdm_obs::span("serve.admit");
        if aspan.is_recording() {
            aspan.field("id", id);
            aspan.field("class", class.as_str());
        }
        let job = Job { id, stream_id: sid, class, trace: ctx.at(&aspan), payload };
        let class_key = job.class.clone();
        let outcome = queue.try_push(job);
        if telemetry {
            depth_wins
                .entry(class_key.clone())
                .or_insert_with(|| llmdm_obs::window("serve.queue_depth", &class_key))
                .observe(queue.len() as f64);
        }
        match outcome {
            Ok(()) => {
                admitted += 1;
                aspan.field("admitted", true);
                results.push(None);
            }
            Err(e) => {
                rejected += 1;
                aspan.field("admitted", false);
                results.push(Some(Disposition::Rejected(e)));
            }
        }
        drop(aspan);
        drop(guard);
    }
    queue.close();
    llmdm_obs::counter_add("serve.jobs.admitted", admitted as f64);
    llmdm_obs::counter_add("serve.jobs.rejected", rejected as f64);

    // ---- Phase 2: drain with the fixed pool. -------------------------
    let slots = Mutex::new(&mut results);
    let batches = AtomicU64::new(0);
    let largest = AtomicUsize::new(0);
    let per_worker: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queue = &queue;
                let dispatch = &dispatch;
                let slots = &slots;
                let batches = &batches;
                let largest = &largest;
                s.spawn(move || {
                    let mut processed = 0u64;
                    // Per-class latency windows, cached per worker so the
                    // hot loop never takes the registry lock.
                    let mut lat_wins: BTreeMap<String, WindowHandle<'static>> = BTreeMap::new();
                    while let Some(batch) =
                        queue.pop_batch(config.max_batch, |a, b| a.class == b.class)
                    {
                        let mut bspan = llmdm_obs::span("serve.batch");
                        let class = batch[0].class.clone();
                        let size = batch.len();
                        if bspan.is_recording() {
                            bspan.field("class", class.as_str());
                            bspan.field("size", size);
                            bspan.field("worker", w);
                            // Joinable against per-request traces: which
                            // submissions this dispatch covered.
                            let ids: Vec<String> =
                                batch.iter().map(|j| j.id.to_string()).collect();
                            bspan.field("ids", ids.join(","));
                        }
                        let telemetry = llmdm_obs::is_enabled();
                        let t0 = telemetry.then(Instant::now);
                        let outs = dispatch(&class, batch);
                        assert_eq!(outs.len(), size, "dispatch must return one result per job");
                        if let Some(t0) = t0 {
                            let ms = t0.elapsed().as_secs_f64() * 1e3;
                            let win = lat_wins.entry(class.clone()).or_insert_with(|| {
                                llmdm_obs::window("serve.batch_latency_ms", &class)
                            });
                            // One observation per job, so per-class rates
                            // compare across batch sizes.
                            for _ in 0..size {
                                win.observe(ms / size as f64);
                            }
                        }
                        batches.fetch_add(1, Ordering::Relaxed);
                        largest.fetch_max(size, Ordering::Relaxed);
                        processed += size as u64;
                        let mut guard = llmdm_rt::lock_recover(&slots);
                        for (id, out) in outs {
                            guard[id as usize] = Some(Disposition::Done(out));
                        }
                    }
                    processed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let stats = ServeStats {
        submitted,
        admitted,
        rejected,
        batches: batches.into_inner(),
        largest_batch: largest.into_inner(),
        per_worker_jobs: per_worker,
    };
    llmdm_obs::counter_add("serve.batches", stats.batches as f64);
    if span.is_recording() {
        span.field("workers", workers);
        span.field("submitted", stats.submitted);
        span.field("admitted", stats.admitted);
        span.field("rejected", stats.rejected);
        span.field("batches", stats.batches);
    }

    let results = results
        .into_iter()
        .map(|slot| slot.expect("every admitted job is processed before scope exit"))
        .collect();
    ServeRun { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_jobs(n: usize) -> Vec<(String, u64)> {
        (0..n as u64).map(|i| (if i % 2 == 0 { "even" } else { "odd" }.to_string(), i)).collect()
    }

    fn echo_handler(class: &str, batch: &[u64]) -> Vec<Result<String, ServeError>> {
        batch.iter().map(|v| Ok(format!("{class}:{v}"))).collect()
    }

    #[test]
    fn single_worker_matches_direct_loop() {
        let cfg = ServeConfig { workers: 1, ..Default::default() };
        let run = serve(&cfg, echo_jobs(20), echo_handler);
        assert_eq!(run.stats.admitted, 20);
        assert_eq!(run.stats.rejected, 0);
        for (i, d) in run.results.iter().enumerate() {
            let class = if i % 2 == 0 { "even" } else { "odd" };
            assert_eq!(d.ok().unwrap(), &format!("{class}:{i}"));
        }
        assert_eq!(run.stats.per_worker_jobs, vec![20]);
    }

    #[test]
    fn n_workers_same_result_set() {
        let base = serve(&ServeConfig::default(), echo_jobs(64), echo_handler);
        for workers in [2, 4, 8] {
            let cfg = ServeConfig { workers, ..Default::default() };
            let run = serve(&cfg, echo_jobs(64), echo_handler);
            assert_eq!(run.results, base.results, "workers={workers}");
            assert_eq!(run.stats.per_worker_jobs.len(), workers);
            assert_eq!(run.stats.per_worker_jobs.iter().sum::<u64>(), 64);
        }
    }

    #[test]
    fn admission_rejects_deterministically() {
        let cfg = ServeConfig { workers: 2, queue_capacity: 10, ..Default::default() };
        let run = serve(&cfg, echo_jobs(25), echo_handler);
        assert_eq!(run.stats.admitted, 10);
        assert_eq!(run.stats.rejected, 15);
        // Exactly the first `capacity` submissions are admitted.
        for (i, d) in run.results.iter().enumerate() {
            assert_eq!(d.is_rejected(), i >= 10, "job {i}");
        }
        // Rejections carry a usable retry hint.
        match &run.results[10] {
            Disposition::Rejected(e @ ServeError::Rejected { retry_after_ms, .. }) => {
                assert!(e.is_retryable());
                assert!(*retry_after_ms > 0);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn batches_coalesce_only_same_class() {
        let seen = Mutex::new(Vec::new());
        let cfg = ServeConfig { workers: 1, max_batch: 8, ..Default::default() };
        let run = serve(&cfg, echo_jobs(16), |class: &str, batch: &[u64]| {
            llmdm_rt::lock_recover(&seen).push((class.to_string(), batch.to_vec()));
            batch.iter().map(|v| Ok::<u64, ServeError>(*v)).collect()
        });
        assert_eq!(run.stats.admitted, 16);
        let seen = seen.into_inner().unwrap();
        assert_eq!(run.stats.batches as usize, seen.len());
        assert!(run.stats.largest_batch > 1, "coalescing must happen: {seen:?}");
        for (class, batch) in &seen {
            assert!(batch.len() <= 8);
            let want = if class == "even" { 0 } else { 1 };
            assert!(batch.iter().all(|v| v % 2 == want), "mixed batch {class}: {batch:?}");
        }
    }

    #[test]
    fn stream_ids_are_seeded_and_stable() {
        assert_eq!(stream_id(42, 0), stream_id(42, 0));
        assert_ne!(stream_id(42, 0), stream_id(42, 1));
        assert_ne!(stream_id(42, 0), stream_id(43, 0));
    }

    #[test]
    fn serve_jobs_hands_over_identity() {
        let cfg = ServeConfig { workers: 2, seed: 42, ..Default::default() };
        let run: ServeRun<(u64, u64), ServeError> =
            serve_jobs(&cfg, echo_jobs(16), |_class, batch: &[Job<u64>]| {
                batch
                    .iter()
                    .map(|j| {
                        // Every queued job carries an active trace context
                        // whose id matches its stream id (mod the 0 clamp).
                        assert!(j.trace.is_active());
                        assert_eq!(j.trace.trace_id, j.stream_id.max(1));
                        assert_eq!(j.payload, j.id);
                        Ok((j.id, j.stream_id))
                    })
                    .collect()
            });
        for (i, d) in run.results.iter().enumerate() {
            let (id, sid) = d.ok().unwrap();
            assert_eq!(*id, i as u64);
            assert_eq!(*sid, stream_id(42, i as u64));
        }
    }

    #[test]
    fn batch_spans_carry_job_ids() {
        // Isolated recorder? Spans go to the global recorder, so filter
        // by a class name unique to this test instead.
        llmdm_obs::enable();
        let cfg = ServeConfig { workers: 1, max_batch: 4, ..Default::default() };
        let jobs: Vec<(String, u64)> =
            (0..6).map(|i| ("batch_ids_test".to_string(), i)).collect();
        let _run: ServeRun<u64, ServeError> =
            serve(&cfg, jobs, |_c, b: &[u64]| b.iter().map(|v| Ok(*v)).collect());
        let rep = llmdm_obs::snapshot();
        let mut covered: Vec<u64> = Vec::new();
        for s in rep.spans.iter().filter(|s| s.name == "serve.batch") {
            let is_ours = s.fields.iter().any(|(k, v)| {
                k == "class" && matches!(v, llmdm_obs::FieldValue::Str(c) if c == "batch_ids_test")
            });
            if !is_ours {
                continue;
            }
            let ids = s
                .fields
                .iter()
                .find_map(|(k, v)| {
                    (k == "ids").then(|| match v {
                        llmdm_obs::FieldValue::Str(s) => s.clone(),
                        other => other.to_string(),
                    })
                })
                .expect("batch span has ids field");
            covered.extend(ids.split(',').map(|t| t.parse::<u64>().unwrap()));
        }
        covered.sort_unstable();
        assert_eq!(covered, vec![0, 1, 2, 3, 4, 5], "batch ids cover every admitted job");
    }

    #[test]
    fn handler_errors_surface_per_job() {
        let cfg = ServeConfig { workers: 2, ..Default::default() };
        let run: ServeRun<u64, String> =
            serve(&cfg, echo_jobs(10), |_class, batch: &[u64]| {
                batch
                    .iter()
                    .map(|v| if *v == 3 { Err("boom".to_string()) } else { Ok(*v) })
                    .collect()
            });
        for (i, d) in run.results.iter().enumerate() {
            match d {
                Disposition::Done(Ok(v)) => assert_eq!(*v, i as u64),
                Disposition::Done(Err(e)) => {
                    assert_eq!(i, 3);
                    assert_eq!(e, "boom");
                }
                Disposition::Rejected(_) => panic!("nothing should be rejected"),
            }
        }
    }
}
