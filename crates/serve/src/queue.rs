//! The bounded MPMC queue with admission control.
//!
//! `std`-only (one `Mutex` + `Condvar`), mirroring the structure of a
//! classic bounded channel but with *reject-not-block* semantics on the
//! producer side: a full queue refuses new work with a typed
//! [`ServeError::Rejected`] carrying a deterministic retry hint, the way
//! an overloaded API endpoint returns HTTP 429 instead of hanging the
//! client. Consumers block (or drain in batches) until the queue is both
//! closed and empty.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex, MutexGuard};

use llmdm_rt::{FromJson, Json, JsonError, ToJson};

use crate::tenant::Priority;

/// Serving-layer errors.
///
/// The retry-hint vocabulary is aligned with the model layer's
/// `ModelError::Transient { retry_after_ms }`: every load-dependent
/// variant carries a field *named* `retry_after_ms`, surfaces it through
/// [`ServeError::retry_after_ms`] (`Some` only when the hint is
/// positive, exactly like `ModelError::retry_after_ms`), and answers
/// [`ServeError::is_retryable`] the way `ModelError::is_retryable`
/// answers for `Transient` — so a retry loop written against either
/// error type uses the same two calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control refused the request: the queue was at or past
    /// its high-water mark. Maps onto the model layer's
    /// `Transient(RateLimited)` vocabulary at the adapter boundary.
    Rejected {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// Deterministic retry hint in milliseconds (scales with depth,
        /// like a provider's `Retry-After` header under load).
        retry_after_ms: u64,
    },
    /// The tenant's token-bucket quota was empty; the request never
    /// reached the queue.
    Throttled {
        /// The tenant whose bucket ran dry.
        tenant: String,
        /// Exact simulated milliseconds until the bucket refills enough
        /// to admit one job (`u64::MAX` when the quota never refills).
        retry_after_ms: u64,
    },
    /// Load-shedding dropped the request: an outage window shrank the
    /// effective capacity and this request (or a lower-priority victim
    /// displaced on its behalf) was shed, lowest class first.
    Shed {
        /// The priority class of the shed request.
        class: Priority,
        /// Retry hint: points past the outage window's end when the
        /// shed happened inside one, else scales with queue depth.
        retry_after_ms: u64,
    },
    /// The request failed validation before submission (empty tenant,
    /// unknown class label, empty batch key).
    InvalidRequest {
        /// What was wrong with the request.
        reason: String,
    },
    /// The serve configuration failed validation at build time
    /// (`workers == 0`, `queue_capacity == 0`, zero-burst policy, …).
    InvalidConfig {
        /// What was wrong with the configuration.
        reason: String,
    },
    /// The queue was closed; no further work is accepted.
    Closed,
}

impl ServeError {
    /// Whether retrying later can plausibly succeed. Load-dependent
    /// refusals (backpressure, quota, shedding) are retryable; invalid
    /// input and a closed queue are not — mirroring
    /// `ModelError::is_retryable`, where only `Transient` is.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Rejected { .. } | ServeError::Throttled { .. } | ServeError::Shed { .. }
        )
    }

    /// The retry hint, if the error carries a meaningful one: `Some`
    /// only for retryable variants with a positive finite hint — the
    /// same contract as `ModelError::retry_after_ms`.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServeError::Rejected { retry_after_ms, .. }
            | ServeError::Throttled { retry_after_ms, .. }
            | ServeError::Shed { retry_after_ms, .. }
                if *retry_after_ms > 0 && *retry_after_ms < u64::MAX =>
            {
                Some(*retry_after_ms)
            }
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected { depth, retry_after_ms } => {
                write!(f, "admission rejected at depth {depth}, retry after {retry_after_ms}ms")
            }
            ServeError::Throttled { tenant, retry_after_ms } => {
                if *retry_after_ms == u64::MAX {
                    write!(f, "tenant `{tenant}` over quota (quota never refills)")
                } else {
                    write!(f, "tenant `{tenant}` over quota, retry after {retry_after_ms}ms")
                }
            }
            ServeError::Shed { class, retry_after_ms } => {
                write!(f, "shed {class} request under load, retry after {retry_after_ms}ms")
            }
            ServeError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            ServeError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            ServeError::Closed => write!(f, "queue closed"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ToJson for ServeError {
    /// Tagged-object encoding `{"error": "<variant>", ...fields}` — the
    /// same idiom `ModelError` uses, so mixed failure logs share one
    /// shape.
    fn to_json(&self) -> Json {
        match self {
            ServeError::Rejected { depth, retry_after_ms } => Json::obj([
                ("error", Json::Str("rejected".into())),
                ("depth", depth.to_json()),
                ("retry_after_ms", retry_after_ms.to_json()),
            ]),
            ServeError::Throttled { tenant, retry_after_ms } => Json::obj([
                ("error", Json::Str("throttled".into())),
                ("tenant", Json::Str(tenant.clone())),
                ("retry_after_ms", retry_after_ms.to_json()),
            ]),
            ServeError::Shed { class, retry_after_ms } => Json::obj([
                ("error", Json::Str("shed".into())),
                ("class", Json::Str(class.label().into())),
                ("retry_after_ms", retry_after_ms.to_json()),
            ]),
            ServeError::InvalidRequest { reason } => Json::obj([
                ("error", Json::Str("invalid_request".into())),
                ("reason", Json::Str(reason.clone())),
            ]),
            ServeError::InvalidConfig { reason } => Json::obj([
                ("error", Json::Str("invalid_config".into())),
                ("reason", Json::Str(reason.clone())),
            ]),
            ServeError::Closed => Json::obj([("error", Json::Str("closed".into()))]),
        }
    }
}

impl FromJson for ServeError {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let tag = v.field("error")?.as_str()?;
        match tag {
            "rejected" => Ok(ServeError::Rejected {
                depth: v.field("depth")?.as_usize()?,
                retry_after_ms: v.field("retry_after_ms")?.as_u64()?,
            }),
            "throttled" => Ok(ServeError::Throttled {
                tenant: v.field("tenant")?.as_str()?.to_string(),
                retry_after_ms: v.field("retry_after_ms")?.as_u64()?,
            }),
            "shed" => {
                let label = v.field("class")?.as_str()?;
                let class = Priority::from_label(label)
                    .ok_or_else(|| JsonError::shape("unknown priority class label"))?;
                Ok(ServeError::Shed {
                    class,
                    retry_after_ms: v.field("retry_after_ms")?.as_u64()?,
                })
            }
            "invalid_request" => Ok(ServeError::InvalidRequest {
                reason: v.field("reason")?.as_str()?.to_string(),
            }),
            "invalid_config" => Ok(ServeError::InvalidConfig {
                reason: v.field("reason")?.as_str()?.to_string(),
            }),
            "closed" => Ok(ServeError::Closed),
            _ => Err(JsonError::shape("unknown ServeError tag")),
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
///
/// * Producers: [`BoundedQueue::try_push`] — never blocks; rejects past
///   capacity (admission control / backpressure).
/// * Consumers: [`BoundedQueue::pop`] / [`BoundedQueue::pop_batch`] —
///   block until an item arrives or the queue is closed *and* drained.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items at a time
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured high-water mark.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Try to enqueue `item`. Rejects (instead of blocking) when the
    /// queue is at capacity — the admission-control contract — or closed.
    pub fn try_push(&self, item: T) -> Result<(), ServeError> {
        let mut g = self.lock();
        if g.closed {
            return Err(ServeError::Closed);
        }
        let depth = g.items.len();
        if depth >= self.capacity {
            // Deterministic hint: deeper backlog → longer suggested wait.
            return Err(ServeError::Rejected { depth, retry_after_ms: 5 * depth as u64 });
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Close the queue: producers start failing with
    /// [`ServeError::Closed`], consumers drain the remainder and then
    /// observe end-of-stream.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Blocking pop. `None` means closed-and-drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocking batch pop with coalescing: waits for one item, then —
    /// without further blocking — collects up to `max - 1` more queued
    /// items for which `same(&first, &candidate)` holds (e.g. same model
    /// tier, same task class), preserving queue order among the
    /// collected items. `None` means closed-and-drained.
    pub fn pop_batch(&self, max: usize, same: impl Fn(&T, &T) -> bool) -> Option<Vec<T>> {
        let max = max.max(1);
        let mut g = self.lock();
        let first = loop {
            if let Some(item) = g.items.pop_front() {
                break item;
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap_or_else(|e| e.into_inner());
        };
        let mut batch = Vec::with_capacity(max);
        // Scan the backlog for coalescible items; non-matching items keep
        // their relative order.
        let mut i = 0;
        while batch.len() + 1 < max && i < g.items.len() {
            if same(&first, &g.items[i]) {
                let item = g.items.remove(i).expect("index checked");
                batch.push(item);
            } else {
                i += 1;
            }
        }
        batch.insert(0, first);
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_single_consumer() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        q.close();
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn admission_rejects_past_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(ServeError::Rejected { depth, retry_after_ms }) => {
                assert_eq!(depth, 2);
                assert_eq!(retry_after_ms, 10);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Draining reopens admission.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn closed_queue_rejects_pushes_and_drains() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(ServeError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn batch_coalesces_same_class_across_gaps() {
        let q = BoundedQueue::new(16);
        for (class, n) in [("a", 1), ("b", 2), ("a", 3), ("a", 4), ("b", 5)] {
            q.try_push((class, n)).unwrap();
        }
        q.close();
        let b1 = q.pop_batch(8, |x, y| x.0 == y.0).unwrap();
        assert_eq!(b1, vec![("a", 1), ("a", 3), ("a", 4)]);
        let b2 = q.pop_batch(8, |x, y| x.0 == y.0).unwrap();
        assert_eq!(b2, vec![("b", 2), ("b", 5)]);
        assert!(q.pop_batch(8, |x, y| x.0 == y.0).is_none());
    }

    #[test]
    fn batch_respects_max() {
        let q = BoundedQueue::new(16);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        q.close();
        let b = q.pop_batch(4, |_, _| true).unwrap();
        assert_eq!(b, vec![0, 1, 2, 3]);
        let b = q.pop_batch(4, |_, _| true).unwrap();
        assert_eq!(b, vec![4, 5]);
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let q = std::sync::Arc::new(BoundedQueue::new(1024));
        let consumed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        q.try_push(t * 100 + i).unwrap();
                    }
                });
            }
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let q = q.clone();
                    let consumed = &consumed;
                    s.spawn(move || {
                        while q.pop().is_some() {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            // Close only once all 400 items are in flight or consumed
            // (consumed is incremented after pop, so the sum undercounts
            // transiently — never overcounts).
            while consumed.load(Ordering::Relaxed) + q.len() < 400 {
                std::thread::yield_now();
            }
            q.close();
            drop(consumers);
        });
        assert_eq!(consumed.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn serve_error_jsonio_roundtrips_every_variant() {
        let variants = vec![
            ServeError::Rejected { depth: 9, retry_after_ms: 45 },
            ServeError::Throttled { tenant: "acme".into(), retry_after_ms: 120 },
            ServeError::Throttled { tenant: "capped".into(), retry_after_ms: u64::MAX },
            ServeError::Shed { class: Priority::Batch, retry_after_ms: 500 },
            ServeError::Shed { class: Priority::Interactive, retry_after_ms: 0 },
            ServeError::InvalidRequest { reason: "tenant id must be non-empty".into() },
            ServeError::InvalidConfig { reason: "workers must be >= 1".into() },
            ServeError::Closed,
        ];
        for e in variants {
            let encoded = e.to_json().to_string();
            let decoded = ServeError::from_json(&Json::parse(&encoded).unwrap()).unwrap();
            assert_eq!(decoded, e, "round-trip through `{encoded}`");
            // Every variant has a non-empty, stable Display.
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn retry_hints_align_with_model_error_semantics() {
        // Retryable variants expose positive finite hints…
        let r = ServeError::Rejected { depth: 4, retry_after_ms: 20 };
        assert!(r.is_retryable());
        assert_eq!(r.retry_after_ms(), Some(20));
        let t = ServeError::Throttled { tenant: "a".into(), retry_after_ms: 100 };
        assert!(t.is_retryable());
        assert_eq!(t.retry_after_ms(), Some(100));
        let s = ServeError::Shed { class: Priority::Batch, retry_after_ms: 300 };
        assert!(s.is_retryable());
        assert_eq!(s.retry_after_ms(), Some(300));
        // …zero and "never" hints collapse to None, like ModelError.
        let z = ServeError::Shed { class: Priority::Batch, retry_after_ms: 0 };
        assert_eq!(z.retry_after_ms(), None);
        let never = ServeError::Throttled { tenant: "a".into(), retry_after_ms: u64::MAX };
        assert_eq!(never.retry_after_ms(), None);
        // Non-load errors are neither retryable nor hinted.
        for e in [
            ServeError::InvalidRequest { reason: "r".into() },
            ServeError::InvalidConfig { reason: "r".into() },
            ServeError::Closed,
        ] {
            assert!(!e.is_retryable(), "{e}");
            assert_eq!(e.retry_after_ms(), None);
        }
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = std::sync::Arc::new(BoundedQueue::new(4));
        std::thread::scope(|s| {
            let q2 = q.clone();
            let h = s.spawn(move || q2.pop());
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.try_push(42).unwrap();
            assert_eq!(h.join().unwrap(), Some(42));
        });
    }
}
