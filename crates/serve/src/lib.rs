//! # llmdm-serve — the concurrent serving layer (§III "heavy traffic")
//!
//! The paper's systems gap between LLM demos and DB-grade serving is
//! request scheduling: real deployments face "heavy traffic from millions
//! of users", yet every naive call path is one synchronous call per
//! query. This crate supplies the serving substrate the rest of the
//! workspace plugs into:
//!
//! * a bounded MPMC [`queue::BoundedQueue`] with **admission control**:
//!   past the high-water mark new work is *rejected with backpressure*
//!   (a typed [`ServeError::Rejected`] carrying a retry hint) rather than
//!   queued unboundedly — the DB-style answer to overload;
//! * a fixed worker pool ([`scheduler::serve`]) over
//!   [`std::thread::scope`] — no detached threads, no lifetime escape;
//! * **micro-batching**: workers coalesce up to `max_batch` queued
//!   requests of the same *class* (e.g. one model tier / one task family)
//!   into a single handler dispatch, amortizing per-call overhead exactly
//!   like continuous batching in a real inference server.
//!
//! ## Determinism contract
//!
//! Scheduling is the one place concurrency could leak into results, so
//! the contract is explicit (asserted by `examples/serving_pipeline.rs`
//! and `tests/integration_serve.rs`):
//!
//! 1. every job gets a **seeded stream id** derived from
//!    `(config.seed, submission index)` — never from wall-clock or thread
//!    identity;
//! 2. jobs are admitted in submission order before workers start
//!    draining, so the *set* of admitted vs rejected jobs is a pure
//!    function of `(jobs, queue_capacity)`;
//! 3. results are reported **indexed by submission order**, so a
//!    single-worker run is byte-identical to a plain sequential loop,
//!    and an N-worker run produces the same set of results (handlers are
//!    pure per payload) with only batch composition varying.
//!
//! The crate is deliberately generic (payload in, result out) and depends
//! only on `llmdm-rt`, `llmdm-obs`, and `llmdm-resil` — enforced by
//! `tests/hermetic.rs` — so model-layer crates adapt *to* it rather than
//! it growing model knowledge.

#![warn(missing_docs)]

pub mod queue;
pub mod scheduler;

pub use queue::{BoundedQueue, ServeError};
pub use scheduler::{
    record_job_cost, serve, serve_jobs, Disposition, Job, ServeConfig, ServeRun, ServeStats,
};
