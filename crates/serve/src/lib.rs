//! # llmdm-serve — the traffic-shaped serving layer (§III "heavy traffic")
//!
//! The paper's systems gap between LLM demos and DB-grade serving is
//! request scheduling: real deployments face "heavy traffic from millions
//! of users", yet every naive call path is one synchronous call per
//! query. This crate supplies the serving substrate the rest of the
//! workspace plugs into — a worker pool grown into a multi-tenant,
//! QoS-aware frontend:
//!
//! * **typed submissions**: a validated
//!   [`ServeRequest`]` { tenant, class, batch_key, payload }` built via
//!   [`ServeRequest::builder`], replacing the old stringly
//!   `(class, payload)` tuples (still available through the deprecated
//!   [`serve`] adapter);
//! * **per-tenant token-bucket quotas** ([`tenant::TokenBucket`], exact
//!   integer millitoken arithmetic on the simulated clock): over-quota
//!   submissions fail with [`ServeError::Throttled`] carrying the exact
//!   refill wait;
//! * **weighted-fair dequeue**: the bounded [`qos::QosQueue`] serves
//!   backlogged [`Priority`] classes 4:2:1 by credit-based weighted
//!   round-robin — starvation-free, micro-batching same-`batch_key`
//!   jobs up to `max_batch` per dispatch like continuous batching in a
//!   real inference server;
//! * **graceful load-shedding** wired to `llmdm-resil` outage windows
//!   ([`tenant::ShedPolicy`]): during an outage the effective capacity
//!   degrades and overflow is shed lowest class first with a typed
//!   [`ServeError::Shed`]` { retry_after_ms }` pointing past the window;
//! * **deterministic token streaming**: [`stream::StreamHandle`] yields
//!   seeded prefixes of the final completion — identical prefix
//!   sequences at any worker count ([`serve_requests_streaming`]);
//! * a **simulated N-node cluster** ([`cluster::Cluster`]) sharding
//!   caller-owned node state (cache stripes, vecdb partitions) under a
//!   seeded rendezvous router, stitching results back to global
//!   submission order.
//!
//! ## Determinism contract
//!
//! Scheduling is the one place concurrency could leak into results, so
//! the contract is explicit (asserted by `examples/serving_pipeline.rs`,
//! `examples/multi_tenant_cluster.rs`, and `tests/integration_serve.rs`):
//!
//! 1. every job gets a **seeded stream id** derived from
//!    `(config.seed, submission index)` — never from wall-clock or thread
//!    identity;
//! 2. admission — including every quota, backpressure, and shed decision
//!    on the simulated arrival timeline — happens in submission order
//!    before workers start draining, so the *disposition* of every job is
//!    a pure function of `(requests, config)`;
//! 3. results are reported **indexed by submission order**, so a
//!    single-worker run is byte-identical to a plain sequential loop, an
//!    N-worker run produces the same results, and per-tenant accounting
//!    reconciles exactly: `admitted + rejected + shed == submitted`.
//!
//! The crate is deliberately generic (payload in, result out) and depends
//! only on `llmdm-rt`, `llmdm-obs`, and `llmdm-resil` — enforced by
//! `tests/hermetic.rs` — so model-layer crates adapt *to* it rather than
//! it growing model knowledge.

#![warn(missing_docs)]

pub mod cluster;
pub mod qos;
pub mod queue;
pub mod request;
pub mod scheduler;
pub mod stream;
pub mod tenant;

pub use cluster::{Cluster, ClusterNode, ClusterRun};
pub use queue::{BoundedQueue, ServeError};
pub use request::{ServeRequest, ServeRequestBuilder};
pub use scheduler::{
    record_job_cost, serve_jobs, serve_requests, serve_requests_streaming, Disposition, Job,
    ServeConfig, ServeConfigBuilder, ServeRun, ServeStats,
};
#[allow(deprecated)]
pub use scheduler::serve;
pub use stream::StreamHandle;
pub use tenant::{
    Priority, ShedPolicy, TenantId, TenantPolicies, TenantPolicy, TenantStats, TokenBucket,
};

/// One-stop imports for the typed serving API.
///
/// ```
/// use llmdm_serve::prelude::*;
/// ```
pub mod prelude {
    pub use crate::cluster::{Cluster, ClusterNode, ClusterRun};
    pub use crate::queue::ServeError;
    pub use crate::request::ServeRequest;
    pub use crate::scheduler::{
        serve_jobs, serve_requests, serve_requests_streaming, Disposition, Job, ServeConfig,
        ServeRun, ServeStats,
    };
    pub use crate::stream::StreamHandle;
    pub use crate::tenant::{
        Priority, ShedPolicy, TenantId, TenantPolicies, TenantPolicy, TenantStats,
    };
}
