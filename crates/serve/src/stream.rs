//! Incremental token streaming: [`StreamHandle`], the deterministic
//! prefix view of a completed response.
//!
//! Real serving returns tokens incrementally; this workspace's
//! determinism contract forbids anything timing-dependent. The
//! resolution: a stream is a **pure function of the final text and the
//! request's seeded stream id**. Chunk boundaries are drawn from a
//! `SmallRng` seeded with the stream id (1–3 whitespace-delimited
//! tokens per chunk), so every consumer — on any worker, at any worker
//! count, on any run — observes the *identical sequence of prefixes*
//! of the identical final text. That is the streaming determinism
//! contract `examples/multi_tenant_cluster.rs` gates on: prefix
//! sequences at 1, 2, and 8 workers are equal element-wise.
//!
//! The handle is a cursor ([`StreamHandle::next_prefix`] /
//! `Iterator<Item = String>` yielding growing prefixes) plus random
//! access ([`StreamHandle::prefix_at`], [`StreamHandle::final_text`]),
//! so both incremental consumers and whole-response consumers share one
//! type.

use llmdm_rt::rand::{Rng, SeedableRng, SmallRng};

/// Largest number of text tokens coalesced into one stream chunk.
const MAX_TOKENS_PER_CHUNK: u64 = 3;

/// A deterministic, replayable token stream over one completed
/// response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamHandle {
    text: String,
    /// Chunk end offsets (byte positions into `text`), strictly
    /// increasing; the last bound equals `text.len()`. Empty for empty
    /// text.
    bounds: Vec<usize>,
    /// Next chunk index the cursor will yield.
    cursor: usize,
}

impl StreamHandle {
    /// Chunk `text` deterministically under `stream_id`. The boundary
    /// sequence depends only on `(text, stream_id)`.
    pub fn new(text: impl Into<String>, stream_id: u64) -> Self {
        let text = text.into();
        let mut rng = SmallRng::seed_from_u64(stream_id);
        // Token ends: each whitespace-delimited word plus its trailing
        // whitespace run ends one token (always on a char boundary).
        let mut token_ends = Vec::new();
        let mut in_ws = false;
        for (i, c) in text.char_indices() {
            let ws = c.is_whitespace();
            if in_ws && !ws {
                token_ends.push(i);
            }
            in_ws = ws;
        }
        if !text.is_empty() {
            token_ends.push(text.len());
        }
        // Group 1..=MAX_TOKENS_PER_CHUNK tokens per chunk, seeded.
        let mut bounds = Vec::new();
        let mut i = 0;
        while i < token_ends.len() {
            let take = rng.gen_range(1..=MAX_TOKENS_PER_CHUNK) as usize;
            i = (i + take).min(token_ends.len());
            bounds.push(token_ends[i - 1]);
        }
        StreamHandle { text, bounds, cursor: 0 }
    }

    /// The complete response text.
    pub fn final_text(&self) -> &str {
        &self.text
    }

    /// Number of chunks the stream yields (0 for empty text).
    pub fn chunk_count(&self) -> usize {
        self.bounds.len()
    }

    /// Whether the cursor has yielded every chunk.
    pub fn is_finished(&self) -> bool {
        self.cursor >= self.bounds.len()
    }

    /// The prefix visible after `chunks` chunks have arrived (clamped
    /// to the full text).
    pub fn prefix_at(&self, chunks: usize) -> &str {
        if chunks == 0 || self.bounds.is_empty() {
            return "";
        }
        let idx = chunks.min(self.bounds.len()) - 1;
        &self.text[..self.bounds[idx]]
    }

    /// Advance the cursor one chunk and return the new visible prefix;
    /// `None` once the stream is exhausted.
    pub fn next_prefix(&mut self) -> Option<&str> {
        if self.cursor >= self.bounds.len() {
            return None;
        }
        self.cursor += 1;
        Some(&self.text[..self.bounds[self.cursor - 1]])
    }

    /// Reset the cursor so the stream can be replayed from the start.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Every prefix in arrival order, without moving the cursor.
    pub fn prefixes(&self) -> Vec<&str> {
        (1..=self.bounds.len()).map(|n| self.prefix_at(n)).collect()
    }
}

impl Iterator for StreamHandle {
    type Item = String;

    /// Yields the growing prefixes in order (owned, so the iterator can
    /// be consumed without borrowing the handle).
    fn next(&mut self) -> Option<String> {
        self.next_prefix().map(str::to_string)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXT: &str = "the quick brown fox jumps over the lazy dog";

    #[test]
    fn prefixes_grow_to_the_final_text() {
        let h = StreamHandle::new(TEXT, 7);
        let ps = h.prefixes();
        assert!(!ps.is_empty());
        for w in ps.windows(2) {
            assert!(w[1].len() > w[0].len(), "prefixes must strictly grow");
            assert!(w[1].starts_with(w[0]), "each prefix extends the last");
        }
        assert_eq!(*ps.last().unwrap(), TEXT, "the last prefix is the full text");
        assert!(TEXT.starts_with(ps[0]));
    }

    #[test]
    fn chunking_is_a_pure_function_of_text_and_stream_id() {
        let a = StreamHandle::new(TEXT, 42);
        let b = StreamHandle::new(TEXT, 42);
        assert_eq!(a, b);
        let c = StreamHandle::new(TEXT, 43);
        assert_eq!(c.final_text(), TEXT);
        // Different stream ids chunk differently for long-enough text
        // (9 tokens leave plenty of boundary freedom).
        assert_ne!(a.prefixes(), c.prefixes(), "distinct seeds should chunk differently");
    }

    #[test]
    fn cursor_yields_each_prefix_once_then_none() {
        let mut h = StreamHandle::new("alpha beta gamma delta", 3);
        let total = h.chunk_count();
        let mut seen = 0;
        while let Some(p) = h.next_prefix() {
            assert!(!p.is_empty());
            seen += 1;
        }
        assert_eq!(seen, total);
        assert!(h.is_finished());
        assert!(h.next_prefix().is_none());
        h.rewind();
        assert!(!h.is_finished() || total == 0);
        assert_eq!(h.next_prefix().is_some(), total > 0);
    }

    #[test]
    fn iterator_matches_prefixes() {
        let h = StreamHandle::new(TEXT, 11);
        let via_vec: Vec<String> = h.prefixes().into_iter().map(str::to_string).collect();
        let via_iter: Vec<String> = h.collect();
        assert_eq!(via_vec, via_iter);
    }

    #[test]
    fn empty_and_single_token_texts() {
        let mut empty = StreamHandle::new("", 5);
        assert_eq!(empty.chunk_count(), 0);
        assert!(empty.next_prefix().is_none());
        assert_eq!(empty.prefix_at(3), "");

        let one = StreamHandle::new("word", 5);
        assert_eq!(one.chunk_count(), 1);
        assert_eq!(one.prefixes(), vec!["word"]);
    }

    #[test]
    fn multibyte_text_chunks_on_char_boundaries() {
        let text = "héllo wörld ünïcode tëxt δοκιμή ünd mehr wörter hier";
        for sid in 0..32u64 {
            let h = StreamHandle::new(text, sid);
            for p in h.prefixes() {
                assert!(text.starts_with(p));
            }
            assert_eq!(*h.prefixes().last().unwrap(), text);
        }
    }

    #[test]
    fn chunks_respect_token_ceiling() {
        let h = StreamHandle::new(TEXT, 9);
        // 9 tokens, ≥ ceil(9/3) = 3 chunks.
        assert!(h.chunk_count() >= 3, "got {} chunks", h.chunk_count());
        assert!(h.chunk_count() <= 9);
    }
}
