//! [`Cluster`] — a deterministic simulated N-node cluster with a seeded
//! rendezvous router.
//!
//! The "millions of users" story needs horizontal sharding, not just a
//! deeper worker pool. This facade keeps the serving layer generic (the
//! node state `N` is whatever the caller shards — a
//! `ShardedCache`-backed model client, a vecdb partition, both): the
//! cluster owns *routing* and *fan-out*, the nodes own state.
//!
//! Routing is **rendezvous (highest-random-weight) hashing**: key `k`
//! lands on the node maximizing `mix64(seed ⊕ fnv1a(node) ⊕ fnv1a(k))`.
//! Compared to modulo hashing this gives the two properties the tests
//! pin:
//!
//! * deterministic and seed-stable — same `(seed, nodes, key)` always
//!   routes identically, independent of insertion order of *other*
//!   keys;
//! * minimal disruption — removing a node only remaps the keys that
//!   lived on it; every other key keeps its node.
//!
//! [`Cluster::serve_routed`] fans a request list out node by node
//! through [`crate::scheduler::serve_requests`] (each node gets a
//! distinct derived seed, so per-node stream ids never collide) and
//! stitches per-node results back into global submission order. Nodes
//! run sequentially and each node's run is phase-structured, so the
//! whole cluster run inherits the single-node determinism contract.

use crate::queue::ServeError;
use crate::request::ServeRequest;
use crate::scheduler::{mix64, serve_requests, Disposition, Job, ServeConfig, ServeStats};

/// FNV-1a over raw bytes (the workspace's standard string hash).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One named node and its caller-owned state.
#[derive(Debug)]
pub struct ClusterNode<N> {
    /// Unique node name (enters the rendezvous hash).
    pub name: String,
    /// Whatever this node shards: cache stripes, vecdb partitions, …
    pub state: N,
}

/// A deterministic simulated cluster: named nodes plus a seeded
/// rendezvous router.
#[derive(Debug)]
pub struct Cluster<N> {
    seed: u64,
    nodes: Vec<ClusterNode<N>>,
}

impl<N> Cluster<N> {
    /// An empty cluster routing under `seed`.
    pub fn new(seed: u64) -> Self {
        Cluster { seed, nodes: Vec::new() }
    }

    /// Build an `n`-node cluster with generated names `node-0 …
    /// node-(n-1)` and per-node state from `make` (called with the node
    /// name and index).
    pub fn with_nodes(seed: u64, n: usize, mut make: impl FnMut(&str, usize) -> N) -> Self {
        let mut c = Cluster::new(seed);
        for i in 0..n {
            let name = format!("node-{i}");
            let state = make(&name, i);
            c.add_node(name, state).expect("generated names are unique");
        }
        c
    }

    /// Add a node. Duplicate names are a typed error — two nodes with
    /// one name would silently split the rendezvous hash.
    pub fn add_node(&mut self, name: impl Into<String>, state: N) -> Result<(), ServeError> {
        let name = name.into();
        if name.trim().is_empty() {
            return Err(ServeError::InvalidConfig {
                reason: "cluster node name must be non-empty".to_string(),
            });
        }
        if self.nodes.iter().any(|n| n.name == name) {
            return Err(ServeError::InvalidConfig {
                reason: format!("duplicate cluster node name `{name}`"),
            });
        }
        self.nodes.push(ClusterNode { name, state });
        Ok(())
    }

    /// The routing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes, in insertion order.
    pub fn nodes(&self) -> &[ClusterNode<N>] {
        &self.nodes
    }

    /// Mutable access to one node's state.
    pub fn node_mut(&mut self, index: usize) -> &mut N {
        &mut self.nodes[index].state
    }

    /// The rendezvous score of `key` on node `node` under this seed.
    fn score(&self, node: &str, key: &str) -> u64 {
        mix64(self.seed ^ fnv1a(node) ^ fnv1a(key))
    }

    /// Route `key` to a node index: the argmax of the rendezvous score
    /// (ties break toward the lower index; with a 64-bit mix they are
    /// vanishingly rare). Panics on an empty cluster.
    pub fn route(&self, key: &str) -> usize {
        assert!(!self.nodes.is_empty(), "cannot route on an empty cluster");
        let mut best = 0;
        let mut best_score = self.score(&self.nodes[0].name, key);
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            let s = self.score(&n.name, key);
            if s > best_score {
                best = i;
                best_score = s;
            }
        }
        best
    }

    /// The node `key` routes to.
    pub fn node_for(&self, key: &str) -> (usize, &N) {
        let i = self.route(key);
        (i, &self.nodes[i].state)
    }

    /// Shard `items` into per-node vectors by routing `key_of(item)`.
    pub fn partition<T>(&self, items: Vec<T>, key_of: impl Fn(&T) -> String) -> Vec<Vec<T>> {
        let mut parts: Vec<Vec<T>> = (0..self.nodes.len()).map(|_| Vec::new()).collect();
        for item in items {
            let node = self.route(&key_of(&item));
            parts[node].push(item);
        }
        parts
    }

    /// Fan `requests` out across the cluster and serve each node's
    /// share with `config` (per-node seed derived as
    /// `mix64(seed ⊕ node_index + 1)`, so stream ids differ per node but
    /// stay reproducible). `key_of` extracts the routing key from a
    /// request; `handler` dispatches one coalesced batch on one node
    /// (`node_index`, node state, batch key, jobs). Results come back
    /// in **global submission order**.
    pub fn serve_routed<P, T, E, F>(
        &self,
        config: &ServeConfig,
        requests: Vec<ServeRequest<P>>,
        key_of: impl Fn(&ServeRequest<P>) -> String,
        handler: F,
    ) -> ClusterRun<T, E>
    where
        P: Send,
        T: Send,
        E: Send,
        F: Fn(usize, &N, &str, &[Job<P>]) -> Vec<Result<T, E>> + Sync,
        N: Sync,
    {
        assert!(!self.nodes.is_empty(), "cannot serve on an empty cluster");
        // Shard in submission order, remembering each request's global
        // slot so node-local results stitch back deterministically.
        let mut shards: Vec<Vec<(usize, ServeRequest<P>)>> =
            (0..self.nodes.len()).map(|_| Vec::new()).collect();
        for (i, req) in requests.into_iter().enumerate() {
            let node = self.route(&key_of(&req));
            shards[node].push((i, req));
        }

        let total: usize = shards.iter().map(Vec::len).sum();
        let mut results: Vec<Option<Disposition<T, E>>> = (0..total).map(|_| None).collect();
        let mut routed = vec![0usize; total];
        let mut node_stats = Vec::with_capacity(self.nodes.len());
        for (node_idx, shard) in shards.into_iter().enumerate() {
            let node = &self.nodes[node_idx];
            let node_config = ServeConfig {
                seed: mix64(config.seed ^ (node_idx as u64 + 1)),
                ..config.clone()
            };
            let (slots, reqs): (Vec<usize>, Vec<ServeRequest<P>>) = shard.into_iter().unzip();
            for &s in &slots {
                routed[s] = node_idx;
            }
            let run = serve_requests(&node_config, reqs, |class, batch: &[Job<P>]| {
                handler(node_idx, &node.state, class, batch)
            });
            node_stats.push((node.name.clone(), run.stats));
            for (local, disposition) in run.results.into_iter().enumerate() {
                results[slots[local]] = Some(disposition);
            }
        }

        ClusterRun {
            results: results
                .into_iter()
                .map(|r| r.expect("every routed request produced a disposition"))
                .collect(),
            routed,
            node_stats,
        }
    }
}

/// Everything one [`Cluster::serve_routed`] fan-out produced.
#[derive(Debug)]
pub struct ClusterRun<T, E> {
    /// Per-request outcome, indexed by global submission order.
    pub results: Vec<Disposition<T, E>>,
    /// Which node index served each submission.
    pub routed: Vec<usize>,
    /// Per-node `(name, stats)` in node order.
    pub node_stats: Vec<(String, ServeStats)>,
}

impl<T, E> ClusterRun<T, E> {
    /// Field-wise sum of the per-node stats (a sum of reconciling
    /// per-tenant stats reconciles, so the global quota invariant
    /// carries across nodes).
    pub fn merged_stats(&self) -> ServeStats {
        let mut total = ServeStats::default();
        for (_, s) in &self.node_stats {
            total.submitted += s.submitted;
            total.admitted += s.admitted;
            total.rejected += s.rejected;
            total.shed += s.shed;
            total.batches += s.batches;
            total.largest_batch = total.largest_batch.max(s.largest_batch);
            for (tenant, t) in &s.per_tenant {
                let e = total.per_tenant.entry(tenant.clone()).or_default();
                e.submitted += t.submitted;
                e.admitted += t.admitted;
                e.rejected += t.rejected;
                e.shed += t.shed;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::Priority;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("user query number {i} about topic {}", i % 17)).collect()
    }

    #[test]
    fn routing_is_deterministic_and_covers_nodes() {
        let c = Cluster::with_nodes(42, 4, |_, _| ());
        let mut seen = [false; 4];
        for k in keys(200) {
            let n = c.route(&k);
            assert!(n < 4);
            assert_eq!(n, c.route(&k), "same key must route identically");
            seen[n] = true;
        }
        assert!(seen.iter().all(|s| *s), "200 keys should touch all 4 nodes: {seen:?}");
    }

    #[test]
    fn different_seeds_route_differently() {
        let a = Cluster::with_nodes(1, 4, |_, _| ());
        let b = Cluster::with_nodes(2, 4, |_, _| ());
        let ks = keys(100);
        let ra: Vec<usize> = ks.iter().map(|k| a.route(k)).collect();
        let rb: Vec<usize> = ks.iter().map(|k| b.route(k)).collect();
        assert_ne!(ra, rb, "routing must depend on the seed");
    }

    #[test]
    fn rendezvous_minimal_disruption_on_node_removal() {
        let full = Cluster::with_nodes(7, 4, |_, _| ());
        // The same cluster minus its last node.
        let mut smaller = Cluster::new(7);
        for i in 0..3 {
            smaller.add_node(format!("node-{i}"), ()).unwrap();
        }
        for k in keys(300) {
            let before = full.route(&k);
            let after = smaller.route(&k);
            if before < 3 {
                assert_eq!(before, after, "key `{k}` moved although its node survived");
            } else {
                assert!(after < 3);
            }
        }
    }

    #[test]
    fn duplicate_and_empty_node_names_are_typed_errors() {
        let mut c = Cluster::new(0);
        c.add_node("a", ()).unwrap();
        assert!(matches!(c.add_node("a", ()), Err(ServeError::InvalidConfig { .. })));
        assert!(matches!(c.add_node("  ", ()), Err(ServeError::InvalidConfig { .. })));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn partition_shards_consistently_with_route() {
        let c = Cluster::with_nodes(3, 3, |_, _| ());
        let items = keys(60);
        let parts = c.partition(items.clone(), |k| k.clone());
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 60);
        for (node, part) in parts.iter().enumerate() {
            for k in part {
                assert_eq!(c.route(k), node);
            }
        }
    }

    #[test]
    fn serve_routed_returns_global_order_and_merged_stats() {
        let c = Cluster::with_nodes(9, 3, |_, _| ());
        let requests: Vec<ServeRequest<u64>> = (0..30u64)
            .map(|i| {
                ServeRequest::builder(format!("tenant-{}", i % 3), i)
                    .class(Priority::Standard)
                    .batch_key("b")
                    .build()
                    .unwrap()
            })
            .collect();
        let run: ClusterRun<u64, ServeError> = c.serve_routed(
            &ServeConfig::default(),
            requests,
            |r| format!("key-{}", r.payload),
            |node, _state, _class, batch| {
                batch.iter().map(|j| Ok(j.payload * 10 + node as u64)).collect()
            },
        );
        assert_eq!(run.results.len(), 30);
        for (i, d) in run.results.iter().enumerate() {
            let Disposition::Done(Ok(v)) = d else { panic!("request {i} failed") };
            assert_eq!(*v / 10, i as u64, "results must come back in submission order");
            assert_eq!(*v % 10, run.routed[i] as u64, "payload tagged with serving node");
        }
        let merged = run.merged_stats();
        assert_eq!(merged.submitted, 30);
        assert_eq!(merged.admitted, 30);
        assert_eq!(merged.per_tenant.len(), 3);
        for (t, s) in &merged.per_tenant {
            assert!(s.reconciles(), "tenant {t}: {s:?}");
            assert_eq!(s.submitted, 10);
        }
    }
}
