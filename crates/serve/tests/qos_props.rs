//! Property tests for the QoS layer's two headline guarantees:
//!
//! * **Starvation freedom** — under any backlog mix, every nonempty
//!   priority class is served within a bounded number of weighted-fair
//!   pops (the bound is `sum(weights)` consecutive pops while the class
//!   stays backlogged).
//! * **Exact quota reconciliation** — for any tenant mix, quota table,
//!   arrival cadence, seed, and worker count,
//!   `admitted + rejected + shed == submitted` holds per tenant and
//!   globally, and the whole disposition vector is independent of the
//!   worker count.

use llmdm_rt::proptest;
use llmdm_rt::proptest::prelude::*;
use llmdm_serve::qos::{QosItem, QosQueue};
use llmdm_serve::prelude::*;
use llmdm_serve::tenant::TokenBucket;
use llmdm_serve::tenant::MILLI_PER_JOB;

#[derive(Debug, Clone)]
struct Item {
    p: Priority,
    key: String,
}

impl QosItem for Item {
    fn priority(&self) -> Priority {
        self.p
    }
    fn batch_key(&self) -> &str {
        &self.key
    }
}

fn priority_of(raw: u8) -> Priority {
    match raw % 3 {
        0 => Priority::Interactive,
        1 => Priority::Standard,
        _ => Priority::Batch,
    }
}

proptest! {
    /// Weighted-fair dequeue is starvation-free: drain any generated
    /// backlog one item at a time and track, pop by pop, how long each
    /// backlogged class has waited since it was last served. No class
    /// may wait more than `sum(weights)` pops while it has queued work.
    #[test]
    fn weighted_fair_dequeue_is_starvation_free(
        raw in proptest::collection::vec((0u8..3, "[ab]"), 1..120),
    ) {
        let bound: usize = Priority::all().iter().map(|p| p.weight() as usize).sum();
        let q = QosQueue::new(1024);
        let mut remaining = [0usize; 3];
        for (p, key) in &raw {
            let p = priority_of(*p);
            remaining[p.rank()] += 1;
            q.try_push(Item { p, key: key.clone() }).expect("capacity is ample");
        }
        q.close();
        let mut waited = [0usize; 3];
        let mut drained = 0usize;
        while let Some(batch) = q.pop_batch(1) {
            prop_assert_eq!(batch.len(), 1);
            let served = batch[0].p.rank();
            remaining[served] -= 1;
            drained += 1;
            waited[served] = 0;
            for c in 0..3 {
                if c != served && remaining[c] > 0 {
                    waited[c] += 1;
                    prop_assert!(
                        waited[c] < bound,
                        "class rank {} starved for {} pops (bound {})",
                        c, waited[c], bound
                    );
                }
            }
        }
        prop_assert_eq!(drained, raw.len(), "every queued item must drain");
    }

    /// The drain order is a deterministic function of the backlog: two
    /// identical queues hand out identical batch sequences.
    #[test]
    fn weighted_fair_drain_order_is_deterministic(
        raw in proptest::collection::vec((0u8..3, "[abc]"), 0..80),
        max_batch in 1usize..6,
    ) {
        let drain = |raw: &[(u8, String)]| {
            let q = QosQueue::new(1024);
            for (p, key) in raw {
                q.try_push(Item { p: priority_of(*p), key: key.clone() }).unwrap();
            }
            q.close();
            let mut order = Vec::new();
            while let Some(batch) = q.pop_batch(max_batch) {
                order.push(
                    batch.iter().map(|i| (i.p.rank(), i.key.clone())).collect::<Vec<_>>(),
                );
            }
            order
        };
        prop_assert_eq!(drain(&raw), drain(&raw));
    }

    /// Quota accounting reconciles exactly — per tenant and globally —
    /// across tenant mixes, quota tables, arrival cadences, seeds, and
    /// worker counts, and the full disposition vector is identical at
    /// every worker count.
    #[test]
    fn quota_accounting_reconciles_across_seeds_and_workers(
        raw in proptest::collection::vec(("[abcd]", 0u8..3), 1..64),
        burst in 1u64..6,
        refill_per_sec in 0u64..400,
        arrival_interval_ms in 0u64..25,
        seed in any::<u64>(),
    ) {
        let build = |workers: usize| {
            ServeConfig::builder()
                .workers(workers)
                .seed(seed)
                .arrival_interval_ms(arrival_interval_ms)
                .default_policy(TenantPolicy::per_sec(burst, refill_per_sec))
                .build()
                .expect("valid config")
        };
        let requests = || -> Vec<ServeRequest<u64>> {
            raw.iter()
                .enumerate()
                .map(|(i, (tenant, class))| {
                    ServeRequest::builder(tenant.clone(), i as u64)
                        .class(priority_of(*class))
                        .build()
                        .expect("valid request")
                })
                .collect()
        };
        let handler = |class: &str, batch: &[Job<u64>]| -> Vec<Result<String, ServeError>> {
            batch.iter().map(|j| Ok(format!("{class}:{}", j.payload))).collect()
        };
        let base = serve_requests(&build(1), requests(), handler);
        prop_assert!(base.stats.reconciles(), "stats must reconcile: {:?}", base.stats);
        // Per-tenant rows cover the whole load, and every tenant row
        // reconciles on its own.
        let mut by_tenant = std::collections::BTreeMap::new();
        for r in requests() {
            *by_tenant.entry(r.tenant.as_str().to_string()).or_insert(0u64) += 1;
        }
        for (tenant, want) in &by_tenant {
            let t = &base.stats.per_tenant[tenant];
            prop_assert!(t.reconciles(), "tenant {}: {:?}", tenant, t);
            prop_assert_eq!(t.submitted, *want, "tenant {}", tenant);
            prop_assert!(t.admitted >= 1.min(*want), "burst >= 1 admits something");
        }
        // Throttle outcomes line up with the results vector.
        let throttled = base
            .results
            .iter()
            .filter(|d| {
                matches!(d, Disposition::Rejected(ServeError::Throttled { .. }))
            })
            .count() as u64;
        prop_assert_eq!(throttled, base.stats.rejected);
        for workers in [2usize, 8] {
            let run = serve_requests(&build(workers), requests(), handler);
            prop_assert_eq!(&run.results, &base.results, "workers={}", workers);
            prop_assert_eq!(&run.stats.per_tenant, &base.stats.per_tenant);
        }
    }

    /// The token bucket alone: any take sequence reconciles — each take
    /// either succeeds or reports a wait after which it succeeds (when
    /// refill is nonzero).
    #[test]
    fn token_bucket_retry_hints_are_exact(
        burst in 1u64..8,
        refill_per_sec in 1u64..500,
        gaps in proptest::collection::vec(0u64..40, 1..40),
    ) {
        let policy = TenantPolicy::per_sec(burst, refill_per_sec);
        let mut bucket = TokenBucket::new(&policy, 0);
        let mut now = 0u64;
        for gap in gaps {
            now += gap;
            if let Err(wait) = bucket.try_take(MILLI_PER_JOB, now) {
                prop_assert!(wait > 0 && wait < u64::MAX);
                // One millisecond before the hint the take still fails;
                // exactly at the hint it succeeds.
                let mut probe = bucket.clone();
                prop_assert!(probe.try_take(MILLI_PER_JOB, now + wait - 1).is_err());
                let mut probe = bucket.clone();
                prop_assert!(probe.try_take(MILLI_PER_JOB, now + wait).is_ok());
            }
        }
    }
}
