//! Minimal property-based testing, replacing the `proptest` crate.
//!
//! The workspace's property suites use a narrow slice of proptest:
//! range/tuple/`Just`/`prop_oneof!`/`prop_map`/`prop_recursive`
//! strategies, `proptest::collection::vec`, `proptest::option::of`,
//! regex-ish string patterns, and the `prop_assert*` macros. This
//! module reimplements exactly that slice on top of the in-tree
//! deterministic PRNG ([`crate::rand::SmallRng`]).
//!
//! ## Differences from proptest
//!
//! * **Deterministic by default.** Case seeds derive from a fixed base
//!   (override with `LLMDM_PROPTEST_SEED`) plus the property name, so a
//!   red property is red on every machine.
//! * **Shrink-by-halving.** Instead of integrated value-tree
//!   shrinking, a failing case is re-generated from the same seed at
//!   geometrically smaller *scale* (1/2, 1/4, … 1/64). Scale
//!   multiplies range widths, collection lengths, and string repeats,
//!   pulling every dimension toward its minimum simultaneously. The
//!   smallest still-failing case is reported.
//! * **String patterns** support the subset actually used: literal
//!   chars, `[...]` classes (ranges, negation, `&&` intersection),
//!   `\PC` (any printable char, multibyte included), and `{m,n}`
//!   repetition.

use crate::rand::{Rng, SeedableRng, SmallRng};
use std::fmt;
use std::rc::Rc;

mod pattern;

/// Generation context: the seeded PRNG plus the current shrink scale in
/// `(0, 1]` (1 = full size, smaller = simpler cases).
pub struct Gen<'a> {
    /// Source of randomness for this case.
    pub rng: &'a mut SmallRng,
    /// Shrink scale: multiplies widths/lengths/repeats.
    pub scale: f64,
}

impl Gen<'_> {
    /// Scale a width: `floor(w * scale)`, preserving 0.
    #[inline]
    pub fn scaled(&self, width: u64) -> u64 {
        (width as f64 * self.scale) as u64
    }
}

/// Outcome of a single property case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
}

/// Result type produced by the body the [`proptest!`] macro generates.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("LLMDM_PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::*;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draw one value at the context's scale.
        fn generate(&self, g: &mut Gen<'_>) -> Self::Value;

        /// Transform generated values (`proptest`-compatible name).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies: repeatedly apply `f` to deepen, mixing
        /// in the leaf at every level so generation bottoms out.
        /// `max_nodes`/`items_per_collection` are accepted for proptest
        /// signature compatibility; depth alone bounds recursion here.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _max_nodes: u32,
            _items_per_collection: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = f(cur).boxed();
                cur = OneOf::new(vec![leaf.clone(), deeper]).boxed();
            }
            cur
        }

        /// Type-erase into a cloneable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |g: &mut Gen<'_>| s.generate(g)))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut Gen<'_>) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, g: &mut Gen<'_>) -> T {
            (self.0)(g)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _g: &mut Gen<'_>) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, g: &mut Gen<'_>) -> U {
            (self.f)(self.inner.generate(g))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Build from non-empty alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, g: &mut Gen<'_>) -> T {
            let i = g.rng.gen_index(self.options.len() as u64) as usize;
            self.options[i].generate(g)
        }
    }

    /// Function-pointer strategy backing [`any`].
    pub struct FnStrategy<T>(pub(crate) fn(&mut Gen<'_>) -> T);

    impl<T> Strategy for FnStrategy<T> {
        type Value = T;
        fn generate(&self, g: &mut Gen<'_>) -> T {
            (self.0)(g)
        }
    }

    // Numeric ranges are strategies, scaled toward their start.
    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, g: &mut Gen<'_>) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let draw = g.rng.gen_index(span);
                    let off = g.scaled(draw);
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, g: &mut Gen<'_>) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = (hi as i128 - lo as i128) as u64;
                    let draw = if span == u64::MAX {
                        g.rng.next_u64()
                    } else {
                        g.rng.gen_index(span + 1)
                    };
                    let off = g.scaled(draw);
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, g: &mut Gen<'_>) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let u = g.rng.gen_f64() * g.scale;
                    let v = self.start + u as $t * (self.end - self.start);
                    if v < self.end { v } else { self.start }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, g: &mut Gen<'_>) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let u = g.rng.gen_f64() * g.scale;
                    lo + u as $t * (hi - lo)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    // Tuples of strategies generate tuples of values, left to right.
    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, g: &mut Gen<'_>) -> Self::Value {
                    ($(self.$idx.generate(g),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    // String patterns (regex-ish subset) are strategies.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, g: &mut Gen<'_>) -> String {
            super::pattern::Pattern::parse(self).generate(g)
        }
    }

    /// Primitives with a full-domain default strategy ([`any`]).
    pub trait ArbPrim: Sized {
        /// Draw one unconstrained value.
        fn draw(g: &mut Gen<'_>) -> Self;
    }

    macro_rules! impl_arb_prim {
        ($($t:ty),*) => {$(
            impl ArbPrim for $t {
                fn draw(g: &mut Gen<'_>) -> $t {
                    g.rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arb_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbPrim for bool {
        fn draw(g: &mut Gen<'_>) -> bool {
            g.rng.next_u64() & 1 == 1
        }
    }

    impl ArbPrim for f64 {
        fn draw(g: &mut Gen<'_>) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let m = g.rng.gen_range(-1.0f64..1.0);
            let e = g.rng.gen_range(-60i32..60);
            m * (2f64).powi(e)
        }
    }

    impl ArbPrim for f32 {
        fn draw(g: &mut Gen<'_>) -> f32 {
            f64::draw(g) as f32
        }
    }

    /// The default full-domain strategy for a primitive
    /// (`any::<u64>()`, `any::<bool>()`, …).
    pub fn any<T: ArbPrim>() -> FnStrategy<T> {
        FnStrategy(T::draw)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::strategy::Strategy;
    use super::Gen;

    /// Length specification: exact, `lo..hi`, or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for vectors of `element` with scaled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length is
    /// drawn from `size` (scaled toward the minimum when shrinking).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, g: &mut Gen<'_>) -> Vec<S::Value> {
            use crate::rand::Rng;
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let draw = g.rng.gen_index(span);
            let len = self.size.lo + g.scaled(draw) as usize;
            (0..len).map(|_| self.element.generate(g)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`proptest::option::of`).

    use super::strategy::Strategy;
    use super::Gen;

    /// Strategy for `Option<V>`: `None` 1/4 of the time.
    pub struct OptionStrategy<S>(S);

    /// `Some(inner)` three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, g: &mut Gen<'_>) -> Option<S::Value> {
            use crate::rand::Rng;
            if g.rng.gen_index(4) == 0 {
                None
            } else {
                Some(self.0.generate(g))
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use super::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use super::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Shrink scales tried after a failure, in order.
const SHRINK_SCALES: [f64; 6] = [0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625];

fn base_seed(name: &str) -> u64 {
    let env = std::env::var("LLMDM_PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE_F00Du64);
    // FNV-1a over the property name so sibling properties draw
    // independent streams.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    env ^ h
}

enum Outcome {
    Pass,
    Reject,
    Fail(String),
}

fn run_one<S, F>(strat: &S, test: &F, seed: u64, scale: f64) -> (String, Outcome)
where
    S: strategy::Strategy,
    S::Value: fmt::Debug,
    F: Fn(S::Value) -> TestCaseResult,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Gen { rng: &mut rng, scale };
    let args = strat.generate(&mut g);
    let dbg = format!("{args:?}");
    let outcome = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(args))) {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(TestCaseError::Reject)) => Outcome::Reject,
        Ok(Err(TestCaseError::Fail(msg))) => Outcome::Fail(msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic (non-string payload)".to_string());
            Outcome::Fail(format!("panic: {msg}"))
        }
    };
    (dbg, outcome)
}

/// Drive one property: draw cases until `config.cases` pass, shrinking
/// and panicking on the first failure. Called by the [`proptest!`]
/// macro; not intended for direct use.
pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strat: &S, test: F)
where
    S: strategy::Strategy,
    S::Value: fmt::Debug,
    F: Fn(S::Value) -> TestCaseResult,
{
    let base = base_seed(name);
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = config.cases as u64 * 16 + 64;
    while passed < config.cases {
        if attempts >= max_attempts {
            panic!(
                "property `{name}`: too many rejected cases \
                 ({passed}/{} passed after {attempts} attempts) — \
                 loosen `prop_assume!` conditions",
                config.cases
            );
        }
        let seed = base.wrapping_add(attempts);
        attempts += 1;
        let (dbg, outcome) = run_one(strat, &test, seed, 1.0);
        match outcome {
            Outcome::Pass => passed += 1,
            Outcome::Reject => continue,
            Outcome::Fail(msg) => {
                // Shrink: same seed, geometrically smaller scale; keep
                // the smallest scale that still fails.
                let mut minimal = (dbg, msg, 1.0f64);
                for &scale in &SHRINK_SCALES {
                    let (sdbg, soutcome) = run_one(strat, &test, seed, scale);
                    if let Outcome::Fail(smsg) = soutcome {
                        minimal = (sdbg, smsg, scale);
                    }
                }
                let (min_dbg, min_msg, min_scale) = minimal;
                panic!(
                    "property `{name}` failed after {passed} passing case(s)\n\
                     minimal failing input (seed={seed:#x}, scale={min_scale}):\n  \
                     {min_dbg}\ncause: {min_msg}\n\
                     (re-run deterministically with LLMDM_PROPTEST_SEED={})",
                    base_seed_env_value(base, attempts - 1)
                );
            }
        }
    }
}

/// The `LLMDM_PROPTEST_SEED` value that reproduces attempt `offset` as
/// the first attempt (accounting for the per-name mix).
fn base_seed_env_value(base: u64, offset: u64) -> u64 {
    // base = env ^ fnv(name); attempt seed = base + offset. Re-running
    // with env' = env + offset makes the failing seed the first drawn.
    base.wrapping_add(offset) ^ base ^ base_seed_env_raw()
}

fn base_seed_env_raw() -> u64 {
    std::env::var("LLMDM_PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE_F00Du64)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// llmdm_rt::proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))] // optional
///     #[test]
///     fn my_property(x in 0u32..100, s in "[a-z]{1,8}") {
///         prop_assert!(x < 100);
///         prop_assert_eq!(s.len(), s.len());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = { $crate::proptest::ProptestConfig::default() };
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = { $cfg:expr }; ) => {};
    (cfg = { $cfg:expr };
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::proptest::ProptestConfig = $cfg;
            let strat = ($($strat,)+);
            $crate::proptest::run_property(
                stringify!($name),
                &config,
                &strat,
                |($($arg,)+)| -> $crate::proptest::TestCaseResult {
                    { $body }
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { cfg = { $cfg }; $($rest)* }
    };
}

/// Property-scope assertion: fails the case (triggering shrinking)
/// instead of aborting the whole property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::proptest::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::proptest::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::proptest::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::proptest::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// `prop_assert!` for inequality, printing the shared value.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::proptest::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::proptest::TestCaseError::Fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), l
            )));
        }
    }};
}

/// Reject the current case (re-drawn with a fresh seed, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::proptest::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::proptest::strategy::OneOf::new(vec![
            $($crate::proptest::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    crate::proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -4i64..=4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::proptest::collection::vec(0u8..=255, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn pattern_matches_shape(s in "[a-z][a-z0-9_]{0,8}col") {
            prop_assert!(s.ends_with("col"));
            prop_assert!(s.len() >= 4 && s.len() <= 12, "len {}", s.len());
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn printable_pattern_has_no_controls(s in "\\PC{0,40}") {
            prop_assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
            prop_assert!(s.chars().count() <= 40);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(0usize),
            (1usize..5).prop_map(|x| x * 10),
        ]) {
            prop_assert!(v == 0 || (10..50).contains(&v));
        }
    }

    #[test]
    fn failing_property_panics_with_minimal_case() {
        let result = std::panic::catch_unwind(|| {
            super::run_property(
                "always_fails",
                &ProptestConfig::with_cases(8),
                &(0u32..100,),
                |(_x,)| -> TestCaseResult {
                    Err(TestCaseError::Fail("forced".into()))
                },
            );
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("forced"), "{msg}");
        assert!(msg.contains("scale=0.015625"), "shrink did not reach min scale: {msg}");
    }

    #[test]
    fn over_rejection_is_reported() {
        let result = std::panic::catch_unwind(|| {
            super::run_property(
                "rejects_everything",
                &ProptestConfig::with_cases(4),
                &(0u32..100,),
                |(_x,)| -> TestCaseResult { Err(TestCaseError::Reject) },
            );
        });
        let err = result.expect_err("must give up");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("rejected"), "{msg}");
    }

    #[test]
    fn deterministic_generation() {
        use super::strategy::any;
        use crate::rand::{SeedableRng, SmallRng};
        let strat = (any::<u64>(), "[a-z]{3,9}");
        let mut draws = Vec::new();
        for _ in 0..2 {
            let mut rng = SmallRng::seed_from_u64(99);
            let mut g = super::Gen { rng: &mut rng, scale: 1.0 };
            draws.push(strat.generate(&mut g));
        }
        assert_eq!(draws[0], draws[1]);
    }
}
