//! Dependency-free JSON: a value model, a recursive-descent parser, a
//! compact printer, and the [`ToJson`] / [`FromJson`] traits that
//! replace `serde::{Serialize, Deserialize}` across the workspace.
//!
//! Design goals, in order: **round-trip fidelity** (everything the
//! workspace serializes must parse back equal), **hand-writability**
//! (impls are a dozen lines, no derive machinery), and **stable
//! output** (object fields keep insertion order, floats print via
//! Rust's shortest-roundtrip formatting), so serialized experiment
//! artifacts diff cleanly across runs.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object fields preserve insertion order (`Vec` of
/// pairs, not a map) so output is deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`] or [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset in the input (parse errors only).
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A shape/conversion error (no meaningful offset).
    pub fn shape(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into(), at: 0 }
    }
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required object field, as a shape error if missing.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError::shape(format!("missing field `{key}`")))
    }

    /// This value as an `f64`.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(JsonError::shape(format!("expected number, got {}", other.kind()))),
        }
    }

    /// This value as a `u64` (must be a non-negative integral number).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Ok(n as u64)
        } else {
            Err(JsonError::shape(format!("expected unsigned integer, got {n}")))
        }
    }

    /// This value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        Ok(self.as_u64()? as usize)
    }

    /// This value as an `i64`.
    pub fn as_i64(&self) -> Result<i64, JsonError> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&n) {
            Ok(n as i64)
        } else {
            Err(JsonError::shape(format!("expected integer, got {n}")))
        }
    }

    /// This value as a `bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::shape(format!("expected bool, got {}", other.kind()))),
        }
    }

    /// This value as a `&str`.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::shape(format!("expected string, got {}", other.kind()))),
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::shape(format!("expected array, got {}", other.kind()))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Render compactly (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; serialize as null (serde_json's default).
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{}` on f64 is Rust's shortest round-trip form.
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { msg: msg.to_string(), at: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, kw: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8
                    // because it came from &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor on the `u`), handling
    /// surrogate pairs. Leaves the cursor after the last consumed digit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // past 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.bytes.get(self.pos) == Some(&b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ToJson / FromJson — the serde replacement surface
// ---------------------------------------------------------------------------

/// Convert a value into a [`Json`] tree. The hand-written replacement
/// for `serde::Serialize`.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;

    /// Convenience: render straight to a compact string.
    fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

/// Reconstruct a value from a [`Json`] tree. The hand-written
/// replacement for `serde::Deserialize`.
pub trait FromJson: Sized {
    /// Convert from a parsed JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;

    /// Convenience: parse text then convert.
    fn from_json_str(s: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(s)?)
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::Num(*self as f64) }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                Ok(v.as_u64()? as $t)
            }
        }
    )*};
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::Num(*self as f64) }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                Ok(v.as_i64()? as $t)
            }
        }
    )*};
}

macro_rules! impl_json_float {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::Num(*self as f64) }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                Ok(v.as_f64()? as $t)
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);
impl_json_int!(i8, i16, i32, i64, isize);
impl_json_float!(f32, f64);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.as_str()?.to_string())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v.as_arr()?;
        if items.len() != 2 {
            return Err(JsonError::shape(format!("expected pair, got {} items", items.len())));
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(JsonError::shape(format!("expected object, got {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.render();
        let back = Json::parse(&text).unwrap_or_else(|e| panic!("reparse of {text}: {e}"));
        assert_eq!(v, &back, "via {text}");
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(3.5),
            Json::Num(1e-9),
            Json::Num(6.02e23),
            Json::Str(String::new()),
            Json::Str("hello \"world\"\n\t\\ 日本語 🚀".into()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let v = Json::obj([
            ("name", Json::Str("llmdm".into())),
            ("tiers", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Num(3.0)])),
            (
                "nested",
                Json::obj([("empty_arr", Json::Arr(vec![])), ("empty_obj", Json::Obj(vec![]))]),
            ),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 , \"x\\u0041\\n\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_str().unwrap(), "xA\n");
    }

    #[test]
    fn surrogate_pair_parses() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "[1] extra"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(42.5).render(), "42.5");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }

    #[test]
    fn derived_impls_roundtrip() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.5), ("b".into(), -2.0)];
        let j = v.to_json().render();
        let back = Vec::<(String, f64)>::from_json_str(&j).unwrap();
        assert_eq!(v, back);

        let opt: Option<u64> = None;
        assert_eq!(opt.to_json().render(), "null");
        assert_eq!(Option::<u64>::from_json_str("7").unwrap(), Some(7));
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(u64::from_json(&Json::Num(-1.0)).is_err());
        assert!(String::from_json(&Json::Num(1.0)).is_err());
        let obj = Json::obj([("x", Json::Num(1.0))]);
        assert!(obj.field("y").is_err());
        assert!(obj.field("x").is_ok());
    }
}
