//! # llmdm-rt — the hermetic runtime substrate
//!
//! Zero-dependency replacements for every external crate the workspace
//! used, so `cargo build --offline` succeeds from a cold registry cache
//! and every stochastic experiment is deterministic end to end:
//!
//! | removed crate | replacement | module |
//! |---------------|-------------|--------|
//! | `rand`        | SplitMix64-seeded xoshiro256\*\* with a rand-compatible surface (`Rng::gen_range`/`gen_bool`/`fill`, `SeedableRng::seed_from_u64`, `seq::SliceRandom`) | [`rand`] |
//! | `serde`       | hand-written [`json::ToJson`] / [`json::FromJson`] over an owned JSON tree | [`json`] |
//! | `proptest`    | seeded generator strategies + shrink-by-halving runner ([`proptest!`] macro) | [`proptest`] |
//! | `criterion`   | warmup + timed-iteration harness, median/p99, JSON reports | [`bench`] |
//! | `crossbeam`   | `std::thread::scope` (std since 1.63) | — |
//! | `parking_lot` | `std::sync::{Mutex, RwLock}` with poison recovery | — |
//!
//! The crate has **no** dependencies and must stay that way: the
//! workspace-level `tests/hermetic.rs` fails the build if any
//! non-`path` dependency appears anywhere in the workspace.
//!
//! Determinism contract: the PRNG output stream is pinned by
//! golden-value tests (`tests/prng_golden.rs`). Changing the generator
//! silently shifts every reproduced paper number, so those tests exist
//! to make such a change loud and deliberate.

#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod proptest;
pub mod rand;
pub mod sync;

pub use json::{FromJson, Json, JsonError, ToJson};
pub use crate::rand::{Rng, SeedableRng, SmallRng};
pub use sync::{lock_recover, read_recover, write_recover};
