//! Poison-recovering lock helpers — the `parking_lot` replacement
//! policy from the hermetic-build PR, as functions instead of a crate.
//!
//! `std::sync::Mutex` poisons when a holder panics; `parking_lot` (which
//! the workspace removed) never did. Every shared substrate here — obs
//! counters, caches, serve result slots — protects plain data whose
//! invariants are re-established per operation, so the right recovery is
//! always the same: take the guard anyway. These helpers centralize that
//! `unwrap_or_else(|e| e.into_inner())` idiom so a panicking worker can
//! never wedge a queue or cache for every other tenant, and so the
//! policy is greppable instead of copy-pasted.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock a mutex, recovering from poison (a panicking previous holder).
pub fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Read-lock an `RwLock`, recovering from poison.
pub fn read_recover<T: ?Sized>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-lock an `RwLock`, recovering from poison.
pub fn write_recover<T: ?Sized>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn lock_recover_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        let mut g = lock_recover(&m);
        *g += 1;
        assert_eq!(*g, 8);
    }

    #[test]
    fn rwlock_recover_survives_a_panicked_writer() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(read_recover(&l).len(), 3);
        write_recover(&l).push(4);
        assert_eq!(read_recover(&l).len(), 4);
    }
}
