//! Wall-clock micro-benchmark harness, replacing the `criterion` crate
//! for this workspace's `harness = false` bench targets.
//!
//! API-compatible with the slice of criterion the benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::throughput`], [`BenchmarkId::new`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: a warmup phase (time-boxed), then up to
//! [`Criterion::max_samples`] individually timed iterations within a
//! measurement budget. Reported statistics are min / mean / **median /
//! p99** — the two the ROADMAP's perf PRs regress against. Results are
//! printed as a table and written as JSON to `BENCH_<group>.json`
//! (override the directory with `LLMDM_BENCH_DIR`), so baselines can be
//! diffed and committed.

use crate::json::Json;
use std::fmt;
use std::time::{Duration, Instant};

/// An opaque value the optimizer must assume is used (re-export of
/// `std::hint::black_box`, criterion-compatible name).
pub use std::hint::black_box;

// Make `use llmdm_rt::bench::{criterion_group, criterion_main};` work the
// way the criterion imports did: the macros are `#[macro_export]`ed at the
// crate root, so re-export them under this module too.
pub use crate::{criterion_group, criterion_main};

/// Identifies a benchmark within a group (`function/param`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-iteration payload size for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// The timing callback handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<u64>,
    warmup: Duration,
    measure: Duration,
    max_samples: usize,
}

impl Bencher {
    /// Time `routine` repeatedly; one sample per invocation.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup: run without recording until the warmup budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
        }
        // Measurement: individually timed iterations.
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure && self.samples.len() < self.max_samples {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed().as_nanos() as u64);
        }
    }
}

/// Summary statistics for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Full benchmark id (`group/function/param`).
    pub id: String,
    /// Number of measured iterations.
    pub iters: usize,
    /// Minimum ns/iter.
    pub min_ns: u64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Median ns/iter.
    pub median_ns: u64,
    /// 99th-percentile ns/iter.
    pub p99_ns: u64,
    /// Throughput in MiB/s or Melem/s, if declared.
    pub throughput: Option<(f64, &'static str)>,
}

impl BenchStats {
    fn from_samples(id: String, mut samples: Vec<u64>, tp: Option<Throughput>) -> Self {
        assert!(!samples.is_empty(), "benchmark `{id}` recorded no samples");
        samples.sort_unstable();
        let iters = samples.len();
        let min_ns = samples[0];
        let mean_ns = samples.iter().sum::<u64>() as f64 / iters as f64;
        let median_ns = samples[iters / 2];
        let p99_ns = samples[((iters as f64 * 0.99) as usize).min(iters - 1)];
        let throughput = tp.map(|t| match t {
            Throughput::Bytes(b) => {
                ((b as f64 / (1024.0 * 1024.0)) / (median_ns as f64 * 1e-9), "MiB/s")
            }
            Throughput::Elements(n) => ((n as f64 / 1e6) / (median_ns as f64 * 1e-9), "Melem/s"),
        });
        BenchStats { id, iters, min_ns, mean_ns, median_ns, p99_ns, throughput }
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            ("iters".to_string(), Json::Num(self.iters as f64)),
            ("min_ns".to_string(), Json::Num(self.min_ns as f64)),
            ("mean_ns".to_string(), Json::Num(self.mean_ns)),
            ("median_ns".to_string(), Json::Num(self.median_ns as f64)),
            ("p99_ns".to_string(), Json::Num(self.p99_ns as f64)),
        ];
        if let Some((v, unit)) = self.throughput {
            fields.push(("throughput".to_string(), Json::Num(v)));
            fields.push(("throughput_unit".to_string(), Json::Str(unit.to_string())));
        }
        Json::Obj(fields)
    }
}

/// The harness entry point: holds timing budgets and collected results.
pub struct Criterion {
    /// Warmup budget per benchmark.
    pub warmup: Duration,
    /// Measurement budget per benchmark.
    pub measure: Duration,
    /// Sample-count cap per benchmark.
    pub max_samples: usize,
    results: Vec<BenchStats>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `LLMDM_BENCH_FAST=1` shrinks budgets for smoke runs.
        let fast = std::env::var("LLMDM_BENCH_FAST").is_ok_and(|v| v == "1");
        Criterion {
            warmup: Duration::from_millis(if fast { 20 } else { 150 }),
            measure: Duration::from_millis(if fast { 60 } else { 400 }),
            max_samples: 20_000,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// All stats collected so far.
    pub fn results(&self) -> &[BenchStats] {
        &self.results
    }

    /// Write collected results as a JSON report. Returns the rendered
    /// document.
    pub fn write_json(&self, path: &std::path::Path, label: &str) -> std::io::Result<String> {
        self.write_json_with_meta(path, label, &[])
    }

    /// Write collected results as a JSON report with extra top-level
    /// `meta` fields (git rev / seed / timestamp — supplied by
    /// `llmdm-obs::run_meta`, which this dependency-floor crate cannot
    /// itself compute). Returns the rendered document.
    pub fn write_json_with_meta(
        &self,
        path: &std::path::Path,
        label: &str,
        meta: &[(String, Json)],
    ) -> std::io::Result<String> {
        let mut fields: Vec<(String, Json)> = vec![
            ("label".to_string(), Json::Str(label.to_string())),
            ("harness".to_string(), Json::Str("llmdm-rt/bench".to_string())),
        ];
        if !meta.is_empty() {
            fields.push(("meta".to_string(), Json::Obj(meta.to_vec())));
        }
        fields.push((
            "benchmarks".to_string(),
            Json::Arr(self.results.iter().map(BenchStats::to_json).collect()),
        ));
        let doc = Json::Obj(fields);
        let text = doc.render();
        std::fs::write(path, &text)?;
        Ok(text)
    }
}

/// A named group of benchmarks sharing an optional throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration payload for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) {
        self.throughput = Some(tp);
    }

    /// Measure one function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let full = format!("{}/{id}", self.name);
        let mut b = Bencher {
            samples: Vec::new(),
            warmup: self.criterion.warmup,
            measure: self.criterion.measure,
            max_samples: self.criterion.max_samples,
        };
        f(&mut b);
        let stats = BenchStats::from_samples(full, b.samples, self.throughput);
        print_stats_line(&stats);
        self.criterion.results.push(stats);
    }

    /// End the group (criterion-compat no-op; results live on the
    /// parent [`Criterion`]).
    pub fn finish(self) {}
}

fn print_stats_line(s: &BenchStats) {
    let tp = match s.throughput {
        Some((v, unit)) => format!("  {v:10.1} {unit}"),
        None => String::new(),
    };
    println!(
        "{:<44} {:>10} iters  median {:>9}  p99 {:>9}{}",
        s.id,
        s.iters,
        fmt_ns(s.median_ns),
        fmt_ns(s.p99_ns),
        tp
    );
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Where bench JSON reports go: `LLMDM_BENCH_DIR` or the current dir.
pub fn report_dir() -> std::path::PathBuf {
    std::env::var_os("LLMDM_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."))
}

/// Declare a bench suite: `criterion_group!(benches, fn_a, fn_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::bench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` for a bench target: runs the groups, prints a table,
/// and writes `BENCH_<binary>.json`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::default();
            $($group(&mut c);)+
            let bin = std::env::args()
                .next()
                .and_then(|p| {
                    std::path::Path::new(&p)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                })
                .map(|s| s.split('-').next().unwrap_or(&s).to_string())
                .unwrap_or_else(|| "bench".to_string());
            let path = $crate::bench::report_dir().join(format!("BENCH_{bin}.json"));
            match c.write_json(&path, &bin) {
                Ok(_) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(10),
            max_samples: 500,
            results: Vec::new(),
        }
    }

    #[test]
    fn collects_sane_stats() {
        let mut c = fast();
        {
            let mut g = c.benchmark_group("unit");
            g.throughput(Throughput::Bytes(1024));
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_function(BenchmarkId::new("spin", 64), |b| {
                b.iter(|| (0..64u64).map(black_box).sum::<u64>())
            });
            g.finish();
        }
        let r = c.results();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].id, "unit/noop");
        assert_eq!(r[1].id, "unit/spin/64");
        for s in r {
            assert!(s.iters > 0);
            assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p99_ns);
            assert!(s.mean_ns > 0.0);
        }
        assert!(r[0].throughput.is_some());
    }

    #[test]
    fn json_report_roundtrips() {
        let mut c = fast();
        c.benchmark_group("g").bench_function("f", |b| b.iter(|| black_box(0)));
        let dir = std::env::temp_dir();
        let path = dir.join(format!("llmdm_bench_test_{}.json", std::process::id()));
        let text = c.write_json(&path, "test").expect("write");
        let parsed = crate::json::Json::parse(&text).expect("valid json");
        let benches = parsed.get("benchmarks").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 1);
        assert_eq!(benches[0].get("id").unwrap().as_str().unwrap(), "g/f");
        assert!(benches[0].get("median_ns").unwrap().as_f64().unwrap() >= 0.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("lookup_hit", 128).to_string(), "lookup_hit/128");
    }
}
