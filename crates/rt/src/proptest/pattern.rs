//! The regex-ish string-pattern subset used by strategy literals.
//!
//! Supported grammar (exactly what the workspace's property suites
//! use — anything else panics at parse time, loudly, since a pattern
//! is test code):
//!
//! ```text
//! pattern  := atom*
//! atom     := (class | escape | literal) repeat?
//! repeat   := '{' n (',' m)? '}'
//! class    := '[' '^'? item* ('&&' class)? ']'
//! item     := char '-' char | escaped-char | char
//! escape   := '\PC'   (any printable char, multibyte included)
//!           | '\d' | '\w' | '\s' | '\r' | '\n' | '\t' | '\\' …
//! ```
//!
//! Negated classes (`[^…]`) and `&&` intersections are materialized
//! over printable ASCII (0x20–0x7E), which matches how the suites use
//! them (`[ -~&&[^\r\n]]`).

use super::Gen;
use crate::rand::Rng;

/// One parsed pattern element with its repetition bounds.
enum Atom {
    /// A materialized character set.
    Set(Vec<char>),
    /// `\PC`: any printable character (weighted toward ASCII, with
    /// Latin-1, Greek, and CJK tails to stress multibyte handling).
    Printable,
}

/// A parsed string pattern.
pub struct Pattern {
    atoms: Vec<(Atom, usize, usize)>,
}

impl Pattern {
    /// Parse `src`, panicking on unsupported syntax.
    pub fn parse(src: &str) -> Pattern {
        let chars: Vec<char> = src.chars().collect();
        let mut p = PatternParser { chars, pos: 0, src };
        let mut atoms = Vec::new();
        while let Some(c) = p.peek() {
            let atom = match c {
                '[' => Atom::Set(p.class()),
                '\\' => {
                    p.next();
                    p.escape_atom()
                }
                _ => {
                    p.next();
                    Atom::Set(vec![c])
                }
            };
            let (lo, hi) = p.repeat();
            atoms.push((atom, lo, hi));
        }
        Pattern { atoms }
    }

    /// Generate one string at the context's scale.
    pub fn generate(&self, g: &mut Gen<'_>) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in &self.atoms {
            let span = (hi - lo + 1) as u64;
            let draw = g.rng.gen_index(span);
            let n = lo + g.scaled(draw) as usize;
            for _ in 0..n {
                out.push(match atom {
                    Atom::Set(chars) => chars[g.rng.gen_index(chars.len() as u64) as usize],
                    Atom::Printable => printable_char(g),
                });
            }
        }
        out
    }
}

/// Sample a printable (non-control) character: mostly ASCII, with
/// multibyte tails from well-populated Unicode blocks.
fn printable_char(g: &mut Gen<'_>) -> char {
    match g.rng.gen_index(20) {
        0..=15 => char::from_u32(0x20 + g.rng.gen_index(0x5F) as u32).unwrap(), // ' '..'~'
        16 | 17 => {
            // Latin-1 supplement, skipping U+00AD (soft hyphen, Cf).
            let c = 0xA1 + g.rng.gen_index(0x5F) as u32;
            char::from_u32(if c == 0xAD { 0xAE } else { c }).unwrap()
        }
        18 => char::from_u32(0x3B1 + g.rng.gen_index(24) as u32).unwrap(), // α..ω
        _ => char::from_u32(0x4E00 + g.rng.gen_index(0x80) as u32).unwrap(), // CJK
    }
}

struct PatternParser<'a> {
    chars: Vec<char>,
    pos: usize,
    src: &'a str,
}

impl PatternParser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn bail(&self, why: &str) -> ! {
        panic!("unsupported pattern {:?} at char {}: {}", self.src, self.pos, why)
    }

    fn escape_atom(&mut self) -> Atom {
        match self.next() {
            Some('P') => {
                // \PC — "not in category Control".
                match self.next() {
                    Some('C') => Atom::Printable,
                    _ => self.bail("only \\PC is supported"),
                }
            }
            Some('d') => Atom::Set(('0'..='9').collect()),
            Some('w') => {
                let mut set: Vec<char> = ('a'..='z').collect();
                set.extend('A'..='Z');
                set.extend('0'..='9');
                set.push('_');
                Atom::Set(set)
            }
            Some('s') => Atom::Set(vec![' ', '\t']),
            Some(c) => Atom::Set(vec![unescape(c)]),
            None => self.bail("dangling backslash"),
        }
    }

    /// Parse `[...]` into a materialized set.
    fn class(&mut self) -> Vec<char> {
        assert_eq!(self.next(), Some('['));
        let negated = if self.peek() == Some('^') {
            self.next();
            true
        } else {
            false
        };
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut intersect: Option<Vec<char>> = None;
        loop {
            match self.peek() {
                None => self.bail("unterminated class"),
                Some(']') => {
                    self.next();
                    break;
                }
                Some('&') if self.peek2() == Some('&') => {
                    self.next();
                    self.next();
                    if self.peek() != Some('[') {
                        self.bail("expected nested class after &&");
                    }
                    let nested = self.class();
                    intersect = Some(match intersect {
                        None => nested,
                        Some(prev) => prev.into_iter().filter(|c| nested.contains(c)).collect(),
                    });
                }
                Some('\\') => {
                    self.next();
                    let e = self.next().unwrap_or_else(|| self.bail("dangling backslash"));
                    let c = unescape(e);
                    ranges.push((c, c));
                }
                Some(c) => {
                    self.next();
                    if self.peek() == Some('-') && self.peek2().is_some() && self.peek2() != Some(']')
                    {
                        self.next();
                        let hi = self.next().unwrap();
                        if hi < c {
                            self.bail("inverted range");
                        }
                        ranges.push((c, hi));
                    } else {
                        ranges.push((c, c));
                    }
                }
            }
        }
        let in_ranges =
            |ch: char| ranges.iter().any(|&(lo, hi)| (lo as u32..=hi as u32).contains(&(ch as u32)));
        let base: Vec<char> = if negated {
            // Printable ASCII minus the listed characters.
            (0x20u8..=0x7E).map(|b| b as char).filter(|&c| !in_ranges(c)).collect()
        } else {
            let mut out = Vec::new();
            for &(lo, hi) in &ranges {
                for cp in lo as u32..=hi as u32 {
                    if let Some(c) = char::from_u32(cp) {
                        out.push(c);
                    }
                }
            }
            out
        };
        let result: Vec<char> = match intersect {
            Some(other) => base.into_iter().filter(|c| other.contains(c)).collect(),
            None => base,
        };
        if result.is_empty() {
            self.bail("class matches no characters");
        }
        result
    }

    /// Parse optional `{n}` / `{m,n}`; default is exactly one.
    fn repeat(&mut self) -> (usize, usize) {
        if self.peek() != Some('{') {
            return (1, 1);
        }
        self.next();
        let lo = self.int();
        let hi = if self.peek() == Some(',') {
            self.next();
            self.int()
        } else {
            lo
        };
        if self.next() != Some('}') {
            self.bail("expected `}`");
        }
        if hi < lo {
            self.bail("inverted repeat bounds");
        }
        (lo, hi)
    }

    fn int(&mut self) -> usize {
        let mut n: Option<usize> = None;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                n = Some(n.unwrap_or(0) * 10 + d as usize);
                self.next();
            } else {
                break;
            }
        }
        n.unwrap_or_else(|| self.bail("expected number in repeat"))
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other, // \\  \]  \-  \.  etc.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand::{SeedableRng, SmallRng};

    fn gen_with(pat: &str, seed: u64) -> String {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = Gen { rng: &mut rng, scale: 1.0 };
        Pattern::parse(pat).generate(&mut g)
    }

    #[test]
    fn fixed_literal() {
        assert_eq!(gen_with("abc", 1), "abc");
    }

    #[test]
    fn class_with_ranges_and_repeat() {
        for seed in 0..50 {
            let s = gen_with("[a-z0-9_]{2,5}", seed);
            assert!((2..=5).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn trailing_literal_dash_is_literal() {
        for seed in 0..50 {
            let s = gen_with("[a-z-]{4}", seed);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    #[test]
    fn negation_and_intersection() {
        for seed in 0..100 {
            let s = gen_with("[ -~&&[^\\r\\n]]{0,20}", seed);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_escape_avoids_controls() {
        for seed in 0..100 {
            let s = gen_with("\\PC{0,30}", seed);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn multi_atom_pattern() {
        for seed in 0..50 {
            let s = gen_with("[a-z]{3,8} [0-9]{1,3}", seed);
            let (a, b) = s.split_once(' ').expect("space separator");
            assert!((3..=8).contains(&a.len()));
            assert!((1..=3).contains(&b.len()));
            assert!(b.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn shrink_scale_pulls_to_minimum() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut g = Gen { rng: &mut rng, scale: 0.0 };
        let s = Pattern::parse("[a-z]{3,12}").generate(&mut g);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "unsupported pattern")]
    fn inverted_repeat_panics() {
        Pattern::parse("[a-z]{5,2}");
    }

    #[test]
    #[should_panic(expected = "unsupported pattern")]
    fn unterminated_class_panics() {
        Pattern::parse("[a-z");
    }
}
