//! Deterministic, dependency-free random number generation.
//!
//! This module is a drop-in replacement for the narrow slice of the
//! `rand` crate the workspace used: [`SmallRng`] (here a
//! xoshiro256\*\* core seeded through SplitMix64), the [`Rng`] /
//! [`SeedableRng`] traits, and the [`seq::SliceRandom`] helpers
//! (`choose`, `choose_multiple` — rand's `sample` — and `shuffle`).
//!
//! Determinism is a feature, not an accident: every stochastic
//! component in the reproduction (model zoo, vector indexes, DP noise,
//! workload generators) draws from a seeded [`SmallRng`], so the
//! paper-table numbers are bit-stable across runs and platforms. The
//! exact output stream is pinned by golden-value tests in
//! `crates/rt/tests/prng_golden.rs`; changing the generator is an
//! intentional, loud act.
//!
//! ## Algorithm
//!
//! * **Seeding:** SplitMix64 (Steele, Lea & Flood) expands a single
//!   `u64` seed into the 256-bit xoshiro state. This guarantees a
//!   well-mixed, never-all-zero state even for adversarial seeds such
//!   as `0`.
//! * **Core:** xoshiro256\*\* (Blackman & Vigna, 2018): 256 bits of
//!   state, period 2^256 − 1, passes BigCrush, ~0.8 ns/word on
//!   commodity hardware — faster than the ChaCha-based `StdRng` the
//!   workspace never needed.

use std::ops::{Range, RangeInclusive};

/// Multiplier/constants for the SplitMix64 seeding sequence.
const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construct a generator from a seed. Mirrors `rand::SeedableRng` for
/// the one constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-method surface shared by all generators.
///
/// Everything is derived from [`Rng::next_u64`], so any future
/// generator only has to supply that one method.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        // 53 high bits → multiply by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A uniform value in `range` (half-open `a..b` or inclusive
    /// `a..=b`; integer and float endpoints). Panics on empty ranges,
    /// matching `rand`.
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        self.gen_f64() < p
    }

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Uniform index in `[0, n)` via Lemire's multiply-shift. `n` must
    /// be non-zero.
    #[inline]
    fn gen_index(&mut self, n: u64) -> u64
    where
        Self: Sized,
    {
        debug_assert!(n > 0);
        // Widening multiply: maps a 64-bit draw onto [0, n) with bias
        // ≤ n/2^64 — immaterial for simulation workloads, and fully
        // deterministic (no rejection loop, so the stream position
        // after a draw is seed-independent).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Ranges that can be sampled uniformly. Implemented for `Range` and
/// `RangeInclusive` over the primitive numeric types the workspace
/// draws from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.gen_index(span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width inclusive range: the raw draw is the answer.
                    return rng.next_u64() as $t;
                }
                let off = rng.gen_index(span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty => $gen:ident),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = rng.$gen() as $t;
                let v = self.start + u * (self.end - self.start);
                // Floating rounding can land exactly on `end`; fall back
                // to `start` to preserve the half-open contract.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + rng.$gen() as $t * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32 => gen_f32, f64 => gen_f64);

/// A small, fast, deterministic generator: xoshiro256\*\* seeded via
/// SplitMix64. Named for drop-in compatibility with
/// `rand::rngs::SmallRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Raw 256-bit state constructor (used by tests and jump-ahead
    /// utilities). All-zero state is corrected to a fixed non-zero one.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            // xoshiro's one forbidden state; remap deterministically.
            return Self::seed_from_u64(0xDEAD_BEEF);
        }
        SmallRng { s }
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng::from_state(s)
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** — Blackman & Vigna (public domain reference).
        let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

impl Rng for &mut SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::SmallRng;
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random selection from slices: `choose`, `choose_multiple`
    /// (rand's `sample`), and Fisher–Yates `shuffle`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Up to `amount` distinct elements in random order
        /// (partial Fisher–Yates over indexes).
        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> Vec<&Self::Item>;

        /// Uniform in-place permutation (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_index(self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> Vec<&T> {
            let n = self.len();
            let amount = amount.min(n);
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..amount {
                let j = i + rng.gen_index((n - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..amount].iter().map(|&i| &self[i]).collect()
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_index((i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same == 0, "seeds 1 and 2 collided {same} times");
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = SmallRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let i = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&i));
            let u = r.gen_range(0usize..9);
            assert!(u < 9);
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = r.gen_range(0.25f32..0.75f32);
            assert!((0.25..0.75).contains(&g));
            let inc = r.gen_range(1usize..=3);
            assert!((1..=3).contains(&inc));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(4);
        let _ = r.gen_range(5i32..5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(5);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn fill_covers_tail() {
        let mut r = SmallRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "50-element shuffle left input fixed");
    }

    #[test]
    fn choose_and_choose_multiple() {
        let mut r = SmallRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut r).unwrap()));
        let picked = v.choose_multiple(&mut r, 2);
        assert_eq!(picked.len(), 2);
        assert_ne!(picked[0], picked[1]);
        assert_eq!(v.choose_multiple(&mut r, 99).len(), 3);
    }
}
