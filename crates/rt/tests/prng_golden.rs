//! Golden-value and distribution tests pinning the PRNG stream.
//!
//! Every stochastic experiment in the workspace derives from
//! `SmallRng::seed_from_u64`, so a silent change to the generator would
//! silently shift every reproduced paper number. These tests make such
//! a change loud and deliberate: if you intentionally change the
//! generator, re-derive the constants below and say so in the PR.

use llmdm_rt::rand::{Rng, SeedableRng, SmallRng};

/// First 8 outputs of xoshiro256** seeded (via SplitMix64) with 42.
const GOLDEN_SEED_42: [u64; 8] = [
    0x15780b2e0c2ec716,
    0x6104d9866d113a7e,
    0xae17533239e499a1,
    0xecb8ad4703b360a1,
    0xfde6dc7fe2ec5e64,
    0xc50da53101795238,
    0xb82154855a65ddb2,
    0xd99a2743ebe60087,
];

#[test]
fn seed_42_stream_is_pinned() {
    let mut rng = SmallRng::seed_from_u64(42);
    for (i, &want) in GOLDEN_SEED_42.iter().enumerate() {
        let got = rng.next_u64();
        assert_eq!(got, want, "output {i} of seed 42 drifted: got {got:#018x}");
    }
}

#[test]
fn unit_floats_are_pinned_and_in_range() {
    let mut rng = SmallRng::seed_from_u64(42);
    let want = [
        0.08386297105988216,
        0.37898025066266861,
        0.68004341102813937,
        0.92469294532538759,
    ];
    for (i, &w) in want.iter().enumerate() {
        let got = rng.gen_f64();
        assert!((0.0..1.0).contains(&got), "gen_f64 out of [0,1): {got}");
        assert_eq!(got, w, "gen_f64 output {i} drifted");
    }
}

#[test]
fn same_seed_same_stream_different_seed_different_stream() {
    let a: Vec<u64> = {
        let mut r = SmallRng::seed_from_u64(7);
        (0..16).map(|_| r.next_u64()).collect()
    };
    let b: Vec<u64> = {
        let mut r = SmallRng::seed_from_u64(7);
        (0..16).map(|_| r.next_u64()).collect()
    };
    let c: Vec<u64> = {
        let mut r = SmallRng::seed_from_u64(8);
        (0..16).map(|_| r.next_u64()).collect()
    };
    assert_eq!(a, b);
    assert_ne!(a, c);
}

/// Chi-square goodness-of-fit for `gen_range(0..10)` over 100k draws.
///
/// With df = 9 the statistic should land between ~0.2 (suspiciously
/// uniform — a broken constant generator) and 27.88 (p ≈ 0.001 — a
/// biased generator). The seed is fixed, so this is deterministic, but
/// the bounds are the statistically meaningful ones.
#[test]
fn gen_range_is_uniform_chi_square() {
    let mut rng = SmallRng::seed_from_u64(7);
    const DRAWS: usize = 100_000;
    const BINS: usize = 10;
    let mut counts = [0u32; BINS];
    for _ in 0..DRAWS {
        let v = rng.gen_range(0usize..BINS);
        counts[v] += 1;
    }
    let expected = (DRAWS / BINS) as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&o| {
            let d = o as f64 - expected;
            d * d / expected
        })
        .sum();
    assert!(chi2 < 27.88, "chi-square {chi2:.2} too high: gen_range(0..10) looks biased");
    assert!(chi2 > 0.2, "chi-square {chi2:.2} too low: suspiciously uniform");
    // Every bin must actually be hit.
    assert!(counts.iter().all(|&c| c > 0));
}

#[test]
fn gen_bool_rate_tracks_probability() {
    let mut rng = SmallRng::seed_from_u64(3);
    let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
    let rate = hits as f64 / 100_000.0;
    assert!((rate - 0.3).abs() < 0.01, "gen_bool(0.3) rate {rate}");
}
