//! Synthetic tabular data that mimics real column statistics (§II-A2:
//! "LLMs can generate synthetic datasets that mimic the characteristics of
//! real-world tabular data … the generated synthetic datasets can be
//! considered new training datasets for ML models" — sidestepping missing
//! data and privacy issues in the original).

use llmdm_sqlengine::{DataType, Table, Value};
use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::{Rng, SeedableRng};

/// Statistical profile of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnProfile {
    /// Numeric: sampled from a clipped normal fit.
    Numeric {
        /// Column mean.
        mean: f64,
        /// Column standard deviation.
        std: f64,
        /// Observed minimum.
        min: f64,
        /// Observed maximum.
        max: f64,
        /// Whether values were integers.
        integer: bool,
        /// Fraction of NULLs.
        null_rate: f64,
    },
    /// Categorical: sampled from the empirical frequency table.
    Categorical {
        /// `(value, count)` pairs.
        frequencies: Vec<(String, usize)>,
        /// Fraction of NULLs.
        null_rate: f64,
    },
}

/// A whole-table profile.
#[derive(Debug, Clone, PartialEq)]
pub struct TableProfile {
    /// Source table name.
    pub name: String,
    /// Column names, types, and profiles.
    pub columns: Vec<(String, DataType, ColumnProfile)>,
    /// Source row count.
    pub rows: usize,
}

impl TableProfile {
    /// Profile a table's columns.
    pub fn profile(table: &Table) -> TableProfile {
        let n = table.rows.len().max(1);
        let columns = table
            .schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let nulls = table.rows.iter().filter(|r| r[i].is_null()).count();
                let null_rate = nulls as f64 / n as f64;
                let profile = match c.dtype {
                    DataType::Int | DataType::Float => {
                        let vals: Vec<f64> =
                            table.rows.iter().filter_map(|r| r[i].as_f64()).collect();
                        let m = vals.len().max(1) as f64;
                        let mean = vals.iter().sum::<f64>() / m;
                        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / m;
                        ColumnProfile::Numeric {
                            mean,
                            std: var.sqrt(),
                            min: vals.iter().copied().fold(f64::INFINITY, f64::min),
                            max: vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                            integer: c.dtype == DataType::Int,
                            null_rate,
                        }
                    }
                    _ => {
                        let mut freqs: Vec<(String, usize)> = Vec::new();
                        for r in &table.rows {
                            let key = match &r[i] {
                                Value::Null => continue,
                                v => v.to_string(),
                            };
                            match freqs.iter_mut().find(|(k, _)| *k == key) {
                                Some((_, c)) => *c += 1,
                                None => freqs.push((key, 1)),
                            }
                        }
                        ColumnProfile::Categorical { frequencies: freqs, null_rate }
                    }
                };
                (c.name.clone(), c.dtype, profile)
            })
            .collect();
        TableProfile { name: table.name.clone(), columns, rows: table.rows.len() }
    }
}

/// Sample a synthetic table of `n` rows from a profile.
pub fn synthesize(profile: &TableProfile, n: usize, seed: u64) -> Table {
    let mut rng = SmallRng::seed_from_u64(seed);
    let schema = llmdm_sqlengine::Schema::new(
        profile
            .columns
            .iter()
            .map(|(name, ty, _)| llmdm_sqlengine::Column::new(name, *ty))
            .collect(),
    );
    let mut out = Table::new(&format!("{}_synth", profile.name), schema);
    for _ in 0..n {
        let row: Vec<Value> = profile
            .columns
            .iter()
            .map(|(_, _, p)| sample(p, &mut rng))
            .collect();
        out.push_row(row).expect("profile-conforming row");
    }
    out
}

fn sample(profile: &ColumnProfile, rng: &mut SmallRng) -> Value {
    match profile {
        ColumnProfile::Numeric { mean, std, min, max, integer, null_rate } => {
            if rng.gen_bool((*null_rate).clamp(0.0, 1.0)) {
                return Value::Null;
            }
            // Box–Muller normal sample, clipped to observed range.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let v = (mean + std * z).clamp(*min, *max);
            if *integer {
                Value::Int(v.round() as i64)
            } else {
                Value::Float(v)
            }
        }
        ColumnProfile::Categorical { frequencies, null_rate } => {
            if rng.gen_bool((*null_rate).clamp(0.0, 1.0)) || frequencies.is_empty() {
                return Value::Null;
            }
            let total: usize = frequencies.iter().map(|(_, c)| c).sum();
            let mut pick = rng.gen_range(0..total);
            for (v, c) in frequencies {
                if pick < *c {
                    // Stored as SQL-literal rendering; unquote strings.
                    return Value::Str(v.trim_matches('\'').to_string());
                }
                pick -= c;
            }
            Value::Null
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_sqlengine::{Column, Schema};

    fn source() -> Table {
        let schema = Schema::new(vec![
            Column::new("age", DataType::Int),
            Column::new("city", DataType::Text),
            Column::new("score", DataType::Float),
        ]);
        let mut t = Table::new("people", schema);
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..200i64 {
            let age = 20 + (i % 40);
            let city = if i % 3 == 0 { "beijing" } else { "singapore" };
            let score: f64 = 50.0 + rng.gen_range(-10.0..10.0);
            t.push_row(vec![
                Value::Int(age),
                Value::Str(city.into()),
                Value::Float(score),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn numeric_stats_are_mimicked() {
        let src = source();
        let prof = TableProfile::profile(&src);
        let synth = synthesize(&prof, 500, 9);
        let mean = |t: &Table, c: usize| {
            t.rows.iter().filter_map(|r| r[c].as_f64()).sum::<f64>() / t.rows.len() as f64
        };
        assert!((mean(&src, 0) - mean(&synth, 0)).abs() < 3.0, "age means diverge");
        assert!((mean(&src, 2) - mean(&synth, 2)).abs() < 2.0, "score means diverge");
        // Range respected.
        for r in &synth.rows {
            let age = r[0].as_f64().unwrap();
            assert!((20.0..=59.0).contains(&age));
        }
    }

    #[test]
    fn categorical_frequencies_are_mimicked() {
        let src = source();
        let prof = TableProfile::profile(&src);
        let synth = synthesize(&prof, 600, 4);
        let frac = |t: &Table, v: &str| {
            t.rows.iter().filter(|r| r[1] == Value::Str(v.into())).count() as f64
                / t.rows.len() as f64
        };
        // Source is ~1/3 beijing.
        assert!((frac(&synth, "beijing") - frac(&src, "beijing")).abs() < 0.1);
        // No novel categories.
        for r in &synth.rows {
            assert!(r[1] == Value::Str("beijing".into()) || r[1] == Value::Str("singapore".into()));
        }
    }

    #[test]
    fn null_rates_are_mimicked() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let mut t = Table::new("nully", schema);
        for i in 0..100i64 {
            t.push_row(vec![if i % 2 == 0 { Value::Null } else { Value::Int(i) }]).unwrap();
        }
        let prof = TableProfile::profile(&t);
        let synth = synthesize(&prof, 1000, 2);
        let nulls = synth.rows.iter().filter(|r| r[0].is_null()).count();
        assert!((400..=600).contains(&nulls), "null count {nulls}");
    }

    #[test]
    fn deterministic_per_seed() {
        let prof = TableProfile::profile(&source());
        assert_eq!(synthesize(&prof, 50, 3).rows, synthesize(&prof, 50, 3).rows);
        assert_ne!(synthesize(&prof, 50, 3).rows, synthesize(&prof, 50, 4).rows);
    }

    #[test]
    fn schema_preserved() {
        let prof = TableProfile::profile(&source());
        let synth = synthesize(&prof, 10, 1);
        assert_eq!(synth.schema.len(), 3);
        assert_eq!(synth.schema.columns()[1].name, "city");
    }
}
