//! # llmdm-datagen — LLM for data generation (§II-A, Figs. 2–3)
//!
//! The paper's first application area: using LLMs to generate the data
//! that data-management tasks themselves need.
//!
//! * [`sqlgen`] — **constraint-aware SQL generation** (Fig. 2): produce
//!   diverse, *correctly executable* SQL over a live schema — simple
//!   queries, multi-join queries, and sub-queries, exactly the three kinds
//!   the figure shows — under user constraints (kinds, join budget,
//!   executability, non-empty results);
//! * [`equivalence`] — **semantic-equivalence pairs** for DBMS logic-bug
//!   testing ("to detect the logic bugs of DBMS, we need to generate some
//!   SQL queries with semantic equivalence, which produce the same
//!   results"): ternary-logic partitioning (TLP-style) and tautology
//!   rewrites, plus a checker that flags result mismatches;
//! * [`exectime`] — **training-data generation** for learning-based query
//!   optimization (Fig. 3): a plan-feature cost model producing gold
//!   `<query, execution_time>` pairs, and an LLM labeler that imputes
//!   times for new queries from few-shot examples;
//! * [`impute`] — **missing-field annotation**: serialize table rows to
//!   natural language, feed labeled rows as few-shot examples, infer the
//!   missing fields with the simulated model's ICL;
//! * [`synth`] — **synthetic tabular data**: per-column statistical
//!   profiles and a sampler that mimics them, for privacy-safe training
//!   sets.

#![warn(missing_docs)]

pub mod equivalence;
pub mod exectime;
pub mod impute;
pub mod sqlgen;
pub mod synth;

pub use equivalence::{check_equivalence, equivalent_variants, tlp_partition};
pub use exectime::{CostModel, ExecTimeLabeler, LabelReport, PlanFeatures};
pub use impute::{ImputeReport, Imputer};
pub use sqlgen::{GeneratedSql, QueryKind, SqlGenConstraints, SqlGenerator};
pub use synth::{synthesize, ColumnProfile, TableProfile};
