//! Execution-time training-data generation (Fig. 3).
//!
//! "We feed some labeled training data (e.g., the `<query,
//! execution_time>` pairs) and database information into LLMs. For the
//! coming query, LLMs can assist in predicting its execution time."
//!
//! The ground truth comes from a plan-feature **cost model** (scan volume,
//! join fan-out, output size — the quantities a real executor's runtime
//! tracks), with deterministic per-query noise standing in for system
//! jitter. The [`ExecTimeLabeler`] then builds a few-shot prompt of
//! labeled pairs and asks a simulated model to impute the time for new
//! queries; difficulty scales with plan complexity, and the corruption
//! alternatives are realistically wrong magnitudes.

use std::sync::Arc;

use llmdm_model::hash::{combine, fnv1a_str, unit_f64};
use llmdm_model::{CompletionRequest, LanguageModel, PromptEnvelope, SimLlm};
use llmdm_sqlengine::ast::{SelectItem, Statement};
use llmdm_sqlengine::{parse_statement, Database, SqlError};

/// Plan features driving the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanFeatures {
    /// Number of FROM tables.
    pub tables: usize,
    /// Sum of base-table rows scanned.
    pub scanned_rows: usize,
    /// Number of sub-queries.
    pub subqueries: usize,
    /// Whether the query aggregates.
    pub aggregates: bool,
    /// Result rows.
    pub output_rows: usize,
}

impl PlanFeatures {
    /// Extract features by parsing and executing the query.
    pub fn extract(db: &Database, sql: &str) -> Result<PlanFeatures, SqlError> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(select) = &stmt else {
            return Err(SqlError::Exec("cost model expects SELECT".into()));
        };
        let tables = select.from.len();
        let mut scanned = 0usize;
        for f in &select.from {
            scanned += db.table(&f.table)?.len();
        }
        let printed = llmdm_sqlengine::print_statement(&stmt);
        let subqueries = printed.matches("(SELECT").count();
        let aggregates = !select.group_by.is_empty()
            || select.projections.iter().any(|p| match p {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            });
        let rs = llmdm_sqlengine::exec::execute_select(db, select)?;
        Ok(PlanFeatures {
            tables,
            scanned_rows: scanned,
            subqueries,
            aggregates,
            output_rows: rs.len(),
        })
    }
}

/// The ground-truth cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Milliseconds per scanned row.
    pub per_row_ms: f64,
    /// Multiplier per extra joined table.
    pub join_factor: f64,
    /// Milliseconds per sub-query execution.
    pub subquery_ms: f64,
    /// Fixed aggregate overhead.
    pub agg_ms: f64,
    /// Relative noise amplitude.
    pub noise: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { per_row_ms: 0.05, join_factor: 1.8, subquery_ms: 4.0, agg_ms: 2.0, noise: 0.05 }
    }
}

impl CostModel {
    /// The simulated execution time (ms) of a query, deterministic per
    /// query text.
    pub fn execution_time_ms(&self, features: &PlanFeatures, sql: &str) -> f64 {
        let base = 1.0
            + self.per_row_ms
                * features.scanned_rows as f64
                * self.join_factor.powi(features.tables.saturating_sub(1) as i32)
            + self.subquery_ms * features.subqueries as f64
            + if features.aggregates { self.agg_ms } else { 0.0 }
            + 0.001 * features.output_rows as f64;
        let jitter = 1.0 + self.noise * (2.0 * unit_f64(combine(fnv1a_str(sql), 0x7173)) - 1.0);
        base * jitter
    }

    /// Produce `<query, time>` training pairs.
    pub fn label_all(
        &self,
        db: &Database,
        queries: &[String],
    ) -> Result<Vec<(String, f64)>, SqlError> {
        queries
            .iter()
            .map(|q| {
                let f = PlanFeatures::extract(db, q)?;
                Ok((q.clone(), self.execution_time_ms(&f, q)))
            })
            .collect()
    }
}

/// Report for the LLM labeling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelReport {
    /// Mean absolute relative error of imputed times vs gold.
    pub mean_rel_error: f64,
    /// Fraction of labels within 30% of the gold time (the robust
    /// usefulness metric: one 3x-off outlier cannot dominate it).
    pub within_30pct: f64,
    /// Queries labeled.
    pub n: usize,
}

/// Uses a simulated model to impute execution times from few-shot pairs,
/// via the harness oracle task (the gold time rides in a hidden header;
/// the model's capability curve decides whether the imputation lands near
/// it — see DESIGN.md §2 on the oracle convention).
pub struct ExecTimeLabeler {
    model: Arc<SimLlm>,
    cost: CostModel,
}

impl std::fmt::Debug for ExecTimeLabeler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecTimeLabeler").finish()
    }
}

impl ExecTimeLabeler {
    /// Create a labeler.
    pub fn new(model: Arc<SimLlm>, cost: CostModel) -> Self {
        ExecTimeLabeler { model, cost }
    }

    fn prompt(&self, examples: &[(String, f64)], query: &str, gold: f64, difficulty: f64) -> String {
        let mut body = String::from("Predict the execution time (ms) of the target query.\n");
        for (q, t) in examples {
            body.push_str(&format!("Example: {q} => {t:.2} ms\n"));
        }
        body.push_str(&format!("Target: {query}\n"));
        PromptEnvelope::builder("oracle")
            .header("gold", format!("{gold:.2}"))
            .header("difficulty", difficulty)
            .header("examples", examples.len())
            .header("alt", format!("{:.2}", gold * 3.0))
            .header("alt", format!("{:.2}", gold * 0.3))
            .header("alt", format!("{:.2}", gold + 25.0))
            .body(body)
            .build()
    }

    /// Impute times for `targets` given labeled `examples`; returns the
    /// imputed values and an error report against the gold cost model.
    pub fn impute(
        &self,
        db: &Database,
        examples: &[(String, f64)],
        targets: &[String],
    ) -> Result<(Vec<f64>, LabelReport), SqlError> {
        let mut imputed = Vec::with_capacity(targets.len());
        let mut rel_err_sum = 0.0;
        let mut close = 0usize;
        for q in targets {
            let f = PlanFeatures::extract(db, q)?;
            let gold = self.cost.execution_time_ms(&f, q);
            // More complex plans are harder to estimate.
            let difficulty = (0.1
                + 0.15 * f.tables.saturating_sub(1) as f64
                + 0.15 * f.subqueries as f64)
                .min(0.9);
            let prompt = self.prompt(examples, q, gold, difficulty);
            let text = self
                .model
                .complete(&CompletionRequest::new(prompt))
                .map_err(|e| SqlError::Exec(format!("model error: {e}")))?
                .text;
            let value: f64 = text.trim().parse().unwrap_or(gold * 3.0);
            let rel = ((value - gold) / gold).abs();
            rel_err_sum += rel;
            if rel <= 0.30 {
                close += 1;
            }
            imputed.push(value);
        }
        let n = targets.len();
        Ok((
            imputed,
            LabelReport {
                mean_rel_error: rel_err_sum / n.max(1) as f64,
                within_30pct: close as f64 / n.max(1) as f64,
                n,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_model::ModelZoo;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE a (id INT, x INT)").unwrap();
        db.execute("CREATE TABLE b (id INT, y INT)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO a VALUES ({i}, {})", i * 2)).unwrap();
            db.execute(&format!("INSERT INTO b VALUES ({i}, {})", i * 3)).unwrap();
        }
        db
    }

    #[test]
    fn features_reflect_plan_shape() {
        let db = db();
        let simple = PlanFeatures::extract(&db, "SELECT x FROM a WHERE x > 10").unwrap();
        assert_eq!(simple.tables, 1);
        assert_eq!(simple.scanned_rows, 50);
        assert!(!simple.aggregates);
        let join =
            PlanFeatures::extract(&db, "SELECT a.x FROM a JOIN b ON a.id = b.id").unwrap();
        assert_eq!(join.tables, 2);
        assert_eq!(join.scanned_rows, 100);
        let agg = PlanFeatures::extract(&db, "SELECT COUNT(*) FROM a").unwrap();
        assert!(agg.aggregates);
        let sub = PlanFeatures::extract(
            &db,
            "SELECT x FROM a WHERE id IN (SELECT id FROM b WHERE y > 30)",
        )
        .unwrap();
        assert_eq!(sub.subqueries, 1);
    }

    #[test]
    fn cost_grows_with_complexity() {
        let db = db();
        let cm = CostModel::default();
        let t_simple = {
            let f = PlanFeatures::extract(&db, "SELECT x FROM a").unwrap();
            cm.execution_time_ms(&f, "SELECT x FROM a")
        };
        let t_join = {
            let sql = "SELECT a.x FROM a JOIN b ON a.id = b.id";
            let f = PlanFeatures::extract(&db, sql).unwrap();
            cm.execution_time_ms(&f, sql)
        };
        assert!(t_join > t_simple * 1.5, "join {t_join} vs simple {t_simple}");
    }

    #[test]
    fn cost_is_deterministic() {
        let db = db();
        let cm = CostModel::default();
        let f = PlanFeatures::extract(&db, "SELECT x FROM a").unwrap();
        assert_eq!(
            cm.execution_time_ms(&f, "SELECT x FROM a"),
            cm.execution_time_ms(&f, "SELECT x FROM a")
        );
    }

    #[test]
    fn large_model_imputes_accurately_small_model_poorly() {
        let db = db();
        let cm = CostModel::default();
        let examples = cm
            .label_all(
                &db,
                &[
                    "SELECT x FROM a WHERE x > 5".to_string(),
                    "SELECT y FROM b WHERE y > 9".to_string(),
                    "SELECT a.x FROM a JOIN b ON a.id = b.id".to_string(),
                ],
            )
            .unwrap();
        let targets: Vec<String> = (0..30)
            .map(|i| format!("SELECT x FROM a WHERE x > {i}"))
            .collect();
        let zoo = ModelZoo::standard(5);
        let (_, large) = ExecTimeLabeler::new(zoo.large(), cm)
            .impute(&db, &examples, &targets)
            .unwrap();
        let (_, small) = ExecTimeLabeler::new(zoo.small(), cm)
            .impute(&db, &examples, &targets)
            .unwrap();
        assert!(
            large.within_30pct > small.within_30pct,
            "large {} vs small {}",
            large.within_30pct,
            small.within_30pct
        );
        assert!(large.within_30pct > 0.8, "large within30 {}", large.within_30pct);
    }
}
