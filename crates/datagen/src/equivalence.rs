//! Semantic-equivalence query pairs for DBMS logic-bug testing.
//!
//! §II-A1: "to detect the logic bugs of DBMS, we need to generate some SQL
//! queries with semantic equivalence, which produce the same results".
//! Two generators:
//!
//! * **tautology rewrites** — wrap the WHERE predicate in forms that must
//!   not change results (`p AND TRUE`, `p OR FALSE`, `NOT NOT p`);
//! * **ternary-logic partitioning** (TLP, after Rigger & Su's pivoted
//!   query synthesis line of work cited by the paper): a filter-less query
//!   equals the UNION ALL of its `p` / `NOT p` / `p IS NULL` partitions.
//!
//! [`check_equivalence`] executes both sides and reports mismatches — a
//! mismatch on a correct engine build is a logic bug.

use llmdm_sqlengine::ast::{Expr, SelectStmt, Statement, UnOp};
use llmdm_sqlengine::{parse_statement, print_statement, Database, SqlError};

/// Tautology rewrites of a SELECT's WHERE predicate. Returns SQL strings
/// that must produce identical results to the input.
pub fn equivalent_variants(sql: &str) -> Result<Vec<String>, SqlError> {
    let stmt = parse_statement(sql)?;
    let Statement::Select(select) = stmt else {
        return Err(SqlError::Exec("equivalence rewrites need a SELECT".into()));
    };
    let Some(pred) = select.selection.clone() else {
        return Ok(Vec::new());
    };
    let rewrites: Vec<Expr> = vec![
        // p AND TRUE
        Expr::bin(llmdm_sqlengine::ast::BinOp::And, pred.clone(), Expr::lit(true)),
        // p OR FALSE
        Expr::bin(llmdm_sqlengine::ast::BinOp::Or, pred.clone(), Expr::lit(false)),
        // NOT NOT p
        Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(Expr::Unary { op: UnOp::Not, expr: Box::new(pred.clone()) }),
        },
    ];
    Ok(rewrites
        .into_iter()
        .map(|p| {
            let mut s = select.clone();
            s.selection = Some(p);
            print_statement(&Statement::Select(s))
        })
        .collect())
}

/// TLP: for a query `SELECT … FROM … WHERE p`, its unfiltered form equals
/// the UNION ALL of the `p`, `NOT p`, and `p IS NULL` partitions. Returns
/// `(unfiltered_sql, partitioned_sql)`.
pub fn tlp_partition(sql: &str) -> Result<(String, String), SqlError> {
    let stmt = parse_statement(sql)?;
    let Statement::Select(select) = stmt else {
        return Err(SqlError::Exec("TLP needs a SELECT".into()));
    };
    if select.set_op.is_some() || !select.group_by.is_empty() || select.distinct {
        return Err(SqlError::Exec(
            "TLP partitioning applies to plain filtered SELECTs".into(),
        ));
    }
    let Some(pred) = select.selection.clone() else {
        return Err(SqlError::Exec("TLP needs a WHERE predicate".into()));
    };

    let mut unfiltered = select.clone();
    unfiltered.selection = None;
    unfiltered.order_by.clear();
    unfiltered.limit = None;
    unfiltered.offset = None;

    let part = |p: Expr| -> SelectStmt {
        let mut s = select.clone();
        s.selection = Some(p);
        s.order_by.clear();
        s.limit = None;
        s.offset = None;
        s.set_op = None;
        s
    };
    let p_true = part(pred.clone());
    let p_false = part(Expr::Unary { op: UnOp::Not, expr: Box::new(pred.clone()) });
    let p_null = part(Expr::IsNull {
        expr: Box::new(wrap_as_bool(pred)),
        negated: false,
    });

    // Chain: p UNION ALL (NOT p UNION ALL (p IS NULL)).
    let mut middle = p_false;
    middle.set_op = Some((llmdm_sqlengine::ast::SetOp::Union, true, Box::new(p_null)));
    let mut chained = p_true;
    chained.set_op = Some((llmdm_sqlengine::ast::SetOp::Union, true, Box::new(middle)));

    Ok((
        print_statement(&Statement::Select(unfiltered)),
        print_statement(&Statement::Select(chained)),
    ))
}

/// The predicate value itself for the IS NULL partition. (Our engine
/// evaluates `(<bool expr>) IS NULL` directly.)
fn wrap_as_bool(p: Expr) -> Expr {
    p
}

/// Execute two queries and check they return the same multiset of rows.
/// `Ok(true)` = equivalent (no bug); `Ok(false)` = logic bug detected.
pub fn check_equivalence(db: &Database, a: &str, b: &str) -> Result<bool, SqlError> {
    let mut scratch = db.clone();
    let ra = scratch.query(a)?;
    let rb = scratch.query(b)?;
    Ok(ra.bag_eq(&rb))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INT, x INT, s TEXT)").unwrap();
        db.execute(
            "INSERT INTO t VALUES (1, 10, 'a'), (2, 20, 'b'), (3, NULL, 'c'), (4, 5, NULL)",
        )
        .unwrap();
        db
    }

    #[test]
    fn tautology_variants_are_equivalent() {
        let db = db();
        let sql = "SELECT id, x FROM t WHERE x > 8";
        for v in equivalent_variants(sql).unwrap() {
            assert!(
                check_equivalence(&db, sql, &v).unwrap(),
                "variant diverged: {v}"
            );
        }
    }

    #[test]
    fn tlp_partition_covers_all_rows_including_null() {
        let db = db();
        // x is NULL for id 3 — the IS NULL partition must catch it.
        let (unfiltered, partitioned) = tlp_partition("SELECT id FROM t WHERE x > 8").unwrap();
        assert!(
            check_equivalence(&db, &unfiltered, &partitioned).unwrap(),
            "TLP mismatch:\n{unfiltered}\nvs\n{partitioned}"
        );
    }

    #[test]
    fn tlp_detects_an_injected_logic_bug() {
        let db = db();
        let (unfiltered, partitioned) = tlp_partition("SELECT id FROM t WHERE x > 8").unwrap();
        // Simulate a buggy engine by dropping the IS NULL partition (the
        // last UNION ALL branch): the checker must notice the missing row.
        let cut = partitioned.rfind(" UNION ALL ").expect("partitioned query has branches");
        let broken = partitioned[..cut].to_string();
        assert_ne!(broken, partitioned, "test setup: truncation must apply");
        assert!(!check_equivalence(&db, &unfiltered, &broken).unwrap());
    }

    #[test]
    fn variants_of_query_without_where_are_empty() {
        assert!(equivalent_variants("SELECT id FROM t").unwrap().is_empty());
    }

    #[test]
    fn tlp_rejects_unsupported_shapes() {
        assert!(tlp_partition("SELECT id FROM t").is_err());
        assert!(tlp_partition("SELECT DISTINCT id FROM t WHERE x > 1").is_err());
        assert!(tlp_partition("SELECT COUNT(*) FROM t WHERE x > 1 GROUP BY id").is_err());
    }

    #[test]
    fn equivalence_check_rejects_broken_sql() {
        let db = db();
        assert!(check_equivalence(&db, "SELECT nope FROM t", "SELECT id FROM t").is_err());
    }

    #[test]
    fn string_predicates_partition_too() {
        let db = db();
        let (unfiltered, partitioned) =
            tlp_partition("SELECT id FROM t WHERE s = 'a'").unwrap();
        assert!(check_equivalence(&db, &unfiltered, &partitioned).unwrap());
    }
}
