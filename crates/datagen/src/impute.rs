//! Missing-field imputation via few-shot in-context learning (§II-A2).
//!
//! "We can first serialize the attribute names and values into a natural
//! language string for each row … use prompts to feed a few labeled data
//! to LLMs as examples in the few-shot setting … exploit the LLMs with
//! powerful in-context learning to infer the missing fields."

use std::sync::Arc;

use llmdm_model::{CompletionRequest, LanguageModel, PromptEnvelope, SimLlm};
use llmdm_sqlengine::{Table, Value};

/// Report from an imputation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImputeReport {
    /// Fraction of held-out fields recovered exactly.
    pub accuracy: f64,
    /// Fields imputed.
    pub n: usize,
}

/// Few-shot tabular imputer.
pub struct Imputer {
    model: Arc<SimLlm>,
    /// Labeled example rows per prompt.
    pub shots: usize,
}

impl std::fmt::Debug for Imputer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Imputer").field("shots", &self.shots).finish()
    }
}

/// Serialize a row as `col1=v1; col2=v2; …`, with `?` for the target.
pub fn serialize_row(table: &Table, row: &[Value], hide: Option<usize>) -> String {
    table
        .schema
        .columns()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if hide == Some(i) {
                format!("{}=?", c.name)
            } else {
                format!("{}={}", c.name, row[i])
            }
        })
        .collect::<Vec<_>>()
        .join("; ")
}

impl Imputer {
    /// Create an imputer.
    pub fn new(model: Arc<SimLlm>) -> Self {
        Imputer { model, shots: 4 }
    }

    fn prompt(
        &self,
        table: &Table,
        examples: &[usize],
        target_row: usize,
        target_col: usize,
        gold: &Value,
        alternatives: &[Value],
    ) -> String {
        let mut body = format!(
            "Fill the `?` field from the row context (table `{}`).\n",
            table.name
        );
        for &r in examples {
            body.push_str(&format!("Example: {}\n", serialize_row(table, &table.rows[r], None)));
        }
        body.push_str(&format!(
            "Row: {}\n",
            serialize_row(table, &table.rows[target_row], Some(target_col))
        ));
        // Difficulty: categorical fields with few distinct values are easy;
        // high-cardinality fields are hard for ICL.
        let distinct = distinct_values(table, target_col).len();
        let difficulty = ((distinct as f64).ln() / 4.0).clamp(0.05, 0.9);
        let mut b = PromptEnvelope::builder("oracle")
            .header("gold", gold.to_string())
            .header("difficulty", difficulty)
            .header("examples", examples.len());
        for a in alternatives.iter().take(4) {
            b = b.header("alt", a.to_string());
        }
        b.body(body).build()
    }

    /// Hold out column `col` of every row in turn, impute it, and score
    /// exact-match recovery.
    pub fn evaluate(&self, table: &Table, col: usize) -> Result<ImputeReport, llmdm_model::ModelError> {
        let n = table.rows.len();
        let mut correct = 0usize;
        for r in 0..n {
            let gold = table.rows[r][col].clone();
            if gold.is_null() {
                continue;
            }
            // Few-shot examples: the next `shots` rows (cyclically), never
            // the target itself.
            let examples: Vec<usize> =
                (1..=self.shots).map(|k| (r + k) % n).filter(|&e| e != r).collect();
            let alternatives: Vec<Value> = distinct_values(table, col)
                .into_iter()
                .filter(|v| *v != gold)
                .take(4)
                .collect();
            let prompt = self.prompt(table, &examples, r, col, &gold, &alternatives);
            let answer = self.model.complete(&CompletionRequest::new(prompt))?.text;
            if answer.trim() == gold.to_string() {
                correct += 1;
            }
        }
        let counted = table.rows.iter().filter(|row| !row[col].is_null()).count();
        Ok(ImputeReport { accuracy: correct as f64 / counted.max(1) as f64, n: counted })
    }

    /// Impute actual NULLs in column `col`, returning the filled table.
    pub fn fill_nulls(&self, table: &Table, col: usize) -> Result<Table, llmdm_model::ModelError> {
        let mut out = table.clone();
        let n = table.rows.len();
        for r in 0..n {
            if !table.rows[r][col].is_null() {
                continue;
            }
            // Use labeled rows as examples; majority value as the oracle
            // gold (the best label available without ground truth).
            let labeled: Vec<usize> =
                (0..n).filter(|&i| !table.rows[i][col].is_null()).take(self.shots).collect();
            let mode = mode_value(table, col).unwrap_or(Value::Null);
            let alternatives: Vec<Value> = distinct_values(table, col)
                .into_iter()
                .filter(|v| *v != mode)
                .take(4)
                .collect();
            let prompt = self.prompt(table, &labeled, r, col, &mode, &alternatives);
            let answer = self.model.complete(&CompletionRequest::new(prompt))?.text;
            out.rows[r][col] = parse_value_like(table, col, answer.trim());
        }
        Ok(out)
    }
}

fn distinct_values(table: &Table, col: usize) -> Vec<Value> {
    let mut vals: Vec<Value> = Vec::new();
    for row in &table.rows {
        let v = &row[col];
        if !v.is_null() && !vals.iter().any(|x| x == v) {
            vals.push(v.clone());
        }
    }
    vals
}

fn mode_value(table: &Table, col: usize) -> Option<Value> {
    let vals = distinct_values(table, col);
    vals.into_iter().max_by_key(|v| {
        table.rows.iter().filter(|r| &r[col] == v).count()
    })
}

/// Parse model output back into the column's value space (it arrives as a
/// SQL literal rendering).
fn parse_value_like(table: &Table, col: usize, text: &str) -> Value {
    for v in distinct_values(table, col) {
        if v.to_string() == text {
            return v;
        }
    }
    // Fall back to literal parsing.
    if let Ok(i) = text.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = text.parse::<f64>() {
        return Value::Float(f);
    }
    Value::Str(text.trim_matches('\'').to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_model::ModelZoo;
    use llmdm_sqlengine::{Column, DataType, Schema};

    /// A patients table where diagnosis is strongly patterned.
    fn patients() -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("age", DataType::Int),
            Column::new("unit", DataType::Text),
            Column::new("diagnosis", DataType::Text),
        ]);
        let mut t = Table::new("patients", schema);
        for i in 0..24i64 {
            let unit = if i % 2 == 0 { "cardio" } else { "neuro" };
            let diag = if i % 2 == 0 { "heart disease" } else { "migraine" };
            t.push_row(vec![
                Value::Int(i),
                Value::Int(30 + i),
                Value::Str(unit.into()),
                Value::Str(diag.into()),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn serialization_format() {
        let t = patients();
        let s = serialize_row(&t, &t.rows[0], Some(3));
        assert_eq!(s, "id=0; age=30; unit='cardio'; diagnosis=?");
    }

    #[test]
    fn large_model_recovers_held_out_fields() {
        let t = patients();
        let zoo = ModelZoo::standard(3);
        let rep = Imputer::new(zoo.large()).evaluate(&t, 3).unwrap();
        assert!(rep.accuracy > 0.85, "accuracy {}", rep.accuracy);
        assert_eq!(rep.n, 24);
    }

    #[test]
    fn small_model_is_worse() {
        let t = patients();
        let zoo = ModelZoo::standard(3);
        let large = Imputer::new(zoo.large()).evaluate(&t, 3).unwrap();
        let small = Imputer::new(zoo.small()).evaluate(&t, 3).unwrap();
        assert!(small.accuracy < large.accuracy);
    }

    #[test]
    fn fill_nulls_replaces_all() {
        let mut t = patients();
        t.rows[3][3] = Value::Null;
        t.rows[10][3] = Value::Null;
        let zoo = ModelZoo::standard(3);
        let filled = Imputer::new(zoo.large()).fill_nulls(&t, 3).unwrap();
        assert!(filled.rows.iter().all(|r| !r[3].is_null()));
        // Untouched fields unchanged.
        assert_eq!(filled.rows[0][3], t.rows[0][3]);
    }

    #[test]
    fn all_null_column_handled() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let mut t = Table::new("empty", schema);
        t.push_row(vec![Value::Null]).unwrap();
        let zoo = ModelZoo::standard(3);
        let rep = Imputer::new(zoo.large()).evaluate(&t, 0).unwrap();
        assert_eq!(rep.n, 0);
    }
}
