//! Constraint-aware SQL generation (Fig. 2).
//!
//! Generates diverse SQL over a live database: projections and predicates
//! are drawn from the actual schema and *sampled cell values*, so
//! generated predicates are satisfiable; join conditions come from
//! same-named column pairs across tables; sub-queries nest an id-set
//! selection. Constraints mirror the figure: which query kinds to emit,
//! the join budget, and whether queries must execute / return rows.

use llmdm_sqlengine::{DataType, Database};
use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::seq::SliceRandom;
use llmdm_rt::rand::{Rng, SeedableRng};

/// The query kinds of the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Single-table filter + projection.
    Simple,
    /// Two-or-more-table join.
    MultiJoin,
    /// `IN (SELECT …)` sub-query.
    SubQuery,
    /// GROUP BY aggregate.
    Aggregate,
}

impl QueryKind {
    /// All kinds.
    pub const ALL: [QueryKind; 4] =
        [QueryKind::Simple, QueryKind::MultiJoin, QueryKind::SubQuery, QueryKind::Aggregate];
}

/// User constraints on generation (Fig. 2's "SQL constraints" input).
#[derive(Debug, Clone)]
pub struct SqlGenConstraints {
    /// Kinds to generate (round-robin).
    pub kinds: Vec<QueryKind>,
    /// Maximum joined tables for [`QueryKind::MultiJoin`].
    pub max_joins: usize,
    /// Drop candidates that fail to execute.
    pub require_executable: bool,
    /// Drop candidates whose result is empty.
    pub require_nonempty: bool,
    /// How many queries to emit.
    pub n: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for SqlGenConstraints {
    fn default() -> Self {
        SqlGenConstraints {
            kinds: QueryKind::ALL.to_vec(),
            max_joins: 3,
            require_executable: true,
            require_nonempty: false,
            n: 20,
            seed: 0,
        }
    }
}

/// A generated query with its kind.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedSql {
    /// The SQL text.
    pub sql: String,
    /// Which kind it is.
    pub kind: QueryKind,
}

/// The generator.
#[derive(Debug)]
pub struct SqlGenerator {
    rng: SmallRng,
}

impl SqlGenerator {
    /// Create a generator.
    pub fn new(seed: u64) -> Self {
        SqlGenerator { rng: SmallRng::seed_from_u64(seed) }
    }

    /// Generate queries satisfying `constraints` against `db`.
    pub fn generate(&mut self, db: &Database, constraints: &SqlGenConstraints) -> Vec<GeneratedSql> {
        let mut out = Vec::with_capacity(constraints.n);
        let kinds = if constraints.kinds.is_empty() {
            QueryKind::ALL.to_vec()
        } else {
            constraints.kinds.clone()
        };
        let mut attempts = 0usize;
        let max_attempts = constraints.n * 30 + 100;
        while out.len() < constraints.n && attempts < max_attempts {
            // Cycle kinds by attempt, not by yield count: a kind the schema
            // cannot support (e.g. joins without shared columns) must not
            // wedge the generator.
            let kind = kinds[attempts % kinds.len()];
            attempts += 1;
            let Some(sql) = self.candidate(db, kind, constraints.max_joins) else {
                continue;
            };
            if constraints.require_executable || constraints.require_nonempty {
                let mut scratch = db.clone();
                match scratch.query(&sql) {
                    Ok(rs) => {
                        if constraints.require_nonempty && rs.is_empty() {
                            continue;
                        }
                    }
                    Err(_) => continue,
                }
            }
            out.push(GeneratedSql { sql, kind });
        }
        out
    }

    fn candidate(&mut self, db: &Database, kind: QueryKind, max_joins: usize) -> Option<String> {
        match kind {
            QueryKind::Simple => self.simple(db),
            QueryKind::MultiJoin => self.multi_join(db, max_joins),
            QueryKind::SubQuery => self.sub_query(db),
            QueryKind::Aggregate => self.aggregate(db),
        }
    }

    fn pick_table<'a>(&mut self, db: &'a Database) -> Option<&'a llmdm_sqlengine::Table> {
        let names = db.table_names();
        let name = names.choose(&mut self.rng)?;
        db.table(name).ok().filter(|t| !t.schema.is_empty())
    }

    /// A predicate on a random column using a sampled cell value.
    fn predicate(&mut self, table: &llmdm_sqlengine::Table, qualifier: Option<&str>) -> Option<String> {
        if table.rows.is_empty() {
            return None;
        }
        let col_idx = self.rng.gen_range(0..table.schema.len());
        let col = &table.schema.columns()[col_idx];
        let row = &table.rows[self.rng.gen_range(0..table.rows.len())];
        let v = &row[col_idx];
        if v.is_null() {
            return Some(format!("{} IS NULL", qualify(qualifier, &col.name)));
        }
        let name = qualify(qualifier, &col.name);
        let op = match col.dtype {
            DataType::Int | DataType::Float => *["=", ">", "<", ">=", "<="]
                .choose(&mut self.rng)
                .expect("non-empty"),
            _ => "=",
        };
        Some(format!("{name} {op} {v}"))
    }

    fn projection(&mut self, table: &llmdm_sqlengine::Table, qualifier: Option<&str>) -> String {
        let cols = table.schema.columns();
        let k = self.rng.gen_range(1..=cols.len().min(3));
        let mut idxs: Vec<usize> = (0..cols.len()).collect();
        idxs.shuffle(&mut self.rng);
        idxs.truncate(k);
        idxs.sort_unstable();
        idxs.iter()
            .map(|&i| qualify(qualifier, &cols[i].name))
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn simple(&mut self, db: &Database) -> Option<String> {
        let t = self.pick_table(db)?;
        let proj = self.projection(t, None);
        let pred = self.predicate(t, None)?;
        Some(format!("SELECT {proj} FROM {} WHERE {pred}", t.name))
    }

    /// Find `(table_a, table_b, shared_column)` join candidates.
    fn join_edges(db: &Database) -> Vec<(String, String, String)> {
        let names = db.table_names();
        let mut edges = Vec::new();
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                let (ta, tb) = (db.table(a).ok(), db.table(b).ok());
                let (Some(ta), Some(tb)) = (ta, tb) else { continue };
                for ca in ta.schema.columns() {
                    if tb.schema.index_of(&ca.name).is_some() {
                        edges.push((a.to_string(), b.to_string(), ca.name.clone()));
                    }
                }
            }
        }
        edges
    }

    fn multi_join(&mut self, db: &Database, max_joins: usize) -> Option<String> {
        let edges = Self::join_edges(db);
        let (a, b, col) = edges.choose(&mut self.rng)?.clone();
        let ta = db.table(&a).ok()?;
        let proj = self.projection(ta, Some("t0"));
        let mut sql = format!(
            "SELECT {proj} FROM {a} t0 JOIN {b} t1 ON t0.{col} = t1.{col}"
        );
        // Optionally extend the chain within the join budget.
        if max_joins > 2 {
            if let Some((c, d, col2)) = edges
                .iter()
                .find(|(x, y, _)| (*x == b || *y == b) && *x != a && *y != a)
                .cloned()
            {
                let third = if c == b { d } else { c };
                sql.push_str(&format!(" JOIN {third} t2 ON t1.{col2} = t2.{col2}"));
            }
        }
        if let Some(pred) = self.predicate(ta, Some("t0")) {
            sql.push_str(&format!(" WHERE {pred}"));
        }
        Some(sql)
    }

    fn sub_query(&mut self, db: &Database) -> Option<String> {
        let edges = Self::join_edges(db);
        let (a, b, col) = edges.choose(&mut self.rng)?.clone();
        let ta = db.table(&a).ok()?;
        let tb = db.table(&b).ok()?;
        let proj = self.projection(ta, None);
        let inner_pred = self.predicate(tb, None)?;
        Some(format!(
            "SELECT {proj} FROM {a} WHERE {col} IN (SELECT {col} FROM {b} WHERE {inner_pred})"
        ))
    }

    fn aggregate(&mut self, db: &Database) -> Option<String> {
        let t = self.pick_table(db)?;
        let cols = t.schema.columns();
        let group_col = &cols[self.rng.gen_range(0..cols.len())].name;
        let numeric: Vec<&str> = cols
            .iter()
            .filter(|c| matches!(c.dtype, DataType::Int | DataType::Float))
            .map(|c| c.name.as_str())
            .collect();
        let agg = if numeric.is_empty() || self.rng.gen_bool(0.5) {
            "COUNT(*)".to_string()
        } else {
            let c = numeric.choose(&mut self.rng).expect("non-empty");
            let f = *["SUM", "AVG", "MIN", "MAX"].choose(&mut self.rng).expect("non-empty");
            format!("{f}({c})")
        };
        Some(format!(
            "SELECT {group_col}, {agg} FROM {} GROUP BY {group_col}",
            t.name
        ))
    }
}

fn qualify(q: Option<&str>, col: &str) -> String {
    match q {
        Some(q) => format!("{q}.{col}"),
        None => col.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE stadium (stadium_id INT, name TEXT, capacity INT)").unwrap();
        db.execute("CREATE TABLE concert (concert_id INT, stadium_id INT, year INT)").unwrap();
        db.execute("CREATE TABLE singer (singer_id INT, concert_id INT, name TEXT)").unwrap();
        db.execute(
            "INSERT INTO stadium VALUES (1, 'A', 100), (2, 'B', 200), (3, 'C', 300)",
        )
        .unwrap();
        db.execute("INSERT INTO concert VALUES (10, 1, 2014), (11, 2, 2015), (12, 1, 2015)")
            .unwrap();
        db.execute("INSERT INTO singer VALUES (20, 10, 'X'), (21, 11, 'Y')").unwrap();
        db
    }

    #[test]
    fn generates_requested_count_all_executable() {
        let db = db();
        let mut g = SqlGenerator::new(1);
        let out = g.generate(&db, &SqlGenConstraints { n: 24, ..Default::default() });
        assert_eq!(out.len(), 24);
        let mut scratch = db.clone();
        for q in &out {
            assert!(scratch.query(&q.sql).is_ok(), "not executable: {}", q.sql);
        }
    }

    #[test]
    fn kinds_round_robin() {
        let db = db();
        let mut g = SqlGenerator::new(2);
        let out = g.generate(&db, &SqlGenConstraints { n: 8, ..Default::default() });
        for kind in QueryKind::ALL {
            assert!(out.iter().any(|q| q.kind == kind), "missing {kind:?}");
        }
    }

    #[test]
    fn multijoin_actually_joins() {
        let db = db();
        let mut g = SqlGenerator::new(3);
        let out = g.generate(
            &db,
            &SqlGenConstraints { kinds: vec![QueryKind::MultiJoin], n: 5, ..Default::default() },
        );
        for q in &out {
            assert!(q.sql.contains("JOIN"), "{}", q.sql);
        }
    }

    #[test]
    fn subqueries_nest() {
        let db = db();
        let mut g = SqlGenerator::new(4);
        let out = g.generate(
            &db,
            &SqlGenConstraints { kinds: vec![QueryKind::SubQuery], n: 5, ..Default::default() },
        );
        for q in &out {
            assert!(q.sql.contains("IN (SELECT"), "{}", q.sql);
        }
    }

    #[test]
    fn nonempty_constraint_filters() {
        let db = db();
        let mut g = SqlGenerator::new(5);
        let out = g.generate(
            &db,
            &SqlGenConstraints { require_nonempty: true, n: 12, ..Default::default() },
        );
        let mut scratch = db.clone();
        for q in &out {
            let rs = scratch.query(&q.sql).unwrap();
            assert!(!rs.is_empty(), "empty result: {}", q.sql);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let db = db();
        let a = SqlGenerator::new(7).generate(&db, &SqlGenConstraints::default());
        let b = SqlGenerator::new(7).generate(&db, &SqlGenConstraints::default());
        assert_eq!(a, b);
    }

    #[test]
    fn diversity_across_queries() {
        let db = db();
        let mut g = SqlGenerator::new(8);
        let out = g.generate(&db, &SqlGenConstraints { n: 20, ..Default::default() });
        let mut texts: Vec<&str> = out.iter().map(|q| q.sql.as_str()).collect();
        texts.sort();
        texts.dedup();
        assert!(texts.len() >= 12, "only {} distinct of 20", texts.len());
    }

    #[test]
    fn empty_database_yields_nothing() {
        let db = Database::new();
        let mut g = SqlGenerator::new(9);
        let out = g.generate(&db, &SqlGenConstraints { n: 5, ..Default::default() });
        assert!(out.is_empty());
    }
}
