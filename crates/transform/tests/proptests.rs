//! Property-based tests for the transformation crate: JSON round-trips,
//! pattern-miner soundness, mapping-program correctness, and operator
//! laws.

use llmdm_transform::ops::{Grid, Op};
use llmdm_transform::synthesize::{apply_program, discover_program, relationality};
use llmdm_transform::{mine_pattern, synthesize_mapping, JsonValue};
use llmdm_rt::proptest;
use llmdm_rt::proptest::prelude::*;

// ---------- JSON ----------

fn json_strategy() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        (-1_000_000i64..1_000_000).prop_map(|i| JsonValue::Number(i as f64)),
        "[a-zA-Z0-9 _.!?]{0,20}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(JsonValue::Array),
            proptest::collection::vec(("[a-z][a-z0-9_]{0,8}", inner), 0..4).prop_map(|fields| {
                // Deduplicate keys (JSON objects with repeated keys are not
                // round-trippable by design).
                let mut seen = Vec::new();
                let mut out = Vec::new();
                for (k, v) in fields {
                    if !seen.contains(&k) {
                        seen.push(k.clone());
                        out.push((k, v));
                    }
                }
                JsonValue::Object(out)
            }),
        ]
    })
}

proptest! {
    /// serialize → parse is the identity on generated JSON values.
    #[test]
    fn json_roundtrip(v in json_strategy()) {
        let rendered = v.to_string();
        let reparsed = JsonValue::parse(&rendered)
            .unwrap_or_else(|e| panic!("reparse of {rendered:?} failed: {e}"));
        prop_assert_eq!(v, reparsed);
    }

    /// A mined pattern matches every value it was mined from.
    #[test]
    fn mined_pattern_covers_training_values(
        month in 0usize..12,
        days in proptest::collection::vec(1u32..29, 1..8),
        year in 2000u32..2030,
    ) {
        let months = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
                      "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];
        let values: Vec<String> = days
            .iter()
            .map(|d| format!("{} {d:02} {year}", months[month]))
            .collect();
        let refs: Vec<&str> = values.iter().map(|s| s.as_str()).collect();
        let p = mine_pattern(&refs).expect("structurally uniform column");
        for v in &refs {
            prop_assert!(p.matches(v), "pattern {p} rejects {v}");
        }
        prop_assert!(!p.matches("completely different"), "pattern {p} over-generalizes");
    }

    /// A synthesized mapping program reproduces every training pair and
    /// applies to fresh same-format values.
    #[test]
    fn mapping_program_correct_on_training_pairs(
        pairs in proptest::collection::vec((1u32..13, 1u32..29, 2000u32..2030), 2..6),
    ) {
        let months = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
                      "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];
        let examples: Vec<(String, String)> = pairs
            .iter()
            .map(|(m, d, y)| {
                (format!("{} {d:02} {y}", months[(*m - 1) as usize]), format!("{m}/{d:02}/{y}"))
            })
            .collect();
        let refs: Vec<(&str, &str)> =
            examples.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let program = synthesize_mapping(&refs).expect("consistent mapping exists");
        for (src, dst) in &refs {
            let out = program.apply(src);
            prop_assert_eq!(out.as_deref(), Some(*dst));
        }
    }

    /// Transpose is an involution on rectangular grids.
    #[test]
    fn transpose_involution(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in any::<u32>(),
    ) {
        let grid: Grid = (0..rows)
            .map(|r| (0..cols).map(|c| format!("{}", (r * cols + c) as u32 ^ seed)).collect())
            .collect();
        let twice = Op::Transpose.apply(&Op::Transpose.apply(&grid));
        prop_assert_eq!(twice, grid);
    }

    /// DropEmptyRows and DropEmptyCols are idempotent.
    #[test]
    fn drop_ops_idempotent(
        cells in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(String::new()), Just("x".to_string())], 1..5),
            1..6,
        )
    ) {
        for op in [Op::DropEmptyRows, Op::DropEmptyCols] {
            let once = op.apply(&cells);
            let twice = op.apply(&once);
            prop_assert_eq!(&once, &twice, "op {:?} not idempotent", op);
        }
    }

    /// discover_program never returns a program that lowers relationality.
    #[test]
    fn discovery_never_hurts(
        body in proptest::collection::vec(
            proptest::collection::vec("[a-z0-9]{0,5}", 3),
            2..8,
        ),
        junk_rows in 0usize..3,
    ) {
        let mut grid: Grid = Vec::new();
        for _ in 0..junk_rows {
            grid.push(vec!["Report title".into(), String::new(), String::new()]);
        }
        grid.push(vec!["alpha".into(), "beta".into(), "gamma".into()]);
        grid.extend(body);
        let before = relationality(&grid);
        let (program, claimed) = discover_program(&grid, 3, 6);
        let after = relationality(&apply_program(&grid, &program));
        prop_assert!(after >= before - 1e-9, "program hurt: {before} -> {after}");
        prop_assert!((after - claimed).abs() < 1e-9, "claimed score mismatches");
    }
}
