//! Column pattern mining (§II-B3).
//!
//! "The pattern of 'Aug 14 2023' can be expressed as
//! `<letter>{3} <digit>{2} <digit>{4}`. It can also be expressed as
//! `Aug <digit>{2} 2023`. Obviously, the latter pattern representation has
//! a smaller scope."
//!
//! [`mine_pattern`] finds the *tightest* pattern covering every value of a
//! column: token positions where all values share a literal keep the
//! literal (smaller scope); positions that vary generalize to
//! `<letter>{n}` / `<digit>{n}` classes, with the length kept when
//! constant and ranged otherwise. Patterns then validate fresh data
//! ([`Pattern::matches`]) — the paper's drift-detection use.

use std::fmt;


/// One token of a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternToken {
    /// An exact literal (shared by all observed values).
    Literal(String),
    /// `<letter>{min,max}` — alphabetic run.
    Letters {
        /// Minimum run length.
        min: usize,
        /// Maximum run length.
        max: usize,
    },
    /// `<digit>{min,max}` — numeric run.
    Digits {
        /// Minimum run length.
        min: usize,
        /// Maximum run length.
        max: usize,
    },
    /// A separator/punctuation literal (kept exact).
    Separator(String),
}

impl PatternToken {
    fn matches(&self, piece: &Piece) -> bool {
        match (self, piece) {
            (PatternToken::Literal(l), Piece::Letters(s)) => l == s,
            (PatternToken::Literal(l), Piece::Digits(s)) => l == s,
            (PatternToken::Letters { min, max }, Piece::Letters(s)) => {
                (*min..=*max).contains(&s.chars().count())
            }
            (PatternToken::Digits { min, max }, Piece::Digits(s)) => {
                (*min..=*max).contains(&s.chars().count())
            }
            (PatternToken::Separator(l), Piece::Separator(s)) => l == s,
            _ => false,
        }
    }
}

impl fmt::Display for PatternToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternToken::Literal(s) => write!(f, "{s}"),
            PatternToken::Letters { min, max } if min == max => write!(f, "<letter>{{{min}}}"),
            PatternToken::Letters { min, max } => write!(f, "<letter>{{{min},{max}}}"),
            PatternToken::Digits { min, max } if min == max => write!(f, "<digit>{{{min}}}"),
            PatternToken::Digits { min, max } => write!(f, "<digit>{{{min},{max}}}"),
            PatternToken::Separator(s) => write!(f, "{s}"),
        }
    }
}

/// A column pattern: a token sequence all values must match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// The tokens.
    pub tokens: Vec<PatternToken>,
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tokens {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// A lexical piece of a concrete value.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Piece {
    Letters(String),
    Digits(String),
    Separator(String),
}

fn tokenize(value: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let mut cur = String::new();
    let mut kind: Option<u8> = None; // 0 letters, 1 digits, 2 sep
    for c in value.chars() {
        let k = if c.is_alphabetic() {
            0
        } else if c.is_ascii_digit() {
            1
        } else {
            2
        };
        if kind == Some(k) && k != 2 {
            cur.push(c);
        } else {
            if let Some(old) = kind {
                pieces.push(mk_piece(old, std::mem::take(&mut cur)));
            }
            cur.push(c);
            kind = Some(k);
        }
        // Separators are emitted per char? No — group runs of identical
        // separator chars for things like "--".
        if k == 2 {
            // keep accumulating identical separator chars only
        }
    }
    if let Some(old) = kind {
        pieces.push(mk_piece(old, cur));
    }
    pieces
}

fn mk_piece(kind: u8, s: String) -> Piece {
    match kind {
        0 => Piece::Letters(s),
        1 => Piece::Digits(s),
        _ => Piece::Separator(s),
    }
}

impl Pattern {
    /// Whether a value matches this pattern.
    pub fn matches(&self, value: &str) -> bool {
        let pieces = tokenize(value);
        if pieces.len() != self.tokens.len() {
            return false;
        }
        self.tokens.iter().zip(&pieces).all(|(t, p)| t.matches(p))
    }

    /// Fraction of `values` that match (drift validation).
    pub fn conformance(&self, values: &[&str]) -> f64 {
        if values.is_empty() {
            return 1.0;
        }
        values.iter().filter(|v| self.matches(v)).count() as f64 / values.len() as f64
    }
}

/// Mine the tightest common pattern of a column's values.
///
/// Returns `None` when values disagree on token structure (different piece
/// counts or kinds) — the column has no single pattern.
pub fn mine_pattern(values: &[&str]) -> Option<Pattern> {
    let mut rows: Vec<Vec<Piece>> = values.iter().map(|v| tokenize(v)).collect();
    let first = rows.pop()?;
    // Structural agreement check.
    for r in &rows {
        if r.len() != first.len() {
            return None;
        }
        for (a, b) in r.iter().zip(&first) {
            let same_kind = matches!(
                (a, b),
                (Piece::Letters(_), Piece::Letters(_))
                    | (Piece::Digits(_), Piece::Digits(_))
                    | (Piece::Separator(_), Piece::Separator(_))
            );
            if !same_kind {
                return None;
            }
        }
    }
    rows.push(first);

    let n = rows[0].len();
    let mut tokens = Vec::with_capacity(n);
    for i in 0..n {
        let column: Vec<&Piece> = rows.iter().map(|r| &r[i]).collect();
        let all_equal = column.windows(2).all(|w| w[0] == w[1]);
        match column[0] {
            Piece::Separator(s) => {
                if !all_equal {
                    return None; // differing separators break the pattern
                }
                tokens.push(PatternToken::Separator(s.clone()));
            }
            Piece::Letters(s) => {
                if all_equal {
                    // Tightest scope: keep the shared literal (the paper's
                    // "Aug <digit>{2} 2023" beats "<letter>{3} …").
                    tokens.push(PatternToken::Literal(s.clone()));
                } else {
                    let lens: Vec<usize> = column
                        .iter()
                        .map(|p| match p {
                            Piece::Letters(s) => s.chars().count(),
                            _ => 0,
                        })
                        .collect();
                    tokens.push(PatternToken::Letters {
                        min: *lens.iter().min().expect("non-empty"),
                        max: *lens.iter().max().expect("non-empty"),
                    });
                }
            }
            Piece::Digits(s) => {
                if all_equal {
                    tokens.push(PatternToken::Literal(s.clone()));
                } else {
                    let lens: Vec<usize> = column
                        .iter()
                        .map(|p| match p {
                            Piece::Digits(s) => s.chars().count(),
                            _ => 0,
                        })
                        .collect();
                    tokens.push(PatternToken::Digits {
                        min: *lens.iter().min().expect("non-empty"),
                        max: *lens.iter().max().expect("non-empty"),
                    });
                }
            }
        }
    }
    Some(Pattern { tokens })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mines_the_paper_date_pattern() {
        let p = mine_pattern(&["Aug 14 2023", "Jan 02 2023", "Dec 31 2023"]).unwrap();
        // Month varies → letters{3}; day varies → digits{2}; year constant
        // → literal 2023 (the tighter scope the paper prefers).
        assert_eq!(p.to_string(), "<letter>{3} <digit>{2} 2023");
        assert!(p.matches("Sep 09 2023"));
        assert!(!p.matches("Sep 09 2024"), "year literal is tight");
        assert!(!p.matches("September 09 2023"));
    }

    #[test]
    fn shared_month_kept_literal() {
        let p = mine_pattern(&["Aug 14 2023", "Aug 02 2023"]).unwrap();
        assert_eq!(p.to_string(), "Aug <digit>{2} 2023");
    }

    #[test]
    fn slash_dates() {
        let p = mine_pattern(&["8/14/2023", "12/01/2023", "9/30/2023"]).unwrap();
        assert_eq!(p.to_string(), "<digit>{1,2}/<digit>{2}/2023");
        assert!(p.matches("1/05/2023"));
        assert!(!p.matches("8-14-2023"), "separator is exact");
    }

    #[test]
    fn structurally_mixed_column_has_no_pattern() {
        assert!(mine_pattern(&["Aug 14 2023", "8/14/2023"]).is_none());
        assert!(mine_pattern(&["abc", "abc def"]).is_none());
    }

    #[test]
    fn ids_with_prefixes() {
        let p = mine_pattern(&["INV-0042", "INV-1234", "INV-0007"]).unwrap();
        assert_eq!(p.to_string(), "INV-<digit>{4}");
        assert!(p.matches("INV-9999"));
        assert!(!p.matches("ORD-9999"));
        assert!(!p.matches("INV-99"));
    }

    #[test]
    fn conformance_flags_drift() {
        let p = mine_pattern(&["INV-0042", "INV-1234"]).unwrap();
        // Fresh batch drifted to a new id scheme.
        let fresh = ["INV-0001", "INV-0002", "2024-INV-3", "2024-INV-4"];
        let c = p.conformance(&fresh);
        assert!((c - 0.5).abs() < 1e-9, "conformance {c}");
    }

    #[test]
    fn empty_inputs() {
        assert!(mine_pattern(&[]).is_none());
        let p = mine_pattern(&["abc"]).unwrap();
        assert!(p.matches("abc"));
        assert_eq!(p.conformance(&[]), 1.0);
    }

    #[test]
    fn single_value_is_all_literals() {
        let p = mine_pattern(&["Aug 14 2023"]).unwrap();
        assert_eq!(p.to_string(), "Aug 14 2023");
        assert!(!p.matches("Aug 15 2023"));
    }

    #[test]
    fn unicode_letters() {
        let p = mine_pattern(&["北京 2023", "上海 2023"]).unwrap();
        assert!(p.matches("广州 2023"));
    }
}
