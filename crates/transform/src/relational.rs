//! Semi-structured → relational: schema inference and flattening (Fig. 4
//! left path: "transform semi-structured data into structured tables for
//! easier queries").
//!
//! * Arrays of JSON objects become a table: the schema is the union of the
//!   keys, types are inferred by majority, nested objects flatten with
//!   dotted paths, and arrays of objects spawn *child tables* linked by a
//!   synthesized `_parent_id` key (classic shredding).
//! * Repeated XML child elements become rows; attributes and scalar
//!   children become columns.

use llmdm_sqlengine::{Column, DataType, Schema, Table, Value};

use crate::json::JsonValue;
use crate::xml::XmlNode;

/// Schema inference over a set of flattened records.
#[derive(Debug, Default)]
pub struct SchemaInference {
    /// (column, counts per type, nulls) accumulated.
    cols: Vec<(String, TypeVotes)>,
}

#[derive(Debug, Default, Clone, Copy)]
struct TypeVotes {
    int: usize,
    float: usize,
    text: usize,
    boolean: usize,
}

impl SchemaInference {
    /// Observe one record's `(path, value)` pairs.
    pub fn observe(&mut self, record: &[(String, Value)]) {
        for (path, v) in record {
            let slot = match self.cols.iter_mut().find(|(p, _)| p == path) {
                Some((_, votes)) => votes,
                None => {
                    self.cols.push((path.clone(), TypeVotes::default()));
                    &mut self.cols.last_mut().expect("just pushed").1
                }
            };
            match v {
                Value::Int(_) => slot.int += 1,
                Value::Float(_) => slot.float += 1,
                Value::Bool(_) => slot.boolean += 1,
                Value::Str(_) => slot.text += 1,
                Value::Null => {}
            }
        }
    }

    /// The inferred schema (columns in first-seen order).
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.cols
                .iter()
                .map(|(name, votes)| {
                    let dtype = if votes.text > 0 {
                        DataType::Text
                    } else if votes.float > 0 {
                        DataType::Float
                    } else if votes.int > 0 {
                        DataType::Int
                    } else if votes.boolean > 0 {
                        DataType::Bool
                    } else {
                        DataType::Text
                    };
                    Column::new(name, dtype)
                })
                .collect(),
        )
    }
}

/// Flatten one JSON object into `(dotted path, scalar value)` pairs;
/// object-array fields are deferred to child tables via `children`.
fn flatten_object(
    prefix: &str,
    obj: &[(String, JsonValue)],
    record: &mut Vec<(String, Value)>,
    children: &mut Vec<(String, Vec<JsonValue>)>,
) {
    for (k, v) in obj {
        let path = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
        match v {
            JsonValue::Null => record.push((path, Value::Null)),
            JsonValue::Bool(b) => record.push((path, Value::Bool(*b))),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    record.push((path, Value::Int(*n as i64)));
                } else {
                    record.push((path, Value::Float(*n)));
                }
            }
            JsonValue::String(s) => record.push((path, Value::Str(s.clone()))),
            JsonValue::Object(fields) => flatten_object(&path, fields, record, children),
            JsonValue::Array(items) => {
                if items.iter().all(|i| matches!(i, JsonValue::Object(_))) && !items.is_empty() {
                    children.push((path, items.clone()));
                } else {
                    // Scalar array: joined text rendering.
                    let joined = items
                        .iter()
                        .map(|i| match i {
                            JsonValue::String(s) => s.clone(),
                            other => other.to_string(),
                        })
                        .collect::<Vec<_>>()
                        .join(",");
                    record.push((path, Value::Str(joined)));
                }
            }
        }
    }
}

/// Convert a JSON document into relational tables.
///
/// The document must be an array of objects, or an object containing such
/// an array (the first one found becomes the root table). Nested arrays of
/// objects become child tables `"{root}_{path}"` with a `_parent_id`
/// column.
pub fn json_to_tables(name: &str, doc: &JsonValue) -> Result<Vec<Table>, String> {
    let rows: &[JsonValue] = match doc {
        JsonValue::Array(items) => items,
        JsonValue::Object(fields) => fields
            .iter()
            .find_map(|(_, v)| match v {
                JsonValue::Array(items)
                    if items.iter().all(|i| matches!(i, JsonValue::Object(_)))
                        && !items.is_empty() =>
                {
                    Some(items.as_slice())
                }
                _ => None,
            })
            .ok_or("object contains no array of records")?,
        _ => return Err("document is not an array of records".into()),
    };
    if rows.is_empty() {
        return Err("no records".into());
    }

    // Pass 1: flatten and infer.
    let mut inference = SchemaInference::default();
    let mut flat_rows: Vec<Vec<(String, Value)>> = Vec::with_capacity(rows.len());
    let mut child_groups: Vec<(String, Vec<(usize, JsonValue)>)> = Vec::new();
    for (i, r) in rows.iter().enumerate() {
        let JsonValue::Object(fields) = r else {
            return Err(format!("record {i} is not an object"));
        };
        let mut record = vec![("_id".to_string(), Value::Int(i as i64))];
        let mut children = Vec::new();
        flatten_object("", fields, &mut record, &mut children);
        inference.observe(&record);
        flat_rows.push(record);
        for (path, items) in children {
            let group = match child_groups.iter_mut().find(|(p, _)| *p == path) {
                Some((_, g)) => g,
                None => {
                    child_groups.push((path.clone(), Vec::new()));
                    &mut child_groups.last_mut().expect("just pushed").1
                }
            };
            for item in items {
                group.push((i, item));
            }
        }
    }

    // Pass 2: materialize the root table.
    let schema = inference.schema();
    let mut root = Table::new(name, schema.clone());
    for record in &flat_rows {
        let row: Vec<Value> = schema
            .columns()
            .iter()
            .map(|c| {
                record
                    .iter()
                    .find(|(p, _)| p.to_lowercase() == c.name)
                    .map(|(_, v)| coerce(v, c.dtype))
                    .unwrap_or(Value::Null)
            })
            .collect();
        root.push_row(row).map_err(|e| e.to_string())?;
    }
    let mut out = vec![root];

    // Pass 3: child tables, recursively.
    for (path, items) in child_groups {
        let with_parent: Vec<JsonValue> = items
            .into_iter()
            .map(|(parent, v)| match v {
                JsonValue::Object(mut fields) => {
                    fields.insert(
                        0,
                        ("_parent_id".to_string(), JsonValue::Number(parent as f64)),
                    );
                    JsonValue::Object(fields)
                }
                other => other,
            })
            .collect();
        let child_name = format!("{name}_{}", path.replace('.', "_"));
        out.extend(json_to_tables(&child_name, &JsonValue::Array(with_parent))?);
    }
    Ok(out)
}

/// Coerce a flattened value to the inferred column type.
fn coerce(v: &Value, dtype: DataType) -> Value {
    match (v, dtype) {
        (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
        (Value::Int(i), DataType::Text) => Value::Str(i.to_string()),
        (Value::Float(f), DataType::Text) => Value::Str(f.to_string()),
        (Value::Bool(b), DataType::Text) => Value::Str(b.to_string()),
        _ => v.clone(),
    }
}

/// Convert an XML document into one relational table: each repeated child
/// element of the root becomes a row; attributes and scalar children
/// become columns.
pub fn xml_to_table(root: &XmlNode) -> Result<Table, String> {
    // The row tag: the most frequent child tag.
    let mut tag_counts: Vec<(&str, usize)> = Vec::new();
    for c in &root.children {
        match tag_counts.iter_mut().find(|(t, _)| *t == c.tag) {
            Some((_, n)) => *n += 1,
            None => tag_counts.push((&c.tag, 1)),
        }
    }
    let (row_tag, _) = tag_counts
        .iter()
        .max_by_key(|(_, n)| *n)
        .ok_or("root has no children")?;
    let row_tag = row_tag.to_string();

    let mut inference = SchemaInference::default();
    let mut records: Vec<Vec<(String, Value)>> = Vec::new();
    for (i, node) in root.children_named(&row_tag).enumerate() {
        let mut record = vec![("_id".to_string(), Value::Int(i as i64))];
        for (k, v) in &node.attributes {
            record.push((k.clone(), parse_scalar(v)));
        }
        for child in &node.children {
            if child.children.is_empty() {
                record.push((child.tag.clone(), parse_scalar(&child.text)));
            }
        }
        if !node.text.is_empty() {
            record.push(("_text".to_string(), Value::Str(node.text.clone())));
        }
        inference.observe(&record);
        records.push(record);
    }
    let schema = inference.schema();
    let mut table = Table::new(&row_tag, schema.clone());
    for record in &records {
        let row: Vec<Value> = schema
            .columns()
            .iter()
            .map(|c| {
                record
                    .iter()
                    .find(|(p, _)| p.to_lowercase() == c.name)
                    .map(|(_, v)| coerce(v, c.dtype))
                    .unwrap_or(Value::Null)
            })
            .collect();
        table.push_row(row).map_err(|e| e.to_string())?;
    }
    Ok(table)
}

/// Best-effort scalar typing of a text value.
pub fn parse_scalar(s: &str) -> Value {
    let t = s.trim();
    if t.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = t.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        return Value::Float(f);
    }
    match t {
        "true" | "TRUE" => Value::Bool(true),
        "false" | "FALSE" => Value::Bool(false),
        _ => Value::Str(t.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_array_of_objects_to_table() {
        let doc = JsonValue::parse(
            r#"[{"name": "Alice", "age": 34, "city": "Beijing"},
                {"name": "Bob", "age": 40},
                {"name": "Chen", "age": 28, "city": "Singapore"}]"#,
        )
        .unwrap();
        let tables = json_to_tables("people", &doc).unwrap();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 3);
        let city_idx = t.schema.index_of("city").unwrap();
        assert!(t.rows[1][city_idx].is_null(), "missing field becomes NULL");
        let age_idx = t.schema.index_of("age").unwrap();
        assert_eq!(t.rows[0][age_idx], Value::Int(34));
    }

    #[test]
    fn nested_objects_flatten_with_dotted_paths() {
        let doc = JsonValue::parse(
            r#"[{"name": "A", "address": {"city": "Beijing", "zip": 100081}}]"#,
        )
        .unwrap();
        let tables = json_to_tables("t", &doc).unwrap();
        let t = &tables[0];
        assert!(t.schema.index_of("address.city").is_some());
        assert!(t.schema.index_of("address.zip").is_some());
    }

    #[test]
    fn object_arrays_become_child_tables() {
        let doc = JsonValue::parse(
            r#"[{"name": "A", "labs": [{"test": "hb", "value": 1.2}, {"test": "glu", "value": 3.4}]},
                {"name": "B", "labs": [{"test": "hb", "value": 0.9}]}]"#,
        )
        .unwrap();
        let tables = json_to_tables("patients", &doc).unwrap();
        assert_eq!(tables.len(), 2);
        let child = &tables[1];
        assert_eq!(child.name, "patients_labs");
        assert_eq!(child.rows.len(), 3);
        let pid = child.schema.index_of("_parent_id").unwrap();
        assert_eq!(child.rows[2][pid], Value::Int(1));
    }

    #[test]
    fn mixed_number_types_widen() {
        let doc = JsonValue::parse(r#"[{"x": 1}, {"x": 2.5}]"#).unwrap();
        let tables = json_to_tables("t", &doc).unwrap();
        let t = &tables[0];
        let x = t.schema.index_of("x").unwrap();
        assert_eq!(t.schema.columns()[x].dtype, DataType::Float);
        assert_eq!(t.rows[0][x], Value::Float(1.0));
    }

    #[test]
    fn wrapped_object_with_array_found() {
        let doc =
            JsonValue::parse(r#"{"meta": 1, "rows": [{"a": 1}, {"a": 2}]}"#).unwrap();
        let tables = json_to_tables("t", &doc).unwrap();
        assert_eq!(tables[0].rows.len(), 2);
    }

    #[test]
    fn scalar_arrays_join_as_text() {
        let doc = JsonValue::parse(r#"[{"tags": ["a", "b", "c"]}]"#).unwrap();
        let tables = json_to_tables("t", &doc).unwrap();
        let t = &tables[0];
        let idx = t.schema.index_of("tags").unwrap();
        assert_eq!(t.rows[0][idx], Value::Str("a,b,c".into()));
    }

    #[test]
    fn resulting_tables_are_queryable() {
        let doc = JsonValue::parse(
            r#"[{"name": "Alice", "age": 34}, {"name": "Bob", "age": 40}]"#,
        )
        .unwrap();
        let tables = json_to_tables("people", &doc).unwrap();
        let mut db = llmdm_sqlengine::Database::new();
        for t in tables {
            db.create_table(t).unwrap();
        }
        let rs = db.query("SELECT name FROM people WHERE age > 35").unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Str("Bob".into()));
    }

    #[test]
    fn xml_rows_from_repeated_children() {
        let root = XmlNode::parse(
            r#"<patients>
                 <patient id="1"><name>Alice</name><age>34</age></patient>
                 <patient id="2"><name>Bob</name><age>40</age></patient>
               </patients>"#,
        )
        .unwrap();
        let t = xml_to_table(&root).unwrap();
        assert_eq!(t.name, "patient");
        assert_eq!(t.rows.len(), 2);
        let age = t.schema.index_of("age").unwrap();
        assert_eq!(t.rows[1][age], Value::Int(40));
        let id = t.schema.index_of("id").unwrap();
        assert_eq!(t.rows[0][id], Value::Int(1));
    }

    #[test]
    fn non_record_json_rejected() {
        assert!(json_to_tables("t", &JsonValue::parse("42").unwrap()).is_err());
        assert!(json_to_tables("t", &JsonValue::parse("[]").unwrap()).is_err());
        assert!(json_to_tables("t", &JsonValue::parse("[1, 2]").unwrap()).is_err());
    }

    #[test]
    fn scalar_typing() {
        assert_eq!(parse_scalar("42"), Value::Int(42));
        assert_eq!(parse_scalar("4.5"), Value::Float(4.5));
        assert_eq!(parse_scalar("true"), Value::Bool(true));
        assert_eq!(parse_scalar("hello"), Value::Str("hello".into()));
        assert_eq!(parse_scalar("  "), Value::Null);
    }
}
