//! # llmdm-transform — LLM for data transformation (§II-B, Fig. 4)
//!
//! Everything the paper's transformation section describes, built from
//! scratch:
//!
//! * [`json`] / [`xml`] — hand-written parsers for the semi-structured
//!   inputs of Fig. 4 (parsing semi-structured data *is* the application
//!   here, so these are first-class implementations, not dependencies);
//! * [`relational`] — schema inference and flattening: JSON/XML documents
//!   → relational [`Table`](llmdm_sqlengine::Table)s ("guide LLMs to
//!   extract schema information and the corresponding values … and then
//!   generate relational tables");
//! * [`ops`] + [`synthesize`] — the *code synthesis* path: spreadsheet
//!   grids reshaped by operator programs (transpose, pivot, unpivot/
//!   explode, fill, drops — the operators of Auto-Tables cited by the
//!   paper), discovered by beam search over a **relationality score**, so
//!   one synthesized program transforms all further files of the same
//!   shape ("we only need to call LLMs once or a few times, which
//!   consumes less cost");
//! * [`pattern`] — **column pattern mining** (§II-B3): token patterns like
//!   `<letter>{3} <digit>{2} <digit>{4}`, minimal-scope generalization,
//!   and pattern-based data-drift validation;
//! * [`colmap`] — column-to-column transformation program synthesis: the
//!   paper's "Aug 14 2023" ↔ "8/14/2023" joinability example, learned
//!   from value pairs and applied to unseen values;
//! * [`nl2txn`] — **NL2Transaction**: natural-language multi-step payment
//!   scenarios (the paper's Alice/Bob laptop example) compiled to atomic
//!   `BEGIN … COMMIT` SQL scripts;
//! * [`pipeline`] — data-preparation pipeline recommendation: candidate
//!   operator sequences (impute, normalize, one-hot, drop-constant…)
//!   scored on a downstream-quality proxy, searched greedily.

#![warn(missing_docs)]

pub mod colmap;
pub mod json;
pub mod nl2txn;
pub mod ops;
pub mod pattern;
pub mod pipeline;
pub mod relational;
pub mod synthesize;
pub mod xml;

pub use colmap::{synthesize_mapping, MapProgram};
pub use json::JsonValue;
pub use nl2txn::{compile_transaction, TransferScript};
pub use ops::{Grid, Op};
pub use pattern::{mine_pattern, Pattern, PatternToken};
pub use pipeline::{recommend_pipeline, PipelineOp, PipelineReport};
pub use relational::{json_to_tables, xml_to_table, SchemaInference};
pub use synthesize::{discover_program, relationality};
pub use xml::XmlNode;
