//! NL2Transaction (§II-B1): compile a natural-language multi-step payment
//! scenario into an atomic SQL transaction.
//!
//! The paper's example: "Alice wants to buy a laptop from Bob, they agree
//! on a price of $1,000, and Bob needs to pay $5 to the express company as
//! the freight. This trading process requires multiple SQL queries to
//! complete, which is known as a transaction."

use llmdm_sqlengine::{Database, SqlError, Value};

/// One money transfer extracted from the text.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// Paying party.
    pub from: String,
    /// Receiving party.
    pub to: String,
    /// Amount in dollars.
    pub amount: i64,
}

/// A compiled transaction script.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferScript {
    /// The extracted transfers, in order.
    pub transfers: Vec<Transfer>,
    /// The full SQL script (`BEGIN; … COMMIT;`).
    pub sql: String,
}

/// Compile a scenario description into a transaction script.
///
/// Recognized clause forms (case-insensitive):
/// * `X pays Y $N`
/// * `X pays $N to Y`
/// * `X needs to pay $N to Y`
/// * `transfer $N from X to Y`
pub fn compile_transaction(text: &str) -> Result<TransferScript, String> {
    let mut transfers = Vec::new();
    for clause in split_clauses(text) {
        if let Some(t) = parse_clause(&clause) {
            transfers.push(t);
        }
    }
    if transfers.is_empty() {
        return Err(format!("no payment clauses recognized in {text:?}"));
    }
    let mut sql = String::from("BEGIN;\n");
    for t in &transfers {
        sql.push_str(&format!(
            "UPDATE accounts SET balance = balance - {} WHERE owner = '{}';\n",
            t.amount, t.from
        ));
        sql.push_str(&format!(
            "UPDATE accounts SET balance = balance + {} WHERE owner = '{}';\n",
            t.amount, t.to
        ));
    }
    sql.push_str("COMMIT;");
    Ok(TransferScript { transfers, sql })
}

fn split_clauses(text: &str) -> Vec<String> {
    text.split(['.', ';'])
        .flat_map(|s| s.split(" and "))
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn parse_clause(clause: &str) -> Option<Transfer> {
    let lower = clause.to_lowercase();
    let words: Vec<&str> = lower.split_whitespace().collect();
    let amount_pos = words.iter().position(|w| w.starts_with('$'))?;
    let amount: i64 = words[amount_pos]
        .trim_start_matches('$')
        .replace(',', "")
        .trim_end_matches(|c: char| !c.is_ascii_digit())
        .parse()
        .ok()?;

    // Form: "transfer $N from X to Y"
    if words.first() == Some(&"transfer") {
        let from_pos = words.iter().position(|w| *w == "from")?;
        let to_pos = words.iter().position(|w| *w == "to")?;
        let from = clean_party(&words[from_pos + 1..to_pos]);
        let to = clean_party(&words[to_pos + 1..]);
        return Some(Transfer { from, to, amount });
    }

    // Forms containing "pay"/"pays".
    let verb_pos = words.iter().position(|w| *w == "pays" || *w == "pay")?;
    let from = clean_party(&words[..verb_pos]);
    if amount_pos == verb_pos + 1 || words.get(verb_pos + 1) == Some(&"$") {
        // "X pays $N to Y"
        let to_pos = words.iter().skip(amount_pos).position(|w| *w == "to")? + amount_pos;
        let to = clean_party(&words[to_pos + 1..]);
        Some(Transfer { from, to, amount })
    } else {
        // "X pays Y $N"
        let to = clean_party(&words[verb_pos + 1..amount_pos]);
        Some(Transfer { from, to, amount })
    }
}

/// Normalize a party phrase: stop at purpose markers ("as freight",
/// "for the laptop"), drop articles/auxiliaries, join remaining words.
fn clean_party(words: &[&str]) -> String {
    let end = words
        .iter()
        .position(|w| matches!(*w, "as" | "for" | "because"))
        .unwrap_or(words.len());
    words[..end]
        .iter()
        .filter(|w| !matches!(**w, "the" | "a" | "an" | "needs" | "to" | "wants" | "must"))
        .cloned()
        .collect::<Vec<_>>()
        .join(" ")
}

/// Execute a compiled script atomically: run the transfers inside a
/// transaction and roll back if any account would go negative. Returns
/// whether the transaction committed.
pub fn execute_transfers(db: &mut Database, script: &TransferScript) -> Result<bool, SqlError> {
    db.execute("BEGIN")?;
    for t in &script.transfers {
        db.execute(&format!(
            "UPDATE accounts SET balance = balance - {} WHERE owner = '{}'",
            t.amount, t.from
        ))?;
        db.execute(&format!(
            "UPDATE accounts SET balance = balance + {} WHERE owner = '{}'",
            t.amount, t.to
        ))?;
    }
    let min = db.query("SELECT MIN(balance) FROM accounts")?;
    let overdrawn = matches!(min.scalar(), Some(v) if v.sql_cmp(&Value::Int(0)) == Some(std::cmp::Ordering::Less));
    if overdrawn {
        db.execute("ROLLBACK")?;
        Ok(false)
    } else {
        db.execute("COMMIT")?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE accounts (owner TEXT, balance INT)").unwrap();
        db.execute(
            "INSERT INTO accounts VALUES ('alice', 1500), ('bob', 100), ('express company', 0)",
        )
        .unwrap();
        db
    }

    fn balance(db: &mut Database, who: &str) -> i64 {
        let rs = db
            .query(&format!("SELECT balance FROM accounts WHERE owner = '{who}'"))
            .unwrap();
        match rs.rows[0][0] {
            Value::Int(i) => i,
            _ => panic!(),
        }
    }

    #[test]
    fn compiles_the_paper_scenario() {
        let script = compile_transaction(
            "Alice pays Bob $1,000 for the laptop. Bob needs to pay $5 to the express company as freight.",
        )
        .unwrap();
        assert_eq!(script.transfers.len(), 2);
        assert_eq!(
            script.transfers[0],
            Transfer { from: "alice".into(), to: "bob".into(), amount: 1000 }
        );
        assert_eq!(script.transfers[1].to, "express company");
        assert_eq!(script.transfers[1].amount, 5);
        assert!(script.sql.starts_with("BEGIN;"));
        assert!(script.sql.ends_with("COMMIT;"));
    }

    #[test]
    fn executes_atomically() {
        let mut db = bank();
        let script = compile_transaction(
            "Alice pays Bob $1,000. Bob pays $5 to the express company.",
        )
        .unwrap();
        assert!(execute_transfers(&mut db, &script).unwrap());
        assert_eq!(balance(&mut db, "alice"), 500);
        assert_eq!(balance(&mut db, "bob"), 1095);
        assert_eq!(balance(&mut db, "express company"), 5);
    }

    #[test]
    fn insufficient_funds_roll_back_everything() {
        let mut db = bank();
        // Bob has only $100; the second transfer overdraws him, so the
        // whole transaction (including Alice's successful payment) must
        // roll back.
        let script = compile_transaction(
            "Alice pays Bob $50. Bob pays $500 to the express company.",
        )
        .unwrap();
        assert!(!execute_transfers(&mut db, &script).unwrap());
        assert_eq!(balance(&mut db, "alice"), 1500, "rolled back");
        assert_eq!(balance(&mut db, "bob"), 100, "rolled back");
    }

    #[test]
    fn transfer_form() {
        let script = compile_transaction("Transfer $250 from alice to bob").unwrap();
        assert_eq!(
            script.transfers[0],
            Transfer { from: "alice".into(), to: "bob".into(), amount: 250 }
        );
    }

    #[test]
    fn sql_script_parses_in_engine() {
        let script =
            compile_transaction("Alice pays Bob $10 and Bob pays Alice $5").unwrap();
        assert_eq!(script.transfers.len(), 2);
        let mut db = bank();
        db.execute_script(&script.sql).unwrap();
        assert_eq!(balance(&mut db, "alice"), 1495);
    }

    #[test]
    fn unrecognized_text_errors() {
        assert!(compile_transaction("the weather is nice today").is_err());
        assert!(compile_transaction("").is_err());
    }

    #[test]
    fn amount_with_punctuation() {
        let script = compile_transaction("Alice pays Bob $1,000.").unwrap();
        assert_eq!(script.transfers[0].amount, 1000);
    }
}
