//! Column-to-column transformation program synthesis (§II-B3's joinable
//! columns): learn from value pairs how one column's format maps onto
//! another's — the paper's "Aug 14 2023" ↔ "8/14/2023" example — and apply
//! the learned program to unseen values so the columns become joinable.

use std::fmt;


const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// One output piece of a mapping program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapPiece {
    /// Emit a literal.
    Lit(String),
    /// Emit source token `i` verbatim.
    Token(usize),
    /// Emit source token `i` (a month name) as its 1-based number.
    MonthNum(usize),
    /// Emit source token `i` (a month number) as its 3-letter name.
    MonthName(usize),
    /// Emit source token `i` with leading zeros stripped.
    StripZeros(usize),
    /// Emit source token `i` left-padded with zeros to `width`.
    PadZeros(usize, usize),
}

/// A synthesized column-mapping program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapProgram {
    /// The output pieces, in order.
    pub pieces: Vec<MapPiece>,
}

impl fmt::Display for MapProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .pieces
            .iter()
            .map(|p| match p {
                MapPiece::Lit(s) => format!("lit({s:?})"),
                MapPiece::Token(i) => format!("tok({i})"),
                MapPiece::MonthNum(i) => format!("month_num({i})"),
                MapPiece::MonthName(i) => format!("month_name({i})"),
                MapPiece::StripZeros(i) => format!("strip0({i})"),
                MapPiece::PadZeros(i, w) => format!("pad0({i},{w})"),
            })
            .collect();
        write!(f, "{}", parts.join(" + "))
    }
}

/// Split into alternating word tokens (alnum runs) and separators;
/// returns (tokens, the full piece sequence for reconstruction).
fn word_tokens(s: &str) -> Vec<String> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() {
            cur.push(c);
        } else if !cur.is_empty() {
            toks.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        toks.push(cur);
    }
    toks
}

/// Split a destination string into word/separator pieces (separators are
/// emitted as literals).
fn dst_pieces(s: &str) -> Vec<(bool, String)> {
    // (is_word, text)
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut word = false;
    for c in s.chars() {
        let is_word = c.is_alphanumeric();
        if !cur.is_empty() && is_word != word {
            out.push((word, std::mem::take(&mut cur)));
        }
        word = is_word;
        cur.push(c);
    }
    if !cur.is_empty() {
        out.push((word, cur));
    }
    out
}

fn month_num(name: &str) -> Option<usize> {
    MONTHS.iter().position(|m| m.eq_ignore_ascii_case(name)).map(|i| i + 1)
}

fn strip_zeros(s: &str) -> String {
    let t = s.trim_start_matches('0');
    if t.is_empty() {
        "0".to_string()
    } else {
        t.to_string()
    }
}

/// Candidate rules producing `target` from source tokens.
fn rules_for(target: &str, src: &[String]) -> Vec<MapPiece> {
    let mut rules = Vec::new();
    for (i, tok) in src.iter().enumerate() {
        if tok == target {
            rules.push(MapPiece::Token(i));
        }
        if let Some(n) = month_num(tok) {
            if n.to_string() == target {
                rules.push(MapPiece::MonthNum(i));
            }
        }
        if let Ok(n) = tok.parse::<usize>() {
            if (1..=12).contains(&n) && MONTHS[n - 1].eq_ignore_ascii_case(target) {
                rules.push(MapPiece::MonthName(i));
            }
        }
        if strip_zeros(tok) == target && tok != target {
            rules.push(MapPiece::StripZeros(i));
        }
        if target.len() > tok.len()
            && target.trim_start_matches('0') == strip_zeros(tok)
            && target.chars().all(|c| c.is_ascii_digit())
        {
            rules.push(MapPiece::PadZeros(i, target.len()));
        }
    }
    // Literal is always a fallback candidate (checked for consistency
    // across examples by the synthesizer).
    rules.push(MapPiece::Lit(target.to_string()));
    rules
}

fn apply_piece(piece: &MapPiece, src: &[String]) -> Option<String> {
    match piece {
        MapPiece::Lit(s) => Some(s.clone()),
        MapPiece::Token(i) => src.get(*i).cloned(),
        MapPiece::MonthNum(i) => month_num(src.get(*i)?).map(|n| n.to_string()),
        MapPiece::MonthName(i) => {
            let n: usize = src.get(*i)?.parse().ok()?;
            MONTHS.get(n.checked_sub(1)?).map(|m| m.to_string())
        }
        MapPiece::StripZeros(i) => src.get(*i).map(|t| strip_zeros(t)),
        MapPiece::PadZeros(i, w) => {
            let t = src.get(*i)?;
            Some(format!("{:0>width$}", t, width = w))
        }
    }
}

impl MapProgram {
    /// Apply the program to a source value.
    pub fn apply(&self, source: &str) -> Option<String> {
        let toks = word_tokens(source);
        let mut out = String::new();
        for p in &self.pieces {
            out.push_str(&apply_piece(p, &toks)?);
        }
        Some(out)
    }
}

/// Synthesize a mapping program from `(source, destination)` example
/// pairs. Returns `None` when no consistent program exists.
pub fn synthesize_mapping(examples: &[(&str, &str)]) -> Option<MapProgram> {
    let first = examples.first()?;
    let shape = dst_pieces(first.1);
    // All destinations must share the piece structure (word/sep sequence,
    // with identical separators).
    for (_, dst) in examples {
        let p = dst_pieces(dst);
        if p.len() != shape.len() {
            return None;
        }
        for ((w1, t1), (w2, t2)) in p.iter().zip(&shape) {
            if w1 != w2 || (!*w1 && t1 != t2) {
                return None;
            }
        }
    }

    let mut pieces = Vec::with_capacity(shape.len());
    for (idx, (is_word, text)) in shape.iter().enumerate() {
        if !is_word {
            pieces.push(MapPiece::Lit(text.clone()));
            continue;
        }
        // Candidates from the first example, validated against the rest.
        let src0 = word_tokens(first.0);
        let candidates = rules_for(text, &src0);
        let chosen = candidates.into_iter().find(|rule| {
            examples.iter().all(|(src, dst)| {
                let toks = word_tokens(src);
                let target = &dst_pieces(dst)[idx].1;
                apply_piece(rule, &toks).as_deref() == Some(target.as_str())
            })
        })?;
        pieces.push(chosen);
    }
    Some(MapProgram { pieces })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_forward() {
        // "Aug 14 2023" → "8/14/2023"
        let prog = synthesize_mapping(&[
            ("Aug 14 2023", "8/14/2023"),
            ("Jan 02 2022", "1/02/2022"),
        ])
        .unwrap();
        assert_eq!(prog.apply("Dec 25 2021").unwrap(), "12/25/2021");
        assert_eq!(prog.apply("Sep 09 2023").unwrap(), "9/09/2023");
    }

    #[test]
    fn paper_example_reverse() {
        // "8/14/2023" → "Aug 14 2023"
        let prog = synthesize_mapping(&[
            ("8/14/2023", "Aug 14 2023"),
            ("1/02/2022", "Jan 02 2022"),
        ])
        .unwrap();
        assert_eq!(prog.apply("12/25/2021").unwrap(), "Dec 25 2021");
    }

    #[test]
    fn makes_columns_joinable() {
        let col_a = ["Aug 14 2023", "Jan 02 2022", "Dec 25 2021"];
        let col_b = ["8/14/2023", "1/02/2022", "12/25/2021"];
        let prog =
            synthesize_mapping(&[(col_a[0], col_b[0]), (col_a[1], col_b[1])]).unwrap();
        for (a, b) in col_a.iter().zip(&col_b) {
            assert_eq!(prog.apply(a).as_deref(), Some(*b));
        }
    }

    #[test]
    fn zero_stripping_and_padding() {
        let strip = synthesize_mapping(&[("0042", "42"), ("0007", "7")]).unwrap();
        assert_eq!(strip.apply("0100").unwrap(), "100");
        let pad = synthesize_mapping(&[("42", "0042"), ("7", "0007")]).unwrap();
        assert_eq!(pad.apply("9").unwrap(), "0009");
    }

    #[test]
    fn reordering_with_literals() {
        // "lastname, firstname" → "firstname lastname"
        let prog = synthesize_mapping(&[
            ("smith, alice", "alice smith"),
            ("costa, bruno", "bruno costa"),
        ])
        .unwrap();
        assert_eq!(prog.apply("wei, chen").unwrap(), "chen wei");
    }

    #[test]
    fn constant_suffix_kept_literal() {
        let prog = synthesize_mapping(&[
            ("42", "id-42-v1"),
            ("99", "id-99-v1"),
        ])
        .unwrap();
        assert_eq!(prog.apply("7").unwrap(), "id-7-v1");
    }

    #[test]
    fn inconsistent_examples_fail() {
        assert!(synthesize_mapping(&[("a 1", "1-a"), ("b 2", "2+b")]).is_none());
        assert!(synthesize_mapping(&[("Aug 14", "8/14"), ("nonsense", "whatever here")]).is_none());
    }

    #[test]
    fn empty_examples_fail() {
        assert!(synthesize_mapping(&[]).is_none());
    }

    #[test]
    fn apply_out_of_range_token_is_none() {
        let prog = MapProgram { pieces: vec![MapPiece::Token(5)] };
        assert!(prog.apply("only two").is_none());
    }

    #[test]
    fn display_is_readable() {
        let prog = synthesize_mapping(&[
            ("Aug 14 2023", "8/14/2023"),
            ("Jan 02 2022", "1/02/2022"),
        ])
        .unwrap();
        let s = prog.to_string();
        assert!(s.contains("month_num(0)"), "{s}");
    }
}
