//! Operator-program discovery: beam search over [`Op`] sequences guided by
//! a **relationality score** — the "LLM synthesizes the operator sequence
//! once, then it is reused on all similar files" path of §II-B2.

use crate::ops::{Grid, Op};

/// How table-like a grid is, in `[0, 1]`.
///
/// Components:
/// * **arity consistency** — fraction of rows matching the header width;
/// * **column type purity** — per column, the majority share of
///   {numeric, text, empty} among body cells;
/// * **header plausibility** — header cells non-empty, distinct, and
///   non-numeric;
/// * **fill rate** — fraction of non-empty body cells;
/// * **orientation** — relational tables are taller than wide; a grid
///   with fewer body rows than columns is likely sideways.
pub fn relationality(grid: &Grid) -> f64 {
    if grid.len() < 2 {
        return 0.0;
    }
    let header = &grid[0];
    let width = header.len();
    if width == 0 {
        return 0.0;
    }
    let body = &grid[1..];

    let arity = body.iter().filter(|r| r.len() == width).count() as f64 / body.len() as f64;

    let mut purity_sum = 0.0;
    for c in 0..width {
        let mut numeric = 0usize;
        let mut text = 0usize;
        let mut empty = 0usize;
        for r in body {
            match r.get(c).map(|s| s.trim()) {
                None | Some("") => empty += 1,
                Some(v) if v.parse::<f64>().is_ok() => numeric += 1,
                Some(_) => text += 1,
            }
        }
        let total = (numeric + text + empty).max(1);
        purity_sum += numeric.max(text) as f64 / total as f64;
    }
    let purity = purity_sum / width as f64;

    let header_ok = {
        let non_empty = header.iter().filter(|h| !h.trim().is_empty()).count();
        let mut distinct: Vec<&str> = header.iter().map(|s| s.trim()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let non_numeric = header.iter().filter(|h| h.trim().parse::<f64>().is_err()).count();
        (non_empty + distinct.len() + non_numeric) as f64 / (3 * width) as f64
    };

    let cells: usize = body.iter().map(|r| r.len()).sum();
    let filled: usize =
        body.iter().flat_map(|r| r.iter()).filter(|c| !c.trim().is_empty()).count();
    let fill = if cells == 0 { 0.0 } else { filled as f64 / cells as f64 };

    // Saturate early: only clearly-wider-than-tall grids are penalized,
    // so legitimate small tables aren't pushed into long format.
    let orientation = if body.len() + 1 >= width {
        1.0
    } else {
        body.len() as f64 / width as f64
    };

    0.30 * arity + 0.27 * purity + 0.18 * header_ok + 0.13 * fill + 0.12 * orientation
}

/// Discover an operator program improving the grid's relationality.
///
/// Beam search of width `beam` up to `max_len` operators; returns the best
/// program and its final score. The empty program is always a candidate,
/// so the score never decreases.
pub fn discover_program(grid: &Grid, max_len: usize, beam: usize) -> (Vec<Op>, f64) {
    let base = relationality(grid);
    let mut best: (Vec<Op>, f64) = (Vec::new(), base);
    // Beam entries: (program, resulting grid, score).
    let mut frontier: Vec<(Vec<Op>, Grid, f64)> = vec![(Vec::new(), grid.clone(), base)];
    for _ in 0..max_len {
        let mut next: Vec<(Vec<Op>, Grid, f64)> = Vec::new();
        for (prog, g, _) in &frontier {
            for op in Op::candidates(g) {
                let out = op.apply(g);
                if out.is_empty() || out == *g {
                    continue;
                }
                let score = relationality(&out);
                let mut p = prog.clone();
                p.push(op);
                if score > best.1 + 1e-9 {
                    best = (p.clone(), score);
                }
                next.push((p, out, score));
            }
        }
        next.sort_by(|a, b| b.2.total_cmp(&a.2));
        next.truncate(beam);
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    best
}

/// Apply a program to a grid.
pub fn apply_program(grid: &Grid, program: &[Op]) -> Grid {
    let mut g = grid.clone();
    for op in program {
        g = op.apply(&g);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(rows: &[&[&str]]) -> Grid {
        rows.iter().map(|r| r.iter().map(|c| c.to_string()).collect()).collect()
    }

    /// A clean relational grid scores high; a messy report scores low.
    #[test]
    fn score_orders_clean_above_messy() {
        let clean = g(&[
            &["name", "year", "sales"],
            &["A", "2014", "10"],
            &["B", "2015", "20"],
            &["C", "2014", "15"],
        ]);
        let messy = g(&[
            &["Quarterly Report", "", ""],
            &["", "", ""],
            &["name", "year", "sales"],
            &["A", "2014", "10"],
        ]);
        assert!(relationality(&clean) > relationality(&messy) + 0.1);
    }

    #[test]
    fn discovers_delete_top_rows_for_report_headers() {
        let messy = g(&[
            &["Quarterly Report 2014", "", ""],
            &["", "", ""],
            &["name", "year", "sales"],
            &["A", "2014", "10"],
            &["B", "2015", "20"],
            &["C", "2014", "15"],
        ]);
        let (program, score) = discover_program(&messy, 3, 8);
        assert!(score > relationality(&messy));
        let out = apply_program(&messy, &program);
        assert_eq!(out[0], vec!["name", "year", "sales"], "program: {program:?}");
    }

    #[test]
    fn discovers_transpose_for_sideways_tables() {
        // Attributes down the side, records across — needs a transpose.
        let sideways = g(&[
            &["name", "A", "B", "C", "D"],
            &["year", "2014", "2015", "2014", "2016"],
            &["sales", "10", "20", "15", "30"],
        ]);
        let (program, _) = discover_program(&sideways, 2, 8);
        assert!(
            program.contains(&Op::Transpose),
            "expected transpose in {program:?}"
        );
        let out = apply_program(&sideways, &program);
        assert_eq!(out[0][0], "name");
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn program_reuse_on_same_shaped_file() {
        // Synthesize once, apply to a second file of the same shape —
        // the paper's cost argument for the code-synthesis path.
        let file1 = g(&[
            &["Report", "", ""],
            &["name", "year", "sales"],
            &["A", "2014", "10"],
            &["B", "2015", "20"],
        ]);
        let file2 = g(&[
            &["Another Report", "", ""],
            &["name", "year", "sales"],
            &["X", "2016", "99"],
            &["Y", "2013", "42"],
        ]);
        let (program, _) = discover_program(&file1, 3, 8);
        let out2 = apply_program(&file2, &program);
        assert_eq!(out2[0], vec!["name", "year", "sales"]);
        assert!(out2.iter().any(|r| r[0] == "X"));
    }

    #[test]
    fn already_clean_grid_keeps_empty_program() {
        let clean = g(&[
            &["name", "year"],
            &["A", "2014"],
            &["B", "2015"],
        ]);
        let (program, score) = discover_program(&clean, 3, 8);
        assert!(score >= relationality(&clean));
        // Program may be empty or a no-op improvement, but must not hurt.
        let out = apply_program(&clean, &program);
        assert!(relationality(&out) >= relationality(&clean) - 1e-9);
    }

    #[test]
    fn empty_grid_scores_zero() {
        assert_eq!(relationality(&Vec::new()), 0.0);
        assert_eq!(relationality(&g(&[&["only header"]])), 0.0);
    }

    #[test]
    fn merged_cells_fixed_by_fill_down() {
        let merged = g(&[
            &["region", "city", "sales"],
            &["east", "rivertown", "10"],
            &["", "lakewood", "12"],
            &["west", "oakdale", "20"],
            &["", "pinehurst", "22"],
        ]);
        let (program, _) = discover_program(&merged, 2, 8);
        let out = apply_program(&merged, &program);
        // All region cells filled after the program.
        assert!(out.iter().skip(1).all(|r| !r[0].trim().is_empty()), "program {program:?}: {out:?}");
    }
}
