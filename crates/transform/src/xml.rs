//! A minimal XML parser (elements, attributes, text; no DTDs/namespaces).
//! Enough for the paper's Fig. 4 "transform XML documents into relational
//! tables" scenario.

/// An XML element.
#[derive(Debug, Clone, PartialEq)]
pub struct XmlNode {
    /// Tag name.
    pub tag: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements.
    pub children: Vec<XmlNode>,
    /// Concatenated direct text content, trimmed.
    pub text: String,
}

impl XmlNode {
    /// Parse a document; returns the root element.
    pub fn parse(input: &str) -> Result<XmlNode, String> {
        let mut p = XmlParser { input, pos: 0 };
        p.skip_ws_and_prolog();
        let node = p.element()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(node)
    }

    /// First child with the tag.
    pub fn child(&self, tag: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.tag == tag)
    }

    /// All children with the tag.
    pub fn children_named<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a XmlNode> + 'a {
        self.children.iter().filter(move |c| c.tag == tag)
    }

    /// Attribute lookup.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

struct XmlParser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_whitespace()) {
            self.pos += self.rest().chars().next().map(|c| c.len_utf8()).unwrap_or(1);
        }
    }

    fn skip_ws_and_prolog(&mut self) {
        loop {
            self.skip_ws();
            if self.rest().starts_with("<?") {
                match self.rest().find("?>") {
                    Some(end) => self.pos += end + 2,
                    None => return,
                }
            } else if self.rest().starts_with("<!--") {
                match self.rest().find("-->") {
                    Some(end) => self.pos += end + 3,
                    None => return,
                }
            } else {
                return;
            }
        }
    }

    fn element(&mut self) -> Result<XmlNode, String> {
        if !self.rest().starts_with('<') {
            return Err(format!("expected < at byte {}", self.pos));
        }
        self.pos += 1;
        let tag = self.name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            if self.rest().starts_with("/>") {
                self.pos += 2;
                return Ok(XmlNode { tag, attributes, children: Vec::new(), text: String::new() });
            }
            if self.rest().starts_with('>') {
                self.pos += 1;
                break;
            }
            let key = self.name()?;
            self.skip_ws();
            if !self.rest().starts_with('=') {
                return Err(format!("expected = after attribute at byte {}", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            let quote = self
                .rest()
                .chars()
                .next()
                .filter(|c| *c == '"' || *c == '\'')
                .ok_or_else(|| format!("expected quoted attribute value at byte {}", self.pos))?;
            self.pos += 1;
            let end = self
                .rest()
                .find(quote)
                .ok_or_else(|| format!("unterminated attribute at byte {}", self.pos))?;
            let value = unescape(&self.rest()[..end]);
            self.pos += end + 1;
            attributes.push((key, value));
        }
        // Content: text and child elements until </tag>.
        let mut children = Vec::new();
        let mut text = String::new();
        loop {
            if self.rest().starts_with("<!--") {
                match self.rest().find("-->") {
                    Some(end) => {
                        self.pos += end + 3;
                        continue;
                    }
                    None => return Err("unterminated comment".into()),
                }
            }
            if self.rest().starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != tag {
                    return Err(format!("mismatched </{close}> for <{tag}>"));
                }
                self.skip_ws();
                if !self.rest().starts_with('>') {
                    return Err(format!("expected > at byte {}", self.pos));
                }
                self.pos += 1;
                return Ok(XmlNode { tag, attributes, children, text: text.trim().to_string() });
            }
            if self.rest().starts_with('<') {
                children.push(self.element()?);
                continue;
            }
            match self.rest().find('<') {
                Some(next) => {
                    text.push_str(&unescape(&self.rest()[..next]));
                    self.pos += next;
                }
                None => return Err(format!("unterminated element <{tag}>")),
            }
        }
    }

    fn name(&mut self) -> Result<String, String> {
        let start = self.pos;
        for c in self.rest().chars() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == ':' || c == '.' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            Err(format!("expected name at byte {start}"))
        } else {
            Ok(self.input[start..self.pos].to_string())
        }
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = r#"<?xml version="1.0"?>
            <patients hospital="BIT">
              <patient id="1"><name>Alice</name><age>34</age></patient>
              <patient id="2"><name>Bob</name><age>40</age></patient>
            </patients>"#;
        let root = XmlNode::parse(doc).unwrap();
        assert_eq!(root.tag, "patients");
        assert_eq!(root.attr("hospital"), Some("BIT"));
        let patients: Vec<&XmlNode> = root.children_named("patient").collect();
        assert_eq!(patients.len(), 2);
        assert_eq!(patients[0].child("name").unwrap().text, "Alice");
        assert_eq!(patients[1].attr("id"), Some("2"));
    }

    #[test]
    fn self_closing_and_empty() {
        let root = XmlNode::parse("<r><a x='1'/><b></b></r>").unwrap();
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].attr("x"), Some("1"));
        assert!(root.children[1].text.is_empty());
    }

    #[test]
    fn entities_unescaped() {
        let root = XmlNode::parse("<r>a &lt; b &amp; c</r>").unwrap();
        assert_eq!(root.text, "a < b & c");
    }

    #[test]
    fn comments_skipped() {
        let root = XmlNode::parse("<r><!-- note --><a>1</a></r>").unwrap();
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(XmlNode::parse("<a><b></a></b>").is_err());
        assert!(XmlNode::parse("<a>").is_err());
        assert!(XmlNode::parse("no xml").is_err());
    }

    #[test]
    fn unicode_text() {
        let root = XmlNode::parse("<名前>北京</名前>").unwrap();
        assert_eq!(root.text, "北京");
    }
}
