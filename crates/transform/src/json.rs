//! A hand-written JSON parser and serializer.
//!
//! Object key order is preserved (important for stable schema inference).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with preserved key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a JSON document.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser { bytes: input.as_bytes(), input, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && (self.bytes[self.pos] as char).is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected , or }} at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected , or ] at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("dangling escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("short unicode escape".into());
                            }
                            let hex = &self.input[self.pos..self.pos + 4];
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad unicode escape".to_string())?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Copy the full UTF-8 character.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    s.push_str(&self.input[start..end]);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        self.input[start..self.pos]
            .parse()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => write!(f, "{n}"),
            JsonValue::String(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        '\r' => write!(f, "\\r")?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", JsonValue::String(k.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-3.5e2").unwrap(), JsonValue::Number(-350.0));
        assert_eq!(JsonValue::parse("\"hi\"").unwrap(), JsonValue::String("hi".into()));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"patients": [{"name": "Alice", "age": 34, "labs": [1.2, 3.4]},
                      {"name": "Bob", "age": 40, "labs": []}], "hospital": "BIT"}"#;
        let v = JsonValue::parse(doc).unwrap();
        let patients = v.get("patients").unwrap().as_array().unwrap();
        assert_eq!(patients.len(), 2);
        assert_eq!(patients[0].get("name").unwrap().as_str(), Some("Alice"));
        assert_eq!(patients[0].get("labs").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn key_order_preserved() {
        let v = JsonValue::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        match v {
            JsonValue::Object(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["z", "a", "m"]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = JsonValue::parse(r#""line\nbreak \"quoted\" A""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nbreak \"quoted\" A"));
        let rendered = v.to_string();
        assert_eq!(JsonValue::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn display_roundtrip() {
        let doc = r#"{"a":[1,2,{"b":null}],"c":true}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(JsonValue::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_content() {
        let v = JsonValue::parse("\"北京 café\"").unwrap();
        assert_eq!(v.as_str(), Some("北京 café"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(JsonValue::parse("{}").unwrap(), JsonValue::Object(vec![]));
    }
}
