//! Data-preparation pipeline recommendation (§II-B4).
//!
//! "LLMs can use the chain-of-thought ability and advanced reasoning
//! abilities to recommend candidate pipelines, significantly reducing the
//! search space."
//!
//! We model the pipeline space as sequences of standard preparation
//! operators over a table and search it two ways: a small set of
//! *recommended candidate templates* (standing in for the LLM's pruned
//! proposals) plus greedy extension, scored by a downstream-readiness
//! metric (completeness, scale normalization, encodability, no dead
//! columns).

use llmdm_sqlengine::{Column, DataType, Schema, Table, Value};

/// A preparation operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineOp {
    /// Replace NULLs in a numeric column with the column mean.
    ImputeMean(String),
    /// Replace NULLs in a text column with the modal value.
    ImputeMode(String),
    /// Min–max normalize a numeric column into `[0, 1]`.
    MinMax(String),
    /// One-hot encode a low-cardinality text column.
    OneHot(String),
    /// Drop columns with a single distinct value.
    DropConstant,
}

/// Result of a recommendation run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// The chosen operator sequence.
    pub pipeline: Vec<PipelineOp>,
    /// Readiness score before.
    pub before: f64,
    /// Readiness score after.
    pub after: f64,
}

/// Downstream-readiness score in `[0, 1]`.
///
/// * completeness — fraction of non-NULL cells;
/// * scale — numeric columns fully inside `[0, 1]`;
/// * encodedness — absence of raw text columns (models need numbers);
/// * liveness — absence of constant columns.
pub fn readiness(table: &Table) -> f64 {
    let cells = (table.rows.len() * table.schema.len()).max(1);
    let non_null = table.rows.iter().flatten().filter(|v| !v.is_null()).count();
    let completeness = non_null as f64 / cells as f64;

    let mut numeric = 0usize;
    let mut scaled = 0usize;
    let mut text_cols = 0usize;
    let mut constant = 0usize;
    for (i, c) in table.schema.columns().iter().enumerate() {
        let vals: Vec<&Value> = table.rows.iter().map(|r| &r[i]).collect();
        let distinct = {
            let mut d: Vec<&&Value> = vals.iter().filter(|v| !v.is_null()).collect();
            d.dedup_by(|a, b| a == b);
            let mut seen: Vec<&Value> = Vec::new();
            for v in vals.iter().filter(|v| !v.is_null()) {
                if !seen.iter().any(|s| s == v) {
                    seen.push(v);
                }
            }
            let _ = d;
            seen.len()
        };
        if distinct <= 1 && !table.rows.is_empty() {
            constant += 1;
        }
        match c.dtype {
            DataType::Int | DataType::Float => {
                numeric += 1;
                let in_unit = vals
                    .iter()
                    .filter_map(|v| v.as_f64())
                    .all(|x| (0.0..=1.0).contains(&x));
                if in_unit && vals.iter().any(|v| !v.is_null()) {
                    scaled += 1;
                }
            }
            DataType::Text => text_cols += 1,
            DataType::Bool => {}
        }
    }
    let ncols = table.schema.len().max(1);
    let scale = if numeric == 0 { 1.0 } else { scaled as f64 / numeric as f64 };
    let encoded = 1.0 - text_cols as f64 / ncols as f64;
    let live = 1.0 - constant as f64 / ncols as f64;
    0.4 * completeness + 0.25 * scale + 0.2 * encoded + 0.15 * live
}

/// Apply one operator.
pub fn apply_op(table: &Table, op: &PipelineOp) -> Table {
    match op {
        PipelineOp::ImputeMean(col) => {
            let mut out = table.clone();
            let Some(i) = out.schema.index_of(col) else { return out };
            let vals: Vec<f64> = out.rows.iter().filter_map(|r| r[i].as_f64()).collect();
            if vals.is_empty() {
                return out;
            }
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let is_int = out.schema.columns()[i].dtype == DataType::Int;
            for r in &mut out.rows {
                if r[i].is_null() {
                    r[i] = if is_int { Value::Int(mean.round() as i64) } else { Value::Float(mean) };
                }
            }
            out
        }
        PipelineOp::ImputeMode(col) => {
            let mut out = table.clone();
            let Some(i) = out.schema.index_of(col) else { return out };
            let mut counts: Vec<(Value, usize)> = Vec::new();
            for r in &out.rows {
                if r[i].is_null() {
                    continue;
                }
                match counts.iter_mut().find(|(v, _)| *v == r[i]) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((r[i].clone(), 1)),
                }
            }
            let Some((mode, _)) = counts.into_iter().max_by_key(|(_, c)| *c) else {
                return out;
            };
            for r in &mut out.rows {
                if r[i].is_null() {
                    r[i] = mode.clone();
                }
            }
            out
        }
        PipelineOp::MinMax(col) => {
            let mut out = table.clone();
            let Some(i) = out.schema.index_of(col) else { return out };
            let vals: Vec<f64> = out.rows.iter().filter_map(|r| r[i].as_f64()).collect();
            let (Some(min), Some(max)) = (
                vals.iter().copied().reduce(f64::min),
                vals.iter().copied().reduce(f64::max),
            ) else {
                return out;
            };
            let range = (max - min).max(f64::EPSILON);
            // Rebuild the schema with the column typed FLOAT.
            let cols: Vec<Column> = out
                .schema
                .columns()
                .iter()
                .enumerate()
                .map(|(j, c)| {
                    if j == i {
                        Column::new(&c.name, DataType::Float)
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.schema = Schema::new(cols);
            for r in &mut out.rows {
                if let Some(x) = r[i].as_f64() {
                    r[i] = Value::Float((x - min) / range);
                }
            }
            out
        }
        PipelineOp::OneHot(col) => {
            let Some(i) = table.schema.index_of(col) else { return table.clone() };
            let mut categories: Vec<String> = Vec::new();
            for r in &table.rows {
                if let Value::Str(s) = &r[i] {
                    if !categories.contains(s) {
                        categories.push(s.clone());
                    }
                }
            }
            if categories.is_empty() || categories.len() > 12 {
                return table.clone();
            }
            let mut cols: Vec<Column> = table
                .schema
                .columns()
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| c.clone())
                .collect();
            for cat in &categories {
                cols.push(Column::new(
                    &format!("{col}_{}", cat.replace(' ', "_")),
                    DataType::Int,
                ));
            }
            let mut out = Table::new(&table.name, Schema::new(cols));
            for r in &table.rows {
                let mut row: Vec<Value> = r
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, v)| v.clone())
                    .collect();
                for cat in &categories {
                    let hit = matches!(&r[i], Value::Str(s) if s == cat);
                    row.push(Value::Int(hit as i64));
                }
                out.push_row(row).expect("one-hot row conforms");
            }
            out
        }
        PipelineOp::DropConstant => {
            let keep: Vec<usize> = (0..table.schema.len())
                .filter(|&i| {
                    let mut seen: Vec<&Value> = Vec::new();
                    for r in &table.rows {
                        if !seen.iter().any(|s| **s == r[i]) {
                            seen.push(&r[i]);
                        }
                        if seen.len() > 1 {
                            return true;
                        }
                    }
                    table.rows.is_empty()
                })
                .collect();
            if keep.len() == table.schema.len() {
                return table.clone();
            }
            let cols: Vec<Column> =
                keep.iter().map(|&i| table.schema.columns()[i].clone()).collect();
            let mut out = Table::new(&table.name, Schema::new(cols));
            for r in &table.rows {
                out.push_row(keep.iter().map(|&i| r[i].clone()).collect())
                    .expect("projection conforms");
            }
            out
        }
    }
}

/// Candidate operators applicable to the table's current shape (the
/// "recommended" pruned search space).
fn candidates(table: &Table) -> Vec<PipelineOp> {
    let mut ops = vec![PipelineOp::DropConstant];
    for (i, c) in table.schema.columns().iter().enumerate() {
        let has_null = table.rows.iter().any(|r| r[i].is_null());
        match c.dtype {
            DataType::Int | DataType::Float => {
                if has_null {
                    ops.push(PipelineOp::ImputeMean(c.name.clone()));
                }
                ops.push(PipelineOp::MinMax(c.name.clone()));
            }
            DataType::Text => {
                if has_null {
                    ops.push(PipelineOp::ImputeMode(c.name.clone()));
                }
                ops.push(PipelineOp::OneHot(c.name.clone()));
            }
            DataType::Bool => {}
        }
    }
    ops
}

/// Greedy pipeline recommendation: repeatedly apply the candidate that
/// improves readiness most, up to `max_len` operators.
pub fn recommend_pipeline(table: &Table, max_len: usize) -> PipelineReport {
    let before = readiness(table);
    let mut current = table.clone();
    let mut pipeline = Vec::new();
    for _ in 0..max_len {
        let mut best: Option<(f64, PipelineOp, Table)> = None;
        for op in candidates(&current) {
            let out = apply_op(&current, &op);
            let score = readiness(&out);
            if best.as_ref().map(|(s, _, _)| score > *s).unwrap_or(true) {
                best = Some((score, op, out));
            }
        }
        match best {
            Some((score, op, out)) if score > readiness(&current) + 1e-9 => {
                pipeline.push(op);
                current = out;
            }
            _ => break,
        }
    }
    PipelineReport { pipeline, before, after: readiness(&current) }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A messy financial table: NULLs, unscaled numbers, a text column,
    /// and a constant column.
    fn messy() -> Table {
        let schema = Schema::new(vec![
            Column::new("price", DataType::Float),
            Column::new("volume", DataType::Int),
            Column::new("sector", DataType::Text),
            Column::new("currency", DataType::Text),
        ]);
        let mut t = Table::new("stocks", schema);
        for i in 0..20i64 {
            t.push_row(vec![
                if i % 5 == 0 { Value::Null } else { Value::Float(50.0 + i as f64) },
                Value::Int(1000 * (i + 1)),
                Value::Str(if i % 2 == 0 { "tech" } else { "energy" }.into()),
                Value::Str("usd".into()),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn recommendation_improves_readiness() {
        let t = messy();
        let rep = recommend_pipeline(&t, 8);
        assert!(rep.after > rep.before + 0.2, "before {} after {}", rep.before, rep.after);
        assert!(!rep.pipeline.is_empty());
    }

    #[test]
    fn final_table_is_model_ready() {
        let t = messy();
        let rep = recommend_pipeline(&t, 8);
        let mut out = t.clone();
        for op in &rep.pipeline {
            out = apply_op(&out, op);
        }
        // No NULLs left.
        assert!(out.rows.iter().flatten().all(|v| !v.is_null()));
        // No raw text columns left (one-hot applied, constants dropped).
        assert!(out
            .schema
            .columns()
            .iter()
            .all(|c| c.dtype != DataType::Text));
    }

    #[test]
    fn impute_mean_fills_numeric_nulls() {
        let t = messy();
        let out = apply_op(&t, &PipelineOp::ImputeMean("price".into()));
        let i = out.schema.index_of("price").unwrap();
        assert!(out.rows.iter().all(|r| !r[i].is_null()));
    }

    #[test]
    fn minmax_lands_in_unit_interval() {
        let t = messy();
        let out = apply_op(&t, &PipelineOp::MinMax("volume".into()));
        let i = out.schema.index_of("volume").unwrap();
        for r in &out.rows {
            let x = r[i].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn onehot_expands_categories() {
        let t = messy();
        let out = apply_op(&t, &PipelineOp::OneHot("sector".into()));
        assert!(out.schema.index_of("sector").is_none());
        assert!(out.schema.index_of("sector_tech").is_some());
        assert!(out.schema.index_of("sector_energy").is_some());
        let tech = out.schema.index_of("sector_tech").unwrap();
        assert_eq!(out.rows[0][tech], Value::Int(1));
        assert_eq!(out.rows[1][tech], Value::Int(0));
    }

    #[test]
    fn drop_constant_removes_currency() {
        let t = messy();
        let out = apply_op(&t, &PipelineOp::DropConstant);
        assert!(out.schema.index_of("currency").is_none());
        assert_eq!(out.schema.len(), 3);
    }

    #[test]
    fn clean_table_gets_short_or_empty_pipeline() {
        let schema = Schema::new(vec![Column::new("x", DataType::Float)]);
        let mut t = Table::new("clean", schema);
        for i in 0..5 {
            t.push_row(vec![Value::Float(i as f64 / 4.0)]).unwrap();
        }
        let rep = recommend_pipeline(&t, 8);
        assert!(rep.after >= rep.before);
        assert!(rep.pipeline.len() <= 1);
    }

    #[test]
    fn ops_on_missing_column_are_noops() {
        let t = messy();
        let out = apply_op(&t, &PipelineOp::MinMax("nonexistent".into()));
        assert_eq!(out.rows, t.rows);
    }
}
