//! Spreadsheet-grid reshaping operators (Fig. 4 right path).
//!
//! "Most transformation tasks refer to generating a series of operators,
//! e.g., transpose, pivot, explode and so on. We can exploit LLMs to
//! generate the operator sequences so that they can be used to transform
//! other unprocessed data."
//!
//! A [`Grid`] is the raw spreadsheet model (rows of cells, ragged rows
//! allowed); [`Op`]s are the moves an operator program can make. The
//! program *discovery* lives in [`crate::synthesize`].


/// A raw spreadsheet grid.
pub type Grid = Vec<Vec<String>>;

/// A reshaping operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Swap rows and columns.
    Transpose,
    /// Delete the first `n` rows (e.g. report titles above the header).
    DeleteTopRows(usize),
    /// Delete fully-empty rows.
    DropEmptyRows,
    /// Delete fully-empty columns.
    DropEmptyCols,
    /// Fill empty cells in column `col` downward from the value above
    /// (un-merging merged cells).
    FillDown(usize),
    /// Wide → long: keep the first `fixed` columns, turn the remaining
    /// column headers into a `key` column and the cells into a `value`
    /// column (a.k.a. unpivot / melt / explode).
    Unpivot {
        /// Leading columns kept as identifiers.
        fixed: usize,
    },
    /// Long → wide: rows sharing the first column become one row; values
    /// in column `key_col` become new headers filled from `value_col`.
    Pivot {
        /// Column holding the future header names.
        key_col: usize,
        /// Column holding the cell values.
        value_col: usize,
    },
}

impl Op {
    /// Apply the operator to a grid.
    pub fn apply(&self, grid: &Grid) -> Grid {
        match self {
            Op::Transpose => transpose(grid),
            Op::DeleteTopRows(n) => grid.iter().skip(*n).cloned().collect(),
            Op::DropEmptyRows => grid
                .iter()
                .filter(|r| r.iter().any(|c| !c.trim().is_empty()))
                .cloned()
                .collect(),
            Op::DropEmptyCols => drop_empty_cols(grid),
            Op::FillDown(col) => fill_down(grid, *col),
            Op::Unpivot { fixed } => unpivot(grid, *fixed),
            Op::Pivot { key_col, value_col } => pivot(grid, *key_col, *value_col),
        }
    }

    /// The candidate operators worth trying on a grid of this shape (the
    /// search space the synthesizer explores).
    pub fn candidates(grid: &Grid) -> Vec<Op> {
        let width = grid.iter().map(|r| r.len()).max().unwrap_or(0);
        let mut ops = vec![Op::Transpose, Op::DropEmptyRows, Op::DropEmptyCols];
        for n in 1..=3usize.min(grid.len().saturating_sub(1)) {
            ops.push(Op::DeleteTopRows(n));
        }
        for c in 0..width.min(4) {
            ops.push(Op::FillDown(c));
        }
        for fixed in 1..=2usize.min(width.saturating_sub(1)) {
            ops.push(Op::Unpivot { fixed });
        }
        if width >= 3 {
            ops.push(Op::Pivot { key_col: 1, value_col: 2 });
        }
        ops
    }
}

fn transpose(grid: &Grid) -> Grid {
    let width = grid.iter().map(|r| r.len()).max().unwrap_or(0);
    (0..width)
        .map(|c| grid.iter().map(|r| r.get(c).cloned().unwrap_or_default()).collect())
        .collect()
}

fn drop_empty_cols(grid: &Grid) -> Grid {
    let width = grid.iter().map(|r| r.len()).max().unwrap_or(0);
    let keep: Vec<usize> = (0..width)
        .filter(|&c| grid.iter().any(|r| r.get(c).is_some_and(|v| !v.trim().is_empty())))
        .collect();
    grid.iter()
        .map(|r| keep.iter().map(|&c| r.get(c).cloned().unwrap_or_default()).collect())
        .collect()
}

fn fill_down(grid: &Grid, col: usize) -> Grid {
    let mut out = grid.clone();
    let mut last = String::new();
    for row in &mut out {
        if let Some(cell) = row.get_mut(col) {
            if cell.trim().is_empty() {
                *cell = last.clone();
            } else {
                last = cell.clone();
            }
        }
    }
    out
}

fn unpivot(grid: &Grid, fixed: usize) -> Grid {
    let Some(header) = grid.first() else {
        return Vec::new();
    };
    if header.len() <= fixed {
        return grid.clone();
    }
    let mut out: Grid = Vec::new();
    let mut new_header: Vec<String> = header.iter().take(fixed).cloned().collect();
    new_header.push("key".to_string());
    new_header.push("value".to_string());
    out.push(new_header);
    for row in grid.iter().skip(1) {
        for (c, head) in header.iter().enumerate().skip(fixed) {
            let mut r: Vec<String> = row.iter().take(fixed).cloned().collect();
            while r.len() < fixed {
                r.push(String::new());
            }
            r.push(head.clone());
            r.push(row.get(c).cloned().unwrap_or_default());
            out.push(r);
        }
    }
    out
}

fn pivot(grid: &Grid, key_col: usize, value_col: usize) -> Grid {
    let Some(header) = grid.first() else {
        return Vec::new();
    };
    if key_col >= header.len() || value_col >= header.len() || key_col == value_col {
        return grid.clone();
    }
    // Identifier columns: everything except key and value columns.
    let id_cols: Vec<usize> =
        (0..header.len()).filter(|&c| c != key_col && c != value_col).collect();
    // Collect distinct keys in order.
    let mut keys: Vec<String> = Vec::new();
    for row in grid.iter().skip(1) {
        let k = row.get(key_col).cloned().unwrap_or_default();
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let mut out: Grid = Vec::new();
    let mut new_header: Vec<String> =
        id_cols.iter().map(|&c| header[c].clone()).collect();
    new_header.extend(keys.iter().cloned());
    out.push(new_header);
    // Group rows by identifier tuple.
    let mut groups: Vec<(Vec<String>, Vec<String>)> = Vec::new();
    for row in grid.iter().skip(1) {
        let id: Vec<String> =
            id_cols.iter().map(|&c| row.get(c).cloned().unwrap_or_default()).collect();
        let slot = match groups.iter_mut().find(|(g, _)| *g == id) {
            Some((_, vals)) => vals,
            None => {
                groups.push((id.clone(), vec![String::new(); keys.len()]));
                &mut groups.last_mut().expect("just pushed").1
            }
        };
        let k = row.get(key_col).cloned().unwrap_or_default();
        if let Some(pos) = keys.iter().position(|x| *x == k) {
            slot[pos] = row.get(value_col).cloned().unwrap_or_default();
        }
    }
    for (id, vals) in groups {
        let mut r = id;
        r.extend(vals);
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(rows: &[&[&str]]) -> Grid {
        rows.iter().map(|r| r.iter().map(|c| c.to_string()).collect()).collect()
    }

    #[test]
    fn transpose_swaps() {
        let out = Op::Transpose.apply(&g(&[&["a", "b"], &["1", "2"]]));
        assert_eq!(out, g(&[&["a", "1"], &["b", "2"]]));
        // Involution.
        assert_eq!(Op::Transpose.apply(&out), g(&[&["a", "b"], &["1", "2"]]));
    }

    #[test]
    fn delete_top_rows() {
        let out = Op::DeleteTopRows(2).apply(&g(&[&["Report"], &[""], &["h1", "h2"], &["1", "2"]]));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec!["h1", "h2"]);
    }

    #[test]
    fn drop_empty_rows_and_cols() {
        let grid = g(&[&["a", "", "b"], &["", "", ""], &["1", "", "2"]]);
        let no_rows = Op::DropEmptyRows.apply(&grid);
        assert_eq!(no_rows.len(), 2);
        let no_cols = Op::DropEmptyCols.apply(&no_rows);
        assert_eq!(no_cols, g(&[&["a", "b"], &["1", "2"]]));
    }

    #[test]
    fn fill_down_unmerges() {
        let out = Op::FillDown(0).apply(&g(&[&["east", "a"], &["", "b"], &["west", "c"], &["", "d"]]));
        assert_eq!(out[1][0], "east");
        assert_eq!(out[3][0], "west");
    }

    #[test]
    fn unpivot_widens_to_long() {
        let grid = g(&[&["name", "2014", "2015"], &["A", "10", "11"], &["B", "20", "21"]]);
        let out = Op::Unpivot { fixed: 1 }.apply(&grid);
        assert_eq!(out[0], vec!["name", "key", "value"]);
        assert_eq!(out.len(), 5);
        assert_eq!(out[1], vec!["A", "2014", "10"]);
        assert_eq!(out[4], vec!["B", "2015", "21"]);
    }

    #[test]
    fn pivot_longs_to_wide() {
        let grid = g(&[
            &["name", "year", "sales"],
            &["A", "2014", "10"],
            &["A", "2015", "11"],
            &["B", "2014", "20"],
        ]);
        let out = Op::Pivot { key_col: 1, value_col: 2 }.apply(&grid);
        assert_eq!(out[0], vec!["name", "2014", "2015"]);
        assert_eq!(out[1], vec!["A", "10", "11"]);
        assert_eq!(out[2], vec!["B", "20", ""]);
    }

    #[test]
    fn pivot_unpivot_are_near_inverses() {
        let grid = g(&[&["name", "2014", "2015"], &["A", "10", "11"], &["B", "20", "21"]]);
        let long = Op::Unpivot { fixed: 1 }.apply(&grid);
        let wide = Op::Pivot { key_col: 1, value_col: 2 }.apply(&long);
        assert_eq!(wide, grid);
    }

    #[test]
    fn candidates_cover_shape() {
        let grid = g(&[&["a", "b", "c"], &["1", "2", "3"]]);
        let cands = Op::candidates(&grid);
        assert!(cands.contains(&Op::Transpose));
        assert!(cands.contains(&Op::Unpivot { fixed: 1 }));
        assert!(cands.contains(&Op::Pivot { key_col: 1, value_col: 2 }));
    }

    #[test]
    fn ops_handle_empty_grid() {
        let empty: Grid = Vec::new();
        for op in [Op::Transpose, Op::DropEmptyRows, Op::Unpivot { fixed: 1 }] {
            let _ = op.apply(&empty);
        }
    }
}
