//! Property-based tests for the privacy substrate.

use llmdm_privacy::dp::{gaussian_mechanism, laplace_mechanism, PrivacyAccountant};
use llmdm_privacy::logreg::{Dataset, LogisticRegression};
use llmdm_rt::proptest;
use llmdm_rt::proptest::prelude::*;
use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::SeedableRng;

proptest! {
    /// Mechanism outputs are always finite for sane parameters.
    #[test]
    fn mechanisms_finite(
        value in -1e6f64..1e6,
        sensitivity in 0.0f64..100.0,
        epsilon in 0.01f64..10.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let l = laplace_mechanism(value, sensitivity, epsilon, &mut rng);
        prop_assert!(l.is_finite());
        let g = gaussian_mechanism(value, sensitivity, epsilon, 1e-5, &mut rng);
        prop_assert!(g.is_finite());
    }

    /// Zero sensitivity means no noise at all.
    #[test]
    fn zero_sensitivity_is_identity(value in -1e3f64..1e3, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        prop_assert_eq!(laplace_mechanism(value, 0.0, 1.0, &mut rng), value);
        prop_assert_eq!(gaussian_mechanism(value, 0.0, 1.0, 1e-5, &mut rng), value);
    }

    /// Basic composition is exactly additive and order-independent.
    #[test]
    fn basic_composition_additive(
        spends in proptest::collection::vec((0.0f64..1.0, 0.0f64..1e-4), 0..40)
    ) {
        let mut acc = PrivacyAccountant::new();
        for (e, d) in &spends {
            acc.spend(*e, *d);
        }
        let (eps, delta) = acc.basic_composition();
        let expect_e: f64 = spends.iter().map(|(e, _)| e).sum();
        let expect_d: f64 = spends.iter().map(|(_, d)| d).sum();
        prop_assert!((eps - expect_e).abs() < 1e-9);
        prop_assert!((delta - expect_d).abs() < 1e-12);
    }

    /// Predictions are probabilities; accuracy is a rate.
    #[test]
    fn logreg_bounds(
        weights in proptest::collection::vec(-10.0f64..10.0, 4),
        xs in proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 3), 1..20),
    ) {
        let model = LogisticRegression { weights };
        let mut data = Dataset::default();
        for (i, x) in xs.iter().enumerate() {
            let p = model.predict_proba(x);
            prop_assert!((0.0..=1.0).contains(&p));
            data.x.push(x.clone());
            data.y.push(i % 2 == 0);
        }
        let acc = model.accuracy(&data);
        prop_assert!((0.0..=1.0).contains(&acc));
        // Loss is non-negative and finite.
        for (x, &y) in data.x.iter().zip(&data.y) {
            let l = model.loss(x, y);
            prop_assert!(l.is_finite() && l >= 0.0);
        }
    }

    /// One gradient-descent epoch never makes the *training* loss NaN and
    /// the gradient has the expected dimensionality.
    #[test]
    fn gradient_shape_and_stability(
        xs in proptest::collection::vec(proptest::collection::vec(-2.0f64..2.0, 3), 4..16),
    ) {
        let mut data = Dataset::default();
        for (i, x) in xs.iter().enumerate() {
            data.x.push(x.clone());
            data.y.push(i % 3 == 0);
        }
        let mut m = LogisticRegression::new(3);
        let g = m.gradient(&data.x[0], data.y[0]);
        prop_assert_eq!(g.len(), 4); // 3 weights + bias
        m.fit(&data, 5, 0.1);
        prop_assert!(m.weights.iter().all(|w| w.is_finite()));
    }
}
