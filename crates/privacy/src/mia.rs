//! Membership-inference attack harness (§III-D cites Shokri et al.:
//! "numerous attacks … allow malicious users to extract sensitive
//! information from the original training datasets in the inference
//! stage").
//!
//! The classic loss-threshold attacker: training members tend to have
//! lower loss than non-members. We report the worst-case threshold's
//! **advantage** (max TPR − FPR over all thresholds — the KS separation
//! of the member/non-member loss distributions); DP-SGD training
//! demonstrably shrinks it.

use crate::logreg::{Dataset, LogisticRegression};

/// Attack results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiaReport {
    /// True-positive rate (members flagged as members).
    pub tpr: f64,
    /// False-positive rate (non-members flagged as members).
    pub fpr: f64,
    /// Advantage = TPR − FPR (0 = no leakage).
    pub advantage: f64,
    /// The loss threshold used.
    pub threshold: f64,
}

/// Run the loss-threshold attack on `model` given the member set (training
/// data) and a disjoint non-member set.
pub fn membership_attack(
    model: &LogisticRegression,
    members: &Dataset,
    non_members: &Dataset,
) -> MiaReport {
    let losses = |d: &Dataset| -> Vec<f64> {
        d.x.iter().zip(&d.y).map(|(x, &y)| model.loss(x, y)).collect()
    };
    let member_losses = losses(members);
    let non_member_losses = losses(non_members);

    // Worst-case threshold: sweep every observed loss and keep the split
    // maximizing TPR − FPR (the Kolmogorov–Smirnov separation of the two
    // loss distributions — the standard way MIA evaluations report
    // leakage, approximating a shadow-model-calibrated attacker).
    let mut candidates: Vec<f64> = member_losses
        .iter()
        .chain(non_member_losses.iter())
        .copied()
        .collect();
    candidates.sort_by(f64::total_cmp);
    candidates.dedup();
    let rate_at = |losses: &[f64], t: f64| {
        losses.iter().filter(|&&l| l <= t).count() as f64 / losses.len().max(1) as f64
    };
    let mut best = MiaReport { tpr: 0.0, fpr: 0.0, advantage: 0.0, threshold: 0.0 };
    for &t in &candidates {
        let tpr = rate_at(&member_losses, t);
        let fpr = rate_at(&non_member_losses, t);
        if tpr - fpr > best.advantage {
            best = MiaReport { tpr, fpr, advantage: tpr - fpr, threshold: t };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::PrivacyAccountant;
    use crate::dpsgd::{train_dpsgd, DpSgdConfig};
    use crate::logreg::synthetic;

    /// An intentionally overfit model leaks membership; DP training
    /// suppresses the attack advantage.
    #[test]
    fn dp_reduces_attack_advantage() {
        // High-dimensional, tiny, label-noisy training set + many epochs
        // ⇒ memorization of the noise.
        let data = synthetic(100, 30, 0.8, 21);
        let (train, holdout) = data.split(0.5);

        // Overfit non-private model.
        let mut overfit = LogisticRegression::new(30);
        overfit.fit(&train, 4000, 1.0);
        let leaky = membership_attack(&overfit, &train, &holdout);

        // DP-SGD model on the same data.
        let mut acct = PrivacyAccountant::new();
        let private = train_dpsgd(
            &train,
            DpSgdConfig { noise_multiplier: 4.0, epochs: 20, seed: 2, ..Default::default() },
            &mut acct,
        );
        let protected = membership_attack(&private, &train, &holdout);

        assert!(leaky.advantage > 0.35, "expected leakage, got {leaky:?}");
        assert!(
            protected.advantage < leaky.advantage - 0.1,
            "dp {protected:?} vs leaky {leaky:?}"
        );
    }

    #[test]
    fn report_fields_consistent() {
        let data = synthetic(100, 3, 0.2, 22);
        let (train, holdout) = data.split(0.5);
        let mut m = LogisticRegression::new(3);
        m.fit(&train, 200, 0.5);
        let rep = membership_attack(&m, &train, &holdout);
        assert!((0.0..=1.0).contains(&rep.tpr));
        assert!((0.0..=1.0).contains(&rep.fpr));
        assert!((rep.advantage - (rep.tpr - rep.fpr)).abs() < 1e-12);
        assert!(rep.advantage >= 0.0, "sweep never returns negative advantage");
    }

    #[test]
    fn untrained_model_leaks_nothing() {
        let data = synthetic(200, 3, 0.2, 23);
        let (train, holdout) = data.split(0.5);
        let m = LogisticRegression::new(3);
        let rep = membership_attack(&m, &train, &holdout);
        // Identical loss distributions: only sampling noise remains.
        assert!(rep.advantage < 0.25, "advantage {}", rep.advantage);
    }
}
