//! Differential-privacy mechanisms and the privacy accountant.

use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::Rng;

/// Add Laplace noise calibrated to `sensitivity / epsilon` (ε-DP).
pub fn laplace_mechanism(value: f64, sensitivity: f64, epsilon: f64, rng: &mut SmallRng) -> f64 {
    assert!(epsilon > 0.0 && sensitivity >= 0.0);
    let scale = sensitivity / epsilon;
    // Inverse-CDF sampling: Laplace(0, b).
    let u: f64 = rng.gen_range(-0.5..0.5);
    let noise = -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln();
    value + noise
}

/// Add Gaussian noise calibrated for (ε, δ)-DP:
/// σ = sensitivity · √(2 ln(1.25/δ)) / ε.
pub fn gaussian_mechanism(
    value: f64,
    sensitivity: f64,
    epsilon: f64,
    delta: f64,
    rng: &mut SmallRng,
) -> f64 {
    assert!(epsilon > 0.0 && (0.0..1.0).contains(&delta) && delta > 0.0);
    let sigma = sensitivity * (2.0 * (1.25 / delta).ln()).sqrt() / epsilon;
    value + sigma * gauss(rng)
}

/// A standard normal sample (Box–Muller).
pub fn gauss(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Tracks cumulative privacy loss across mechanism invocations.
#[derive(Debug, Clone, Default)]
pub struct PrivacyAccountant {
    events: Vec<(f64, f64)>, // (epsilon, delta)
}

impl PrivacyAccountant {
    /// Fresh accountant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one (ε, δ) mechanism invocation.
    pub fn spend(&mut self, epsilon: f64, delta: f64) {
        assert!(epsilon >= 0.0 && (0.0..1.0).contains(&delta));
        self.events.push((epsilon, delta));
    }

    /// Basic (sequential) composition: ε and δ add up.
    pub fn basic_composition(&self) -> (f64, f64) {
        let eps: f64 = self.events.iter().map(|(e, _)| e).sum();
        let delta: f64 = self.events.iter().map(|(_, d)| d).sum();
        (eps, delta)
    }

    /// Advanced composition (Dwork–Rothblum–Vadhan): for k ε-uniform
    /// events and a slack `delta_prime`,
    /// ε' = ε·√(2k·ln(1/δ')) + k·ε·(e^ε − 1).
    pub fn advanced_composition(&self, delta_prime: f64) -> (f64, f64) {
        assert!(delta_prime > 0.0 && delta_prime < 1.0);
        let k = self.events.len() as f64;
        if k == 0.0 {
            return (0.0, 0.0);
        }
        let eps_max = self.events.iter().map(|(e, _)| *e).fold(0.0, f64::max);
        let eps = eps_max * (2.0 * k * (1.0 / delta_prime).ln()).sqrt()
            + k * eps_max * (eps_max.exp() - 1.0);
        let delta: f64 = self.events.iter().map(|(_, d)| d).sum::<f64>() + delta_prime;
        (eps, delta)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether anything was spent.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_rt::rand::SeedableRng;

    #[test]
    fn laplace_noise_scale_tracks_epsilon() {
        // Empirical mean absolute noise ≈ scale = sensitivity/ε.
        let measure = |eps: f64| {
            let mut rng = SmallRng::seed_from_u64(1);
            let n = 20_000;
            (0..n)
                .map(|_| (laplace_mechanism(0.0, 1.0, eps, &mut rng)).abs())
                .sum::<f64>()
                / n as f64
        };
        let loose = measure(0.1); // scale 10
        let tight = measure(10.0); // scale 0.1
        assert!((loose - 10.0).abs() < 1.0, "loose {loose}");
        assert!((tight - 0.1).abs() < 0.02, "tight {tight}");
    }

    #[test]
    fn gaussian_noise_scale_tracks_sigma() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 20_000;
        let eps = 1.0;
        let delta = 1e-5;
        let sigma_expect = (2.0 * (1.25f64 / delta).ln()).sqrt() / eps;
        let var: f64 = (0..n)
            .map(|_| gaussian_mechanism(0.0, 1.0, eps, delta, &mut rng).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((var.sqrt() - sigma_expect).abs() / sigma_expect < 0.05);
    }

    #[test]
    fn mechanisms_are_unbiased() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 =
            (0..n).map(|_| laplace_mechanism(7.0, 1.0, 1.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn basic_composition_adds() {
        let mut acc = PrivacyAccountant::new();
        for _ in 0..10 {
            acc.spend(0.1, 1e-6);
        }
        let (eps, delta) = acc.basic_composition();
        assert!((eps - 1.0).abs() < 1e-9);
        assert!((delta - 1e-5).abs() < 1e-12);
    }

    #[test]
    fn advanced_composition_beats_basic_for_many_small_events() {
        let mut acc = PrivacyAccountant::new();
        for _ in 0..1000 {
            acc.spend(0.01, 0.0);
        }
        let (basic, _) = acc.basic_composition();
        let (adv, _) = acc.advanced_composition(1e-5);
        assert!(adv < basic, "advanced {adv} vs basic {basic}");
    }

    #[test]
    fn empty_accountant() {
        let acc = PrivacyAccountant::new();
        assert_eq!(acc.basic_composition(), (0.0, 0.0));
        assert_eq!(acc.advanced_composition(1e-5), (0.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_epsilon_panics() {
        let mut rng = SmallRng::seed_from_u64(4);
        laplace_mechanism(0.0, 1.0, 0.0, &mut rng);
    }
}
