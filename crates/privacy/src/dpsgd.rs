//! DP-SGD (after Abadi et al., cited in §III-D): per-example gradient
//! clipping + Gaussian noise, with the accountant tracking the spend.

use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::seq::SliceRandom;
use llmdm_rt::rand::SeedableRng;

use crate::dp::{gauss, PrivacyAccountant};
use crate::logreg::{Dataset, LogisticRegression};

/// DP-SGD hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct DpSgdConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f64,
    /// Per-example gradient L2 clip bound.
    pub clip: f64,
    /// Gaussian noise multiplier (σ = multiplier · clip).
    pub noise_multiplier: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for DpSgdConfig {
    fn default() -> Self {
        DpSgdConfig { epochs: 30, batch: 32, lr: 0.5, clip: 1.0, noise_multiplier: 1.0, seed: 0 }
    }
}

/// Train a logistic regression with DP-SGD. Records one (ε, δ) event per
/// step in the accountant (the ε per step follows the Gaussian-mechanism
/// bound for the configured multiplier at δ = 1e-5).
pub fn train_dpsgd(
    data: &Dataset,
    config: DpSgdConfig,
    accountant: &mut PrivacyAccountant,
) -> LogisticRegression {
    let mut model = LogisticRegression::new(data.dim());
    if data.is_empty() {
        return model;
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let delta = 1e-5;
    // ε per step from σ = clip·multiplier: ε = clip·√(2 ln(1.25/δ))/σ.
    let eps_per_step = if config.noise_multiplier > 0.0 {
        (2.0 * (1.25f64 / delta).ln()).sqrt() / config.noise_multiplier
    } else {
        f64::INFINITY
    };

    let mut order: Vec<usize> = (0..data.len()).collect();
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(config.batch.max(1)) {
            let mut sum = vec![0.0; model.weights.len()];
            for &i in chunk {
                let mut g = model.gradient(&data.x[i], data.y[i]);
                // Clip to L2 ≤ clip.
                let norm: f64 = g.iter().map(|v| v * v).sum::<f64>().sqrt();
                if norm > config.clip {
                    let scale = config.clip / norm;
                    for v in &mut g {
                        *v *= scale;
                    }
                }
                for (s, v) in sum.iter_mut().zip(&g) {
                    *s += v;
                }
            }
            // Noise the summed gradient.
            let sigma = config.noise_multiplier * config.clip;
            for s in &mut sum {
                *s += sigma * gauss(&mut rng);
            }
            let m = chunk.len() as f64;
            for (w, s) in model.weights.iter_mut().zip(&sum) {
                *w -= config.lr * s / m;
            }
            if eps_per_step.is_finite() {
                accountant.spend(eps_per_step, delta);
            }
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logreg::synthetic;

    #[test]
    fn moderate_noise_still_learns() {
        let data = synthetic(600, 4, 0.05, 5);
        let (train, test) = data.split(0.8);
        let mut acc = PrivacyAccountant::new();
        let model = train_dpsgd(
            &train,
            DpSgdConfig { noise_multiplier: 0.5, ..Default::default() },
            &mut acc,
        );
        assert!(model.accuracy(&test) > 0.8, "acc {}", model.accuracy(&test));
        assert!(!acc.is_empty());
    }

    #[test]
    fn utility_degrades_with_noise() {
        let data = synthetic(600, 4, 0.05, 6);
        let (train, test) = data.split(0.8);
        let acc_at = |mult: f64| {
            let mut acct = PrivacyAccountant::new();
            let m = train_dpsgd(
                &train,
                DpSgdConfig { noise_multiplier: mult, seed: 9, ..Default::default() },
                &mut acct,
            );
            m.accuracy(&test)
        };
        let clean = acc_at(0.0);
        let noisy = acc_at(20.0);
        assert!(clean > noisy + 0.03, "clean {clean} vs noisy {noisy}");
    }

    #[test]
    fn accountant_epsilon_decreases_with_more_noise() {
        let data = synthetic(200, 3, 0.1, 7);
        let spend_at = |mult: f64| {
            let mut acct = PrivacyAccountant::new();
            train_dpsgd(
                &data,
                DpSgdConfig { noise_multiplier: mult, epochs: 5, ..Default::default() },
                &mut acct,
            );
            acct.advanced_composition(1e-5).0
        };
        assert!(spend_at(2.0) < spend_at(0.5));
    }

    #[test]
    fn zero_noise_matches_plain_sgd_shape() {
        let data = synthetic(300, 3, 0.05, 8);
        let mut acct = PrivacyAccountant::new();
        let m = train_dpsgd(
            &data,
            DpSgdConfig { noise_multiplier: 0.0, ..Default::default() },
            &mut acct,
        );
        assert!(m.accuracy(&data) > 0.9);
        assert!(acct.is_empty(), "no privacy events without noise");
    }

    #[test]
    fn deterministic_per_seed() {
        let data = synthetic(200, 3, 0.1, 9);
        let run = || {
            let mut acct = PrivacyAccountant::new();
            train_dpsgd(&data, DpSgdConfig::default(), &mut acct).weights
        };
        assert_eq!(run(), run());
    }
}
