//! Adaptive federated-learning strategy via a bandit controller.
//!
//! §III-D closes its FL discussion with: "the users tend to be
//! heterogeneous … This makes the design space of the FL strategies for
//! LLMs complicated and challenging. A potential solution is to use the
//! reinforcement learning technique to adjust the FL training strategies
//! adaptively."
//!
//! [`run_adaptive_federated`] implements that: an ε-greedy bandit chooses
//! the *local-epoch budget* for each round (the classic FedAvg knob whose
//! best value depends on client heterogeneity); the reward is the round's
//! validation-accuracy improvement. Under heterogeneity, long local
//! training causes client drift, so the controller learns to prefer
//! shorter rounds — without being told the heterogeneity level.

use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::{Rng, SeedableRng};

use crate::federated::{partition, FedConfig};
use crate::logreg::{Dataset, LogisticRegression};

/// The controller's arm statistics.
#[derive(Debug, Clone)]
pub struct ArmStats {
    /// The local-epoch option this arm plays.
    pub local_epochs: usize,
    /// Times chosen.
    pub pulls: u64,
    /// Mean observed reward (accuracy delta).
    pub mean_reward: f64,
}

/// Result of an adaptive run.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// Final global model.
    pub model: LogisticRegression,
    /// Validation accuracy per round.
    pub round_accuracy: Vec<f64>,
    /// Arm chosen per round.
    pub chosen_epochs: Vec<usize>,
    /// Final arm statistics.
    pub arms: Vec<ArmStats>,
}

/// Run FedAvg with an ε-greedy controller over `epoch_options`.
pub fn run_adaptive_federated(
    data: &Dataset,
    test: &Dataset,
    config: FedConfig,
    epoch_options: &[usize],
    epsilon: f64,
) -> AdaptiveReport {
    assert!(!epoch_options.is_empty(), "need at least one arm");
    let parts = partition(data, config.clients, config.heterogeneity, config.seed);
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xad4f);
    let mut global = LogisticRegression::new(data.dim());
    let mut arms: Vec<ArmStats> = epoch_options
        .iter()
        .map(|&e| ArmStats { local_epochs: e, pulls: 0, mean_reward: 0.0 })
        .collect();
    let mut round_accuracy = Vec::with_capacity(config.rounds);
    let mut chosen_epochs = Vec::with_capacity(config.rounds);
    let mut last_acc = global.accuracy(test);

    for _ in 0..config.rounds {
        // ε-greedy arm choice: explore, or play the best-known arm
        // (unpulled arms first so every option gets tried).
        let arm_idx = if rng.gen_bool(epsilon.clamp(0.0, 1.0)) {
            rng.gen_range(0..arms.len())
        } else if let Some(i) = arms.iter().position(|a| a.pulls == 0) {
            i
        } else {
            arms.iter()
                .enumerate()
                .max_by(|a, b| a.1.mean_reward.total_cmp(&b.1.mean_reward))
                .map(|(i, _)| i)
                .unwrap_or(0)
        };
        let local_epochs = arms[arm_idx].local_epochs;
        chosen_epochs.push(local_epochs);

        // One FedAvg round at the chosen budget (sequential: the bandit's
        // decision is the experiment here, not thread parallelism).
        let mut avg = vec![0.0; global.weights.len()];
        for part in &parts {
            let mut local = global.clone();
            local.fit(part, local_epochs, config.lr);
            for (a, w) in avg.iter_mut().zip(&local.weights) {
                *a += w;
            }
        }
        for a in &mut avg {
            *a /= parts.len() as f64;
        }
        global.weights = avg;

        // Reward: validation accuracy delta.
        let acc = global.accuracy(test);
        let reward = acc - last_acc;
        last_acc = acc;
        round_accuracy.push(acc);
        let arm = &mut arms[arm_idx];
        arm.pulls += 1;
        arm.mean_reward += (reward - arm.mean_reward) / arm.pulls as f64;
    }

    AdaptiveReport { model: global, round_accuracy, chosen_epochs, arms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logreg::synthetic;

    #[test]
    fn adaptive_matches_or_beats_fixed_worst_arm() {
        let data = synthetic(800, 4, 0.05, 31);
        let (train, test) = data.split(0.8);
        let config = FedConfig { rounds: 20, heterogeneity: 0.9, seed: 5, ..Default::default() };

        // Fixed strategies at each extreme.
        let fixed = |epochs: usize| {
            let rep = run_adaptive_federated(&train, &test, config, &[epochs], 0.0);
            *rep.round_accuracy.last().unwrap()
        };
        let short = fixed(1);
        let long = fixed(20);
        let worst = short.min(long);

        let adaptive =
            run_adaptive_federated(&train, &test, config, &[1, 5, 20], 0.2);
        let final_acc = *adaptive.round_accuracy.last().unwrap();
        assert!(
            final_acc >= worst - 0.03,
            "adaptive {final_acc} vs fixed worst {worst}"
        );
        assert!(final_acc > 0.8, "adaptive should converge, got {final_acc}");
    }

    #[test]
    fn every_arm_gets_explored() {
        let data = synthetic(400, 3, 0.1, 32);
        let (train, test) = data.split(0.8);
        let config = FedConfig { rounds: 12, seed: 7, ..Default::default() };
        let rep = run_adaptive_federated(&train, &test, config, &[1, 3, 9], 0.3);
        assert!(rep.arms.iter().all(|a| a.pulls > 0), "{:?}", rep.arms);
        assert_eq!(rep.chosen_epochs.len(), 12);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = synthetic(300, 3, 0.1, 33);
        let (train, test) = data.split(0.8);
        let config = FedConfig { rounds: 8, seed: 9, ..Default::default() };
        let a = run_adaptive_federated(&train, &test, config, &[1, 5], 0.2);
        let b = run_adaptive_federated(&train, &test, config, &[1, 5], 0.2);
        assert_eq!(a.chosen_epochs, b.chosen_epochs);
        assert_eq!(a.model.weights, b.model.weights);
    }

    #[test]
    #[should_panic]
    fn empty_arms_panics() {
        let data = synthetic(50, 2, 0.1, 34);
        run_adaptive_federated(&data, &data, FedConfig::default(), &[], 0.1);
    }
}
