//! Plain logistic regression — the learner the DP and federated modules
//! privatize.


/// A labelled dataset: rows of features and binary labels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Feature rows (equal length).
    pub x: Vec<Vec<f64>>,
    /// Labels.
    pub y: Vec<bool>,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether there are no examples.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimensionality (0 when empty).
    pub fn dim(&self) -> usize {
        self.x.first().map(|r| r.len()).unwrap_or(0)
    }

    /// Split into (train, test) at `frac`.
    pub fn split(&self, frac: f64) -> (Dataset, Dataset) {
        let cut = ((self.len() as f64) * frac) as usize;
        (
            Dataset { x: self.x[..cut].to_vec(), y: self.y[..cut].to_vec() },
            Dataset { x: self.x[cut..].to_vec(), y: self.y[cut..].to_vec() },
        )
    }
}

/// Binary logistic regression with a bias term.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    /// Weights; the last entry is the bias.
    pub weights: Vec<f64>,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Zero-initialized model for `dim` features.
    pub fn new(dim: usize) -> Self {
        LogisticRegression { weights: vec![0.0; dim + 1] }
    }

    /// P(y = 1 | x).
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len() + 1, self.weights.len());
        let z: f64 = self.weights[..x.len()].iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
            + self.weights[x.len()];
        sigmoid(z)
    }

    /// Hard prediction at 0.5.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Per-example gradient of the logistic loss.
    pub fn gradient(&self, x: &[f64], y: bool) -> Vec<f64> {
        let err = self.predict_proba(x) - if y { 1.0 } else { 0.0 };
        let mut g: Vec<f64> = x.iter().map(|v| err * v).collect();
        g.push(err); // bias
        g
    }

    /// Full-batch gradient descent.
    pub fn fit(&mut self, data: &Dataset, epochs: usize, lr: f64) {
        if data.is_empty() {
            return;
        }
        let n = data.len() as f64;
        for _ in 0..epochs {
            let mut grad = vec![0.0; self.weights.len()];
            for (x, &y) in data.x.iter().zip(&data.y) {
                for (g, gi) in grad.iter_mut().zip(self.gradient(x, y)) {
                    *g += gi;
                }
            }
            for (w, g) in self.weights.iter_mut().zip(&grad) {
                *w -= lr * g / n;
            }
        }
    }

    /// Accuracy on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let ok = data
            .x
            .iter()
            .zip(&data.y)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        ok as f64 / data.len() as f64
    }

    /// Logistic loss of one example (used by the MIA attacker).
    pub fn loss(&self, x: &[f64], y: bool) -> f64 {
        let p = self.predict_proba(x).clamp(1e-9, 1.0 - 1e-9);
        if y {
            -p.ln()
        } else {
            -(1.0 - p).ln()
        }
    }
}

/// A seeded, linearly-separable-ish synthetic dataset for tests and
/// benches: y = (w*·x + noise > 0).
pub fn synthetic(n: usize, dim: usize, noise: f64, seed: u64) -> Dataset {
    use llmdm_rt::rand::rngs::SmallRng;
    use llmdm_rt::rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let w_star: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut data = Dataset::default();
    for _ in 0..n {
        let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let z: f64 = w_star.iter().zip(&x).map(|(w, v)| w * v).sum::<f64>()
            + noise * crate::dp::gauss(&mut rng);
        data.x.push(x);
        data.y.push(z > 0.0);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_separable_data() {
        let data = synthetic(400, 4, 0.05, 1);
        let (train, test) = data.split(0.75);
        let mut m = LogisticRegression::new(4);
        m.fit(&train, 300, 0.5);
        assert!(m.accuracy(&test) > 0.9, "acc {}", m.accuracy(&test));
    }

    #[test]
    fn untrained_model_is_chance() {
        let data = synthetic(200, 4, 0.1, 2);
        let m = LogisticRegression::new(4);
        let acc = m.accuracy(&data);
        assert!((0.3..=0.7).contains(&acc), "acc {acc}");
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let data = synthetic(100, 3, 0.1, 3);
        let mut m = LogisticRegression::new(3);
        let loss_before: f64 =
            data.x.iter().zip(&data.y).map(|(x, &y)| m.loss(x, y)).sum();
        m.fit(&data, 100, 0.5);
        let loss_after: f64 =
            data.x.iter().zip(&data.y).map(|(x, &y)| m.loss(x, y)).sum();
        assert!(loss_after < loss_before * 0.8);
    }

    #[test]
    fn split_partitions() {
        let data = synthetic(100, 2, 0.1, 4);
        let (a, b) = data.split(0.6);
        assert_eq!(a.len(), 60);
        assert_eq!(b.len(), 40);
    }

    #[test]
    fn empty_dataset_handled() {
        let mut m = LogisticRegression::new(2);
        m.fit(&Dataset::default(), 10, 0.1);
        assert_eq!(m.accuracy(&Dataset::default()), 0.0);
    }
}
