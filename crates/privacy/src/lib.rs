//! # llmdm-privacy — LLM security & privacy substrate (§III-D)
//!
//! The paper's third challenge: data management over health/financial data
//! "demands stringent privacy protection … in both training stage and
//! inference stage". The researchable content it calls for is algorithmic,
//! and this crate implements it end to end:
//!
//! * [`dp`] — differential privacy: seeded Laplace and Gaussian
//!   mechanisms, sensitivity-scaled, plus a privacy accountant with basic
//!   and advanced composition ("design new algorithms that inject minimal
//!   noise … while maximizing the model utility");
//! * [`logreg`] — the plain logistic-regression learner the other modules
//!   privatize (the decision models of §III-B are exactly this class);
//! * [`dpsgd`] — DP-SGD: per-example gradient clipping + Gaussian noise,
//!   with the noise-multiplier/utility trade-off exposed for the ablation
//!   bench;
//! * [`federated`] — a federated-learning simulator (§III-D's "natural
//!   solution is data collaboration"): heterogeneous clients, FedAvg
//!   rounds (clients train in parallel threads), and **secure
//!   aggregation** by pairwise additive masking, so the server only ever
//!   sees masked updates that cancel in the sum;
//! * [`adaptive`] — the paper's envisioned "reinforcement learning
//!   technique to adjust the FL training strategies adaptively": an
//!   ε-greedy bandit over the local-epoch budget rewarded by validation
//!   improvement;
//! * [`mia`] — a membership-inference attack harness (the paper cites
//!   Shokri et al.): a loss-threshold attacker whose advantage quantifies
//!   leakage, and which DP-SGD demonstrably suppresses.
//!
//! TEE (Intel SGX) deployment is hardware and out of scope; see DESIGN.md
//! §2 for the substitution note.

#![warn(missing_docs)]

pub mod adaptive;
pub mod dp;
pub mod dpsgd;
pub mod federated;
pub mod logreg;
pub mod mia;

pub use adaptive::{run_adaptive_federated, AdaptiveReport, ArmStats};
pub use dp::{gaussian_mechanism, laplace_mechanism, PrivacyAccountant};
pub use dpsgd::{train_dpsgd, DpSgdConfig};
pub use federated::{run_federated, FedConfig, FedReport};
pub use logreg::{Dataset, LogisticRegression};
pub use mia::{membership_attack, MiaReport};
