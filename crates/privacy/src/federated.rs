//! Federated learning with secure aggregation (§III-D).
//!
//! "Federated learning has emerged as a promising paradigm for multiple
//! users to collaboratively train or fine-tune a machine learning model
//! without disclosing the private data to each other … the users tend to
//! be heterogeneous with regard to data distributions, qualities,
//! quantities, and computation capabilities."
//!
//! [`run_federated`] simulates FedAvg over heterogeneous clients: each
//! round, clients train locally (in parallel threads via
//! `std::thread::scope`), mask their weight updates with pairwise
//! additive masks that cancel in the sum (secure aggregation — the
//! server never sees an individual update), and the server averages.

use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::{Rng, SeedableRng};

use crate::logreg::{Dataset, LogisticRegression};

/// Federated training configuration.
#[derive(Debug, Clone, Copy)]
pub struct FedConfig {
    /// Number of clients.
    pub clients: usize,
    /// Communication rounds.
    pub rounds: usize,
    /// Local epochs per round.
    pub local_epochs: usize,
    /// Local learning rate.
    pub lr: f64,
    /// Label-skew heterogeneity in `[0, 1]` (0 = iid).
    pub heterogeneity: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for FedConfig {
    fn default() -> Self {
        FedConfig { clients: 5, rounds: 15, local_epochs: 5, lr: 0.5, heterogeneity: 0.5, seed: 0 }
    }
}

/// Result of a federated run.
#[derive(Debug, Clone)]
pub struct FedReport {
    /// The global model.
    pub model: LogisticRegression,
    /// Global test accuracy per round.
    pub round_accuracy: Vec<f64>,
    /// Per-client example counts (heterogeneity evidence).
    pub client_sizes: Vec<usize>,
}

/// Split `data` across clients with label-skewed heterogeneity: client
/// `c` receives positives with probability ∝ its skew preference.
pub fn partition(data: &Dataset, clients: usize, heterogeneity: f64, seed: u64) -> Vec<Dataset> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut parts = vec![Dataset::default(); clients.max(1)];
    for (x, &y) in data.x.iter().zip(&data.y) {
        // Skewed assignment: positive examples prefer low-index clients,
        // negatives high-index, blended by the heterogeneity knob.
        let c = if rng.gen_bool(heterogeneity.clamp(0.0, 1.0)) {
            let half = (clients / 2).max(1);
            if y {
                rng.gen_range(0..half)
            } else {
                rng.gen_range(clients - half..clients)
            }
        } else {
            rng.gen_range(0..clients)
        };
        parts[c].x.push(x.clone());
        parts[c].y.push(y);
    }
    parts
}

/// Pairwise additive masks: client i adds Σ_{j>i} m_ij − Σ_{j<i} m_ji to
/// its update; the masks cancel in the server's sum. Returns the masked
/// updates.
fn mask_updates(updates: &[Vec<f64>], seed: u64) -> Vec<Vec<f64>> {
    let n = updates.len();
    let dim = updates.first().map(|u| u.len()).unwrap_or(0);
    let mut masked: Vec<Vec<f64>> = updates.to_vec();
    for i in 0..n {
        for j in (i + 1)..n {
            // The shared mask m_ij, derived from the pair's key exchange.
            let mut rng = SmallRng::seed_from_u64(seed ^ ((i as u64) << 32) ^ j as u64);
            let masks: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            for (d, m) in masks.iter().enumerate() {
                masked[i][d] += m;
                masked[j][d] -= m;
            }
        }
    }
    masked
}

/// Run FedAvg.
pub fn run_federated(data: &Dataset, test: &Dataset, config: FedConfig) -> FedReport {
    let parts = partition(data, config.clients, config.heterogeneity, config.seed);
    let client_sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
    let dim = data.dim();
    let mut global = LogisticRegression::new(dim);
    let mut round_accuracy = Vec::with_capacity(config.rounds);

    for round in 0..config.rounds {
        // Local training in parallel.
        let updates: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .map(|part| {
                    let mut local = global.clone();
                    s.spawn(move || {
                        local.fit(part, config.local_epochs, config.lr);
                        local.weights
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });

        // Secure aggregation: server only sums masked updates.
        let masked = mask_updates(&updates, config.seed.wrapping_add(round as u64));
        let n = masked.len() as f64;
        let mut avg = vec![0.0; global.weights.len()];
        for u in &masked {
            for (a, v) in avg.iter_mut().zip(u) {
                *a += v;
            }
        }
        for a in &mut avg {
            *a /= n;
        }
        global.weights = avg;
        round_accuracy.push(global.accuracy(test));
    }
    FedReport { model: global, round_accuracy, client_sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logreg::synthetic;

    #[test]
    fn federated_training_converges() {
        let data = synthetic(800, 4, 0.05, 11);
        let (train, test) = data.split(0.8);
        let rep = run_federated(&train, &test, FedConfig::default());
        let final_acc = *rep.round_accuracy.last().unwrap();
        assert!(final_acc > 0.85, "final acc {final_acc}");
        // Accuracy should improve over rounds.
        assert!(final_acc > rep.round_accuracy[0]);
    }

    #[test]
    fn heterogeneous_partition_skews_labels() {
        let data = synthetic(1000, 3, 0.1, 12);
        let parts = partition(&data, 4, 0.9, 1);
        let pos_rate = |d: &Dataset| {
            d.y.iter().filter(|&&y| y).count() as f64 / d.len().max(1) as f64
        };
        let first = pos_rate(&parts[0]);
        let last = pos_rate(&parts[3]);
        assert!(first > last + 0.4, "first {first} last {last}");
        // iid partition is balanced.
        let iid = partition(&data, 4, 0.0, 1);
        let diff = (pos_rate(&iid[0]) - pos_rate(&iid[3])).abs();
        assert!(diff < 0.15, "iid diff {diff}");
    }

    #[test]
    fn masks_cancel_in_aggregate() {
        let updates = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let masked = mask_updates(&updates, 7);
        // Individual updates are hidden…
        assert_ne!(masked[0], updates[0]);
        // …but the sums agree.
        for d in 0..2 {
            let raw: f64 = updates.iter().map(|u| u[d]).sum();
            let msk: f64 = masked.iter().map(|u| u[d]).sum();
            assert!((raw - msk).abs() < 1e-9);
        }
    }

    #[test]
    fn heterogeneity_slows_convergence() {
        let data = synthetic(800, 4, 0.05, 13);
        let (train, test) = data.split(0.8);
        let acc_at = |het: f64| {
            let rep = run_federated(
                &train,
                &test,
                FedConfig { heterogeneity: het, rounds: 4, seed: 3, ..Default::default() },
            );
            rep.round_accuracy[1] // early-round accuracy
        };
        // Early in training, iid clients make faster progress.
        assert!(acc_at(0.0) >= acc_at(0.95) - 0.05);
    }

    #[test]
    fn all_clients_get_data() {
        let data = synthetic(500, 3, 0.1, 14);
        let rep = run_federated(&data, &data, FedConfig { clients: 5, rounds: 1, ..Default::default() });
        assert_eq!(rep.client_sizes.len(), 5);
        assert!(rep.client_sizes.iter().all(|&n| n > 0));
    }
}
