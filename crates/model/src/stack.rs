//! [`ModelStack`] — one fluent builder for the whole decorator stack.
//!
//! Before this module, composing a production-shaped model meant nesting
//! constructors by hand:
//!
//! ```text
//! ResilientClient::new(
//!     Arc::new(FaultyModel::new(zoo.large(), plan, clock.clone())),
//!     policy, breaker, clock)            // … and so on, inside-out
//! ```
//!
//! which is error-prone (clock threading, Arc erasure at every layer) and
//! unreadable in the examples. The builder expresses the same stack
//! outside-in, in application order:
//!
//! ```
//! use llmdm_model::{ModelStack, ModelZoo, LanguageModel};
//! use llmdm_resil::FaultPlan;
//! use std::sync::Arc;
//!
//! let zoo = ModelZoo::standard(42);
//! let model = ModelStack::new(&zoo)
//!     .with_faults(Arc::new(FaultPlan::none()))
//!     .with_default_retry()
//!     .build();
//! assert_eq!(model.name(), "sim-large");
//! ```
//!
//! Layers added later wrap layers added earlier (the last `with_*` is the
//! outermost decorator the caller talks to). Typed handles to the fault
//! injector and retry client stay available (for `executed_cost`
//! reconciliation and retry accounting) even after `build()` erases the
//! stack to a `dyn LanguageModel`. Cache layers live downstream:
//! `llmdm-semcache` extends this builder with `.with_cache(…)` via its
//! `CacheStackExt` trait, keeping the dependency graph acyclic.
//!
//! The nested-constructor pattern remains supported for odd stacks, but
//! new code and all examples go through the builder.

use std::sync::Arc;

use llmdm_resil::{BreakerConfig, FaultPlan, RetryPolicy, SimClock};

use crate::faulty::FaultyModel;
use crate::resilient::ResilientClient;
use crate::sim::{Completion, CompletionRequest, LanguageModel};
use crate::zoo::{ModelTier, ModelZoo};

/// A fluent builder composing zoo tier → [`FaultyModel`] →
/// [`ResilientClient`] → (downstream: cache, cascade) in one chain.
pub struct ModelStack {
    top: Arc<dyn LanguageModel>,
    clock: SimClock,
    faulty: Option<Arc<FaultyModel>>,
    resilient: Option<Arc<ResilientClient>>,
}

impl std::fmt::Debug for ModelStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelStack")
            .field("top", &self.top.name())
            .field("faulty", &self.faulty.is_some())
            .field("resilient", &self.resilient.is_some())
            .finish()
    }
}

impl ModelStack {
    /// Start a stack on the zoo's large tier (the common case for
    /// quality-first pipelines). Use [`ModelStack::tier`] for a specific
    /// tier or [`ModelStack::over`] for an arbitrary base model.
    pub fn new(zoo: &ModelZoo) -> Self {
        Self::tier(zoo, ModelTier::Large)
    }

    /// Start a stack on a specific zoo tier.
    pub fn tier(zoo: &ModelZoo, tier: ModelTier) -> Self {
        Self::over(zoo.get(tier))
    }

    /// Start a stack over an arbitrary base model.
    pub fn over(model: Arc<dyn LanguageModel>) -> Self {
        ModelStack { top: model, clock: SimClock::new(), faulty: None, resilient: None }
    }

    /// Time every subsequent layer on `clock` instead of a fresh one
    /// (call *before* `with_faults`/`with_retry`; layers capture the
    /// clock at wrap time).
    pub fn on_clock(mut self, clock: SimClock) -> Self {
        self.clock = clock;
        self
    }

    /// Wrap the current top in a fault injector driven by `plan`. The
    /// injector handle stays retrievable via [`ModelStack::faulty`] for
    /// executed-cost reconciliation.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        let faulty = Arc::new(FaultyModel::new(self.top.clone(), plan, self.clock.clone()));
        self.faulty = Some(faulty.clone());
        self.top = faulty;
        self
    }

    /// Wrap the current top in a retry/breaker client with an explicit
    /// policy. Handle retrievable via [`ModelStack::resilient`].
    pub fn with_retry(mut self, policy: RetryPolicy, breaker: BreakerConfig) -> Self {
        let client =
            Arc::new(ResilientClient::new(self.top.clone(), policy, breaker, self.clock.clone()));
        self.resilient = Some(client.clone());
        self.top = client;
        self
    }

    /// Wrap the current top in a retry/breaker client with the default
    /// policy (3 retries, backoff seeded from the model name).
    pub fn with_default_retry(mut self) -> Self {
        let client = Arc::new(ResilientClient::with_defaults(self.top.clone(), self.clock.clone()));
        self.resilient = Some(client.clone());
        self.top = client;
        self
    }

    /// Wrap the current top in an arbitrary decorator — the escape hatch
    /// downstream crates use to graft their own layers (e.g.
    /// `llmdm-semcache`'s `.with_cache`) onto the chain without this
    /// crate knowing their types.
    pub fn with_layer(
        mut self,
        wrap: impl FnOnce(Arc<dyn LanguageModel>, &SimClock) -> Arc<dyn LanguageModel>,
    ) -> Self {
        self.top = wrap(self.top.clone(), &self.clock);
        self
    }

    /// The shared clock layers are timed on.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The fault-injector handle, if `with_faults` was applied.
    pub fn faulty(&self) -> Option<&Arc<FaultyModel>> {
        self.faulty.as_ref()
    }

    /// The retry-client handle, if a retry layer was applied.
    pub fn resilient(&self) -> Option<&Arc<ResilientClient>> {
        self.resilient.as_ref()
    }

    /// The current top of the stack without consuming the builder.
    pub fn model(&self) -> Arc<dyn LanguageModel> {
        self.top.clone()
    }

    /// Finish the chain as a boxed trait object.
    pub fn build(self) -> Box<dyn LanguageModel> {
        Box::new(BuiltStack { top: self.top })
    }

    /// Finish the chain as an `Arc` (for callers that fan the model out
    /// across tiers or threads, e.g. cascade construction).
    pub fn build_arc(self) -> Arc<dyn LanguageModel> {
        self.top
    }
}

/// The erased product of [`ModelStack::build`]: delegates every call to
/// the outermost layer.
struct BuiltStack {
    top: Arc<dyn LanguageModel>,
}

impl LanguageModel for BuiltStack {
    fn name(&self) -> &str {
        self.top.name()
    }

    fn complete(&self, req: &CompletionRequest) -> Result<Completion, crate::error::ModelError> {
        self.top.complete(req)
    }

    fn context_window(&self) -> usize {
        self.top.context_window()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::PromptEnvelope;
    use llmdm_resil::{Backoff, FaultRates, TierPlan};

    fn prompt(nonce: u64) -> CompletionRequest {
        CompletionRequest::new(
            PromptEnvelope::builder("oracle")
                .header("gold", "ok")
                .header("difficulty", 0.0)
                .header("nonce", nonce)
                .body("q")
                .build(),
        )
    }

    #[test]
    fn bare_stack_is_transparent() {
        let zoo = ModelZoo::standard(7);
        let stacked = ModelStack::tier(&zoo, ModelTier::Medium).build();
        let direct = zoo.medium();
        assert_eq!(stacked.name(), "sim-medium");
        assert_eq!(stacked.context_window(), direct.context_window());
        let a = stacked.complete(&prompt(1)).unwrap();
        let b = direct.complete(&prompt(1)).unwrap();
        assert_eq!(a.text, b.text);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn layers_wrap_outside_in_and_handles_survive() {
        let zoo = ModelZoo::standard(7);
        let plan = Arc::new(FaultPlan::new(
            "lossy",
            3,
            vec![TierPlan::with_rates(
                "sim-medium",
                FaultRates { rate_limited: 0.4, ..FaultRates::none() },
            )
            .retry_hint(10)],
        ));
        let stack = ModelStack::tier(&zoo, ModelTier::Medium)
            .with_faults(plan)
            .with_retry(
                RetryPolicy::new(3, Backoff::new(10, 100, 1)),
                BreakerConfig { failure_threshold: 100, ..BreakerConfig::default() },
            );
        let faulty = stack.faulty().unwrap().clone();
        let client = stack.resilient().unwrap().clone();
        let clock = stack.clock().clone();
        let model = stack.build();
        let mut ok = 0;
        for n in 0..30 {
            if model.complete(&prompt(n)).is_ok() {
                ok += 1;
            }
            clock.advance(1_000);
        }
        // The retry layer rides through most of the 40% rate limiting…
        assert!(ok >= 25, "ok={ok}");
        // …and the typed handles still reconcile: every executed dollar
        // the injector saw is on the zoo's shared meter.
        assert!(faulty.calls() > 30, "retries must add inner calls: {}", faulty.calls());
        assert!(client.stats().retries > 0);
        let diff = (faulty.executed_cost() - zoo.meter().snapshot().total_dollars()).abs();
        assert!(diff < 1e-9, "executed != metered by {diff}");
    }

    #[test]
    fn shared_clock_is_threaded_through() {
        let zoo = ModelZoo::standard(7);
        let clock = SimClock::new();
        let stack = ModelStack::new(&zoo)
            .on_clock(clock.clone())
            .with_faults(Arc::new(FaultPlan::none()))
            .with_default_retry();
        assert_eq!(stack.faulty().unwrap().clock().now_ms(), clock.now_ms());
        clock.advance(500);
        assert_eq!(stack.clock().now_ms(), 500);
    }

    #[test]
    fn with_layer_grafts_custom_decorators() {
        struct Renamed(Arc<dyn LanguageModel>);
        impl LanguageModel for Renamed {
            fn name(&self) -> &str {
                "renamed"
            }
            fn complete(
                &self,
                req: &CompletionRequest,
            ) -> Result<Completion, crate::error::ModelError> {
                self.0.complete(req)
            }
            fn context_window(&self) -> usize {
                self.0.context_window()
            }
        }
        let zoo = ModelZoo::standard(7);
        let model =
            ModelStack::new(&zoo).with_layer(|inner, _clock| Arc::new(Renamed(inner))).build();
        assert_eq!(model.name(), "renamed");
        assert!(model.complete(&prompt(0)).is_ok());
    }
}
