//! The structured prompt envelope and the [`PromptSolver`] plug-in layer.
//!
//! A simulated LLM must actually *solve* the data-management tasks the rest
//! of the workspace throws at it. Rather than hard-wiring every task into
//! this crate, models carry a registry of solvers; each higher-level crate
//! (QA in `llmdm-cascade`, NL2SQL in `llmdm-nlq`, …) registers a solver for
//! the prompt format its prompt builder emits. A solver parses the prompt
//! payload, computes the correct answer, and estimates how *hard* the
//! instance is; the model then decides — via its calibrated capability
//! curve — whether to answer correctly or to emit a deterministic
//! corruption.
//!
//! ## The envelope format
//!
//! Prompts are plain text with a small machine-readable header block:
//!
//! ```text
//! ### task: hotpot-qa
//! ### examples: 3
//!
//! Context: ...
//! Question: ...
//! ```
//!
//! Header lines start with `### `; the first blank line ends the header.
//! Everything after is the free-text body the solver parses.

use crate::error::ModelError;

/// A parsed prompt: task id, headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromptEnvelope {
    /// The task id from the `### task:` header.
    pub task: String,
    /// All headers except `task`, in order.
    pub headers: Vec<(String, String)>,
    /// The free-text payload following the header block.
    pub body: String,
}

impl PromptEnvelope {
    /// Parse a prompt into an envelope. Returns `None` if there is no
    /// `### task:` header (the prompt is unstructured free text).
    pub fn parse(prompt: &str) -> Option<PromptEnvelope> {
        let mut task = None;
        let mut headers = Vec::new();
        let mut body_start = 0usize;
        let mut offset = 0usize;
        for line in prompt.split_inclusive('\n') {
            let trimmed = line.trim_end_matches('\n').trim_end_matches('\r');
            if let Some(rest) = trimmed.strip_prefix("### ") {
                if let Some((k, v)) = rest.split_once(':') {
                    let k = k.trim().to_string();
                    let v = v.trim().to_string();
                    if k == "task" {
                        task = Some(v);
                    } else {
                        headers.push((k, v));
                    }
                    offset += line.len();
                    body_start = offset;
                    continue;
                }
            }
            if trimmed.is_empty() && task.is_some() {
                // Blank line terminating the header block.
                offset += line.len();
                body_start = offset;
                break;
            }
            // First non-header line: header block over.
            break;
        }
        let task = task?;
        Some(PromptEnvelope { task, headers, body: prompt[body_start..].to_string() })
    }

    /// First value of a header.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// All values of a repeated header.
    pub fn get_all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.headers.iter().filter(move |(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Number of in-context examples this prompt carries.
    ///
    /// Taken from the `examples` header when the prompt builder set one,
    /// otherwise counted as lines beginning with `Example`.
    pub fn examples(&self) -> usize {
        if let Some(v) = self.get("examples") {
            if let Ok(n) = v.parse() {
                return n;
            }
        }
        self.body.lines().filter(|l| l.trim_start().starts_with("Example")).count()
    }

    /// Start building an envelope prompt string for task `task`.
    pub fn builder(task: &str) -> EnvelopeBuilder {
        EnvelopeBuilder { task: task.to_string(), headers: Vec::new(), body: String::new() }
    }
}

/// Builder producing envelope-formatted prompt strings.
#[derive(Debug, Clone)]
pub struct EnvelopeBuilder {
    task: String,
    headers: Vec<(String, String)>,
    body: String,
}

impl EnvelopeBuilder {
    /// Add a header line. Values must not contain newlines.
    pub fn header(mut self, key: &str, value: impl ToString) -> Self {
        let value = value.to_string();
        debug_assert!(!value.contains('\n'), "header values must be single-line");
        self.headers.push((key.to_string(), value));
        self
    }

    /// Set the body text.
    pub fn body(mut self, body: impl Into<String>) -> Self {
        self.body = body.into();
        self
    }

    /// Render the final prompt string.
    pub fn build(self) -> String {
        let mut s = format!("### task: {}\n", self.task);
        for (k, v) in &self.headers {
            s.push_str("### ");
            s.push_str(k);
            s.push_str(": ");
            s.push_str(v);
            s.push('\n');
        }
        s.push('\n');
        s.push_str(&self.body);
        s
    }
}

/// One question's worth of a multi-part (combined) prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct SolvedPart {
    /// The correct answer for this part.
    pub answer: String,
    /// This part's difficulty in `[0, 1]`.
    pub difficulty: f64,
    /// Plausible wrong answers.
    pub alternatives: Vec<String>,
}

/// What a solver produced for one prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct SolvedTask {
    /// The correct answer text.
    pub answer: String,
    /// Estimated instance difficulty in `[0, 1]`.
    pub difficulty: f64,
    /// Plausible wrong answers for the corruption model to pick from.
    /// If empty, the model perturbs `answer` instead.
    pub alternatives: Vec<String>,
    /// For *combined* prompts (§III-B1 query combination) carrying several
    /// questions: one entry per question. When non-empty, the model rolls an
    /// independent success coin per part and joins the per-part outputs with
    /// newlines — a single metered call answering many questions.
    pub parts: Vec<SolvedPart>,
}

impl SolvedTask {
    /// A task solved with the given answer and difficulty, no alternatives.
    pub fn new(answer: impl Into<String>, difficulty: f64) -> Self {
        SolvedTask {
            answer: answer.into(),
            difficulty,
            alternatives: Vec::new(),
            parts: Vec::new(),
        }
    }

    /// Attach plausible wrong answers.
    pub fn with_alternatives(mut self, alts: Vec<String>) -> Self {
        self.alternatives = alts;
        self
    }

    /// A multi-part task (one output line per part).
    pub fn multi(parts: Vec<SolvedPart>) -> Self {
        let answer = parts.iter().map(|p| p.answer.as_str()).collect::<Vec<_>>().join("\n");
        let difficulty = if parts.is_empty() {
            0.0
        } else {
            parts.iter().map(|p| p.difficulty).sum::<f64>() / parts.len() as f64
        };
        SolvedTask { answer, difficulty, alternatives: Vec::new(), parts }
    }
}

/// A task-specific solver plugged into a simulated model.
pub trait PromptSolver: Send + Sync {
    /// The `### task:` id this solver handles.
    fn task_id(&self) -> &str;
    /// Solve the task in `env`.
    fn solve(&self, env: &PromptEnvelope) -> Result<SolvedTask, ModelError>;
}

/// `task: echo` — returns the body verbatim. Difficulty 0. Useful in tests
/// and as a cheap "identity" model call.
#[derive(Debug, Default)]
pub struct EchoSolver;

impl PromptSolver for EchoSolver {
    fn task_id(&self) -> &str {
        "echo"
    }
    fn solve(&self, env: &PromptEnvelope) -> Result<SolvedTask, ModelError> {
        Ok(SolvedTask::new(env.body.trim().to_string(), 0.0))
    }
}

/// `task: oracle` — the harness convention for tasks whose gold answer is
/// produced by the *calling* crate (e.g., an entity-resolution workload
/// that knows its own labels). The prompt carries hidden harness headers:
///
/// * `### gold: <answer>` — the correct answer,
/// * `### difficulty: <0..1>` — instance difficulty,
/// * `### alt: <wrong answer>` — repeatable plausible wrong answers.
///
/// A real API prompt would not carry these; they exist so the simulation's
/// error behaviour is governed by the same calibrated capability curve for
/// every task. This convention is documented in DESIGN.md §2.
#[derive(Debug, Default)]
pub struct OracleSolver;

impl PromptSolver for OracleSolver {
    fn task_id(&self) -> &str {
        "oracle"
    }
    fn solve(&self, env: &PromptEnvelope) -> Result<SolvedTask, ModelError> {
        let gold = env.get("gold").ok_or_else(|| ModelError::MalformedPayload {
            task: "oracle".into(),
            reason: "missing `gold` header".into(),
        })?;
        let difficulty = env
            .get("difficulty")
            .map(|d| d.parse::<f64>())
            .transpose()
            .map_err(|e| ModelError::MalformedPayload {
                task: "oracle".into(),
                reason: format!("bad difficulty: {e}"),
            })?
            .unwrap_or(0.5);
        let alts: Vec<String> = env.get_all("alt").map(str::to_string).collect();
        Ok(SolvedTask::new(gold.to_string(), difficulty).with_alternatives(alts))
    }
}

/// `task: arith` — evaluates `+ - * /` integer expressions with standard
/// precedence. Difficulty grows with operator count. Demonstrates (and
/// tests) genuine solving rather than oracle passthrough.
#[derive(Debug, Default)]
pub struct ArithmeticSolver;

impl PromptSolver for ArithmeticSolver {
    fn task_id(&self) -> &str {
        "arith"
    }
    fn solve(&self, env: &PromptEnvelope) -> Result<SolvedTask, ModelError> {
        let expr = env.body.trim();
        let (value, ops) = eval_arith(expr).ok_or_else(|| ModelError::MalformedPayload {
            task: "arith".into(),
            reason: format!("cannot parse {expr:?}"),
        })?;
        let difficulty = (ops as f64 / 8.0).min(1.0);
        let alts = vec![(value + 1).to_string(), (value - 1).to_string(), (value * 2).to_string()];
        Ok(SolvedTask::new(value.to_string(), difficulty).with_alternatives(alts))
    }
}

/// Evaluate an integer arithmetic expression; returns (value, op-count).
fn eval_arith(s: &str) -> Option<(i64, usize)> {
    struct P<'a> {
        toks: Vec<&'a str>,
        i: usize,
        ops: usize,
    }
    impl<'a> P<'a> {
        fn peek(&self) -> Option<&'a str> {
            self.toks.get(self.i).copied()
        }
        fn next(&mut self) -> Option<&'a str> {
            let t = self.peek()?;
            self.i += 1;
            Some(t)
        }
        fn atom(&mut self) -> Option<i64> {
            match self.next()? {
                "(" => {
                    let v = self.expr()?;
                    if self.next()? != ")" {
                        return None;
                    }
                    Some(v)
                }
                "-" => Some(-self.atom()?),
                t => t.parse().ok(),
            }
        }
        fn term(&mut self) -> Option<i64> {
            let mut v = self.atom()?;
            while let Some(op @ ("*" | "/")) = self.peek() {
                self.i += 1;
                self.ops += 1;
                let rhs = self.atom()?;
                v = if op == "*" { v.checked_mul(rhs)? } else { v.checked_div(rhs)? };
            }
            Some(v)
        }
        fn expr(&mut self) -> Option<i64> {
            let mut v = self.term()?;
            while let Some(op @ ("+" | "-")) = self.peek() {
                self.i += 1;
                self.ops += 1;
                let rhs = self.term()?;
                v = if op == "+" { v.checked_add(rhs)? } else { v.checked_sub(rhs)? };
            }
            Some(v)
        }
    }
    // Tokenize: numbers, operators, parentheses.
    let mut parts: Vec<&str> = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            parts.push(&s[start..i]);
        } else if "+-*/()".contains(c) {
            parts.push(&s[i..i + 1]);
            i += 1;
        } else {
            return None;
        }
    }
    if parts.is_empty() {
        return None;
    }
    let mut p = P { toks: parts, i: 0, ops: 0 };
    let v = p.expr()?;
    if p.i != p.toks.len() {
        return None;
    }
    Some((v, p.ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let prompt = PromptEnvelope::builder("qa")
            .header("examples", 3)
            .header("alt", "Lyon")
            .header("alt", "Nice")
            .body("Question: capital of France?")
            .build();
        let env = PromptEnvelope::parse(&prompt).unwrap();
        assert_eq!(env.task, "qa");
        assert_eq!(env.examples(), 3);
        assert_eq!(env.get_all("alt").collect::<Vec<_>>(), vec!["Lyon", "Nice"]);
        assert_eq!(env.body, "Question: capital of France?");
    }

    #[test]
    fn unstructured_prompt_is_none() {
        assert!(PromptEnvelope::parse("just some text").is_none());
        assert!(PromptEnvelope::parse("").is_none());
    }

    #[test]
    fn examples_counted_from_body_when_unset() {
        let prompt = PromptEnvelope::builder("t")
            .body("Example: a -> 1\nExample: b -> 2\nNow: c -> ?")
            .build();
        let env = PromptEnvelope::parse(&prompt).unwrap();
        assert_eq!(env.examples(), 2);
    }

    #[test]
    fn echo_solver() {
        let prompt = PromptEnvelope::builder("echo").body("  hello  ").build();
        let env = PromptEnvelope::parse(&prompt).unwrap();
        let solved = EchoSolver.solve(&env).unwrap();
        assert_eq!(solved.answer, "hello");
        assert_eq!(solved.difficulty, 0.0);
    }

    #[test]
    fn oracle_solver_reads_headers() {
        let prompt = PromptEnvelope::builder("oracle")
            .header("gold", "42")
            .header("difficulty", "0.7")
            .header("alt", "41")
            .body("what is the answer?")
            .build();
        let env = PromptEnvelope::parse(&prompt).unwrap();
        let solved = OracleSolver.solve(&env).unwrap();
        assert_eq!(solved.answer, "42");
        assert!((solved.difficulty - 0.7).abs() < 1e-12);
        assert_eq!(solved.alternatives, vec!["41".to_string()]);
    }

    #[test]
    fn oracle_solver_requires_gold() {
        let prompt = PromptEnvelope::builder("oracle").body("?").build();
        let env = PromptEnvelope::parse(&prompt).unwrap();
        assert!(OracleSolver.solve(&env).is_err());
    }

    #[test]
    fn arithmetic_precedence() {
        for (expr, want) in [("1 + 2 * 3", 7), ("(1 + 2) * 3", 9), ("10 / 2 - 3", 2), ("-4 + 10", 6)]
        {
            let prompt = PromptEnvelope::builder("arith").body(expr).build();
            let env = PromptEnvelope::parse(&prompt).unwrap();
            let solved = ArithmeticSolver.solve(&env).unwrap();
            assert_eq!(solved.answer, want.to_string(), "expr={expr}");
        }
    }

    #[test]
    fn arithmetic_difficulty_grows_with_ops() {
        let env1 =
            PromptEnvelope::parse(&PromptEnvelope::builder("arith").body("1 + 1").build()).unwrap();
        let env2 = PromptEnvelope::parse(
            &PromptEnvelope::builder("arith").body("1 + 1 * 2 - 3 / 1 + 5").build(),
        )
        .unwrap();
        let d1 = ArithmeticSolver.solve(&env1).unwrap().difficulty;
        let d2 = ArithmeticSolver.solve(&env2).unwrap().difficulty;
        assert!(d2 > d1);
    }

    #[test]
    fn arithmetic_rejects_garbage() {
        for bad in ["", "1 +", "a + b", "(1"] {
            let env =
                PromptEnvelope::parse(&PromptEnvelope::builder("arith").body(bad).build()).unwrap();
            assert!(ArithmeticSolver.solve(&env).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn header_block_stops_at_first_nonheader() {
        let prompt = "### task: t\nbody line\n### not: header\n";
        let env = PromptEnvelope::parse(prompt).unwrap();
        assert!(env.body.starts_with("body line"));
        assert!(env.get("not").is_none());
    }
}
