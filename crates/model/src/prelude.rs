//! The model-substrate prelude: the ~10 types every downstream crate
//! imports, re-exported in one place.
//!
//! ```
//! use llmdm_model::prelude::*;
//!
//! let zoo = ModelZoo::standard(42);
//! let req = CompletionRequest::new("### task: echo\nhi");
//! assert!(zoo.small().complete(&req).is_ok());
//! ```
//!
//! Downstream `use` blocks that previously enumerated half this module
//! one type at a time (`use llmdm_model::{Completion, CompletionRequest,
//! LanguageModel, ModelError, …}`) now import the prelude; anything
//! rarer (solvers, pricing internals, hash helpers) stays an explicit
//! path so greps keep working.

pub use crate::error::{ModelError, TransientKind};
pub use crate::faulty::FaultyModel;
pub use crate::resilient::ResilientClient;
pub use crate::sim::{Completion, CompletionRequest, LanguageModel, SimLlm};
pub use crate::stack::ModelStack;
pub use crate::usage::{TokenUsage, UsageMeter, UsageSnapshot};
pub use crate::zoo::{ModelTier, ModelZoo};
