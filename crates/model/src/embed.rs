//! Deterministic text embeddings.
//!
//! The paper's challenge sections lean on embedding vectors everywhere:
//! historical prompts are "typically represented as vectors" (§III-A), the
//! semantic cache matches queries "in the form of vectors" (§III-C), and
//! multi-modal items are "encoded in the same embedding space" (§II-D1).
//! Real deployments would use an LLM encoder; offline we use a classic
//! hashed character-n-gram bag projected through a seeded signed random
//! projection. This preserves the property the downstream systems rely on:
//! **textually similar inputs land near each other in cosine space**, while
//! remaining fully deterministic.

use crate::error::ModelError;
use crate::hash::{combine, fnv1a_str, splitmix, unit_f64};

/// Deterministic text embedder.
#[derive(Debug, Clone)]
pub struct Embedder {
    dim: usize,
    seed: u64,
    ngram: usize,
}

impl Embedder {
    /// Create an embedder producing `dim`-dimensional unit vectors.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Embedder { dim, seed, ngram: 3 }
    }

    /// Default 64-dimensional embedder, sufficient for the workspace's
    /// similarity tasks while keeping index benchmarks fast.
    pub fn standard(seed: u64) -> Self {
        Self::new(64, seed)
    }

    /// The output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embed `text` into an L2-normalized vector.
    ///
    /// Features are hashed character trigrams plus whole lowercased words;
    /// each feature contributes a ±1 pattern over the output dims derived
    /// from a per-feature seed (a signed random projection).
    pub fn embed(&self, text: &str) -> Result<Vec<f32>, ModelError> {
        if text.is_empty() {
            return Err(ModelError::EmptyInput);
        }
        let lower = text.to_lowercase();
        let mut v = vec![0f32; self.dim];
        // Word-level features (weight 2: words matter more than trigrams).
        for word in lower.split(|c: char| !c.is_alphanumeric()).filter(|w| !w.is_empty()) {
            self.add_feature(&mut v, fnv1a_str(word), 2.0);
        }
        // Character n-gram features for robustness to small edits.
        let chars: Vec<char> = lower.chars().collect();
        if chars.len() >= self.ngram {
            for w in chars.windows(self.ngram) {
                let s: String = w.iter().collect();
                self.add_feature(&mut v, combine(fnv1a_str(&s), 0x6772616d), 1.0);
            }
        } else {
            self.add_feature(&mut v, combine(fnv1a_str(&lower), 0x6772616d), 1.0);
        }
        normalize(&mut v);
        Ok(v)
    }

    /// Embed a batch of texts.
    pub fn embed_batch<'a, I: IntoIterator<Item = &'a str>>(
        &self,
        texts: I,
    ) -> Result<Vec<Vec<f32>>, ModelError> {
        texts.into_iter().map(|t| self.embed(t)).collect()
    }

    fn add_feature(&self, v: &mut [f32], feature: u64, weight: f32) {
        let mut s = combine(self.seed, feature);
        for slot in v.iter_mut() {
            s = splitmix(s);
            let sign = if s & 1 == 0 { 1.0 } else { -1.0 };
            // Sparse-ish projection: only ~1/4 of dims receive each feature.
            if unit_f64(s) < 0.25 {
                *slot += sign * weight;
            }
        }
    }
}

fn normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    } else {
        // Degenerate case (all features cancelled): deterministic unit basis.
        v[0] = 1.0;
    }
}

/// Cosine similarity between two equal-length vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb() -> Embedder {
        Embedder::standard(42)
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let e = emb();
        let v = e.embed("show the names of stadiums").unwrap();
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn deterministic() {
        let e = emb();
        assert_eq!(e.embed("hello").unwrap(), e.embed("hello").unwrap());
    }

    #[test]
    fn similar_texts_are_closer_than_dissimilar() {
        let e = emb();
        let a = e.embed("What are the names of stadiums that had concerts in 2014?").unwrap();
        let b = e.embed("What are the names of stadiums that had concerts in 2015?").unwrap();
        let c = e.embed("median house price per zip code region").unwrap();
        assert!(cosine(&a, &b) > cosine(&a, &c) + 0.2, "{} vs {}", cosine(&a, &b), cosine(&a, &c));
    }

    #[test]
    fn case_insensitive() {
        let e = emb();
        assert_eq!(e.embed("Stadium Names").unwrap(), e.embed("stadium names").unwrap());
    }

    #[test]
    fn empty_input_errors() {
        assert_eq!(emb().embed(""), Err(ModelError::EmptyInput));
    }

    #[test]
    fn different_seeds_different_spaces() {
        let a = Embedder::standard(1).embed("stadium").unwrap();
        let b = Embedder::standard(2).embed("stadium").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn batch_matches_single() {
        let e = emb();
        let batch = e.embed_batch(["a cat", "a dog"]).unwrap();
        assert_eq!(batch[0], e.embed("a cat").unwrap());
        assert_eq!(batch[1], e.embed("a dog").unwrap());
    }

    #[test]
    fn short_text_embeds() {
        let e = emb();
        assert!(e.embed("ab").is_ok());
    }

    #[test]
    fn cosine_identity() {
        let e = emb();
        let v = e.embed("identical").unwrap();
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-5);
    }
}
