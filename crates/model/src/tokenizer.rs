//! Deterministic subword tokenizer used for token/cost accounting.
//!
//! Commercial LLM prices are quoted per 1k tokens, so every cost number in
//! the paper's Tables I–III is token arithmetic. We reproduce that
//! arithmetic with a deterministic tokenizer: text is split into word,
//! number, whitespace, and punctuation pieces, and long word pieces are
//! further split into subwords of at most [`Tokenizer::MAX_PIECE`] bytes —
//! a close analogue of BPE's behaviour that long/rare words cost more
//! tokens than short/common ones. Tokenization is lossless:
//! `decode(encode(s)) == s`.

/// A single token: its surface text and a stable 64-bit id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The exact substring of the input this token covers.
    pub text: String,
    /// Stable content hash of `text` (FNV-1a).
    pub id: u64,
}

/// Kinds of lexical pieces recognized by the pre-split pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PieceKind {
    Word,
    Number,
    Space,
    Punct,
}

/// Deterministic subword tokenizer.
///
/// The tokenizer is stateless and cheap to clone; a single shared instance
/// is embedded in every simulated model so that all crates agree on token
/// counts.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer;

impl Tokenizer {
    /// Maximum bytes per subword piece (mirrors typical BPE piece lengths).
    pub const MAX_PIECE: usize = 4;

    /// Create a tokenizer.
    pub fn new() -> Self {
        Tokenizer
    }

    /// Encode `text` into tokens. Lossless: concatenating the token texts
    /// reproduces `text` exactly.
    pub fn encode(&self, text: &str) -> Vec<Token> {
        let mut out = Vec::with_capacity(text.len() / 3 + 1);
        for (piece, kind) in presplit(text) {
            match kind {
                PieceKind::Word | PieceKind::Number => {
                    for sub in split_subwords(piece) {
                        out.push(Token { text: sub.to_string(), id: crate::hash::fnv1a_str(sub) });
                    }
                }
                PieceKind::Space | PieceKind::Punct => {
                    out.push(Token { text: piece.to_string(), id: crate::hash::fnv1a_str(piece) });
                }
            }
        }
        out
    }

    /// Number of tokens `text` encodes to, without allocating token structs.
    pub fn count(&self, text: &str) -> usize {
        let mut n = 0;
        for (piece, kind) in presplit(text) {
            match kind {
                PieceKind::Word | PieceKind::Number => n += split_subwords(piece).count(),
                PieceKind::Space | PieceKind::Punct => n += 1,
            }
        }
        n
    }

    /// Decode tokens back into the original text.
    pub fn decode(&self, tokens: &[Token]) -> String {
        let mut s = String::with_capacity(tokens.iter().map(|t| t.text.len()).sum());
        for t in tokens {
            s.push_str(&t.text);
        }
        s
    }
}

/// Split text into maximal runs of a single [`PieceKind`].
fn presplit(text: &str) -> impl Iterator<Item = (&str, PieceKind)> {
    let mut rest = text;
    std::iter::from_fn(move || {
        let mut chars = rest.char_indices();
        let (_, first) = chars.next()?;
        let kind = classify(first);
        let mut end = rest.len();
        for (i, c) in chars {
            if classify(c) != kind || kind == PieceKind::Punct {
                end = i;
                break;
            }
        }
        // Punctuation is emitted one char at a time (matches BPE behaviour
        // where each punctuation mark is usually its own token).
        if kind == PieceKind::Punct {
            end = first.len_utf8();
        }
        let (piece, tail) = rest.split_at(end);
        rest = tail;
        Some((piece, kind))
    })
}

fn classify(c: char) -> PieceKind {
    if c.is_whitespace() {
        PieceKind::Space
    } else if c.is_ascii_digit() {
        PieceKind::Number
    } else if c.is_alphanumeric() || c == '_' {
        PieceKind::Word
    } else {
        PieceKind::Punct
    }
}

/// Split a word/number run into subword pieces of at most `MAX_PIECE` bytes,
/// respecting char boundaries.
fn split_subwords(piece: &str) -> impl Iterator<Item = &str> {
    let mut rest = piece;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        let mut end = rest.len().min(Tokenizer::MAX_PIECE);
        while !rest.is_char_boundary(end) {
            end += 1;
        }
        let (head, tail) = rest.split_at(end);
        rest = tail;
        Some(head)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok() -> Tokenizer {
        Tokenizer::new()
    }

    #[test]
    fn roundtrip_simple() {
        let t = tok();
        let s = "SELECT name FROM stadium WHERE capacity > 1000;";
        assert_eq!(t.decode(&t.encode(s)), s);
    }

    #[test]
    fn count_matches_encode_len() {
        let t = tok();
        for s in ["", "a", "hello world", "a_long_identifier_name42", "  \t\nmixed  ws"] {
            assert_eq!(t.count(s), t.encode(s).len(), "for {s:?}");
        }
    }

    #[test]
    fn long_words_cost_more_tokens() {
        let t = tok();
        assert_eq!(t.count("abcd"), 1);
        assert_eq!(t.count("abcde"), 2);
        assert_eq!(t.count("internationalization"), 5);
    }

    #[test]
    fn punctuation_is_per_char() {
        let t = tok();
        assert_eq!(t.count("!!"), 2);
        assert_eq!(t.count("a,b"), 3);
    }

    #[test]
    fn whitespace_runs_are_one_token() {
        let t = tok();
        assert_eq!(t.count("a    b"), 3);
    }

    #[test]
    fn unicode_roundtrip() {
        let t = tok();
        let s = "médecin 北京 institute — ok";
        assert_eq!(t.decode(&t.encode(s)), s);
    }

    #[test]
    fn ids_are_stable() {
        let t = tok();
        let a = t.encode("stadium");
        let b = t.encode("stadium");
        assert_eq!(a[0].id, b[0].id);
    }

    #[test]
    fn empty_input() {
        let t = tok();
        assert!(t.encode("").is_empty());
        assert_eq!(t.count(""), 0);
    }
}
