//! Stable, seed-friendly hashing.
//!
//! Every stochastic component in the workspace derives its randomness from
//! explicit seeds so that experiments are reproducible bit-for-bit across
//! runs and platforms. `std::collections::hash_map::DefaultHasher` is not
//! guaranteed stable across Rust releases, so we implement FNV-1a and a
//! small split-mix finalizer ourselves.

/// FNV-1a 64-bit hash of a byte slice.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a of a string.
#[inline]
pub fn fnv1a_str(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

/// SplitMix64 finalizer — decorrelates sequential seeds.
#[inline]
pub fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Combine two hash values into one (order-sensitive).
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    splitmix(a ^ b.rotate_left(17).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Derive a deterministic sub-seed from a base seed and a label.
///
/// This is how components split one experiment seed into independent
/// streams: `seed_for(seed, "cascade-noise")`, `seed_for(seed, "workload")`.
#[inline]
pub fn seed_for(seed: u64, label: &str) -> u64 {
    combine(splitmix(seed), fnv1a_str(label))
}

/// Map a hash to a uniform f64 in `[0, 1)`.
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    // Use the top 53 bits for a uniformly distributed mantissa.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // FNV-1a test vectors from the reference implementation.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn unit_f64_in_range() {
        for i in 0..10_000u64 {
            let u = unit_f64(splitmix(i));
            assert!((0.0..1.0).contains(&u), "u={u}");
        }
    }

    #[test]
    fn seed_for_distinct_labels_differ() {
        assert_ne!(seed_for(7, "a"), seed_for(7, "b"));
        assert_ne!(seed_for(7, "a"), seed_for(8, "a"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn unit_f64_is_roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| unit_f64(splitmix(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
