//! # llmdm-model — simulated LLM substrate
//!
//! The paper ("Applications and Challenges for Large Language Models: From
//! Data Management Perspective", ICDE 2024) builds its preliminary
//! experiments on commercial LLM APIs (babbage-002, gpt-3.5-turbo, gpt-4).
//! This crate provides a **deterministic, fully offline substitute**: a
//! simulated model zoo whose members
//!
//! 1. actually *solve* the data-management tasks used throughout the
//!    workspace (multi-hop QA, NL2SQL, label imputation, …) via pluggable
//!    [`solver::PromptSolver`]s that parse the same structured prompts the
//!    higher-level crates emit,
//! 2. make tier-dependent mistakes through a calibrated
//!    [`capability::CapabilityCurve`] (bigger models are more accurate,
//!    harder inputs fail more often, few-shot examples help), and
//! 3. meter every call in tokens and dollars through [`usage::UsageMeter`]
//!    using the paper's quoted prices ($0.001/1k input tokens for the
//!    mid tier, $0.03/1k for the large tier).
//!
//! Those three properties are exactly what the paper's cascade,
//! decomposition/combination, and caching experiments exercise, so the
//! *shape* of its Tables I–III is reproduced by the same mechanisms the
//! paper credits — without network access or GPU hardware.
//!
//! The crate also hosts the deterministic text [`embed::Embedder`] (hashed
//! character n-grams + signed random projection) shared by the vector
//! database, the semantic cache, the prompt store, and the data lake.
//!
//! ## Quick example
//!
//! ```
//! use llmdm_model::{ModelZoo, CompletionRequest, LanguageModel};
//!
//! let zoo = ModelZoo::standard(42);
//! let req = CompletionRequest::new("### task: echo\nhello data management");
//! let out = zoo.large().complete(&req).unwrap();
//! assert!(out.text.contains("hello data management"));
//! assert!(out.usage.input_tokens > 0);
//! ```

#![warn(missing_docs)]

pub mod capability;
pub mod embed;
pub mod error;
pub mod faulty;
pub mod hash;
pub mod jsonio;
pub mod latency;
pub mod prelude;
pub mod pricing;
pub mod resilient;
pub mod sim;
pub mod stack;
pub mod solver;
pub mod tokenizer;
pub mod usage;
pub mod zoo;

pub use capability::CapabilityCurve;
pub use embed::Embedder;
pub use error::{ModelError, TransientKind};
pub use faulty::FaultyModel;
pub use resilient::{ClientStats, ResilientClient};
pub use latency::LatencyModel;
pub use pricing::{PriceTable, Pricing};
pub use sim::{Completion, CompletionRequest, CompletionRequestBuilder, LanguageModel, SimLlm};
pub use stack::ModelStack;
pub use solver::{PromptEnvelope, PromptSolver, SolvedPart, SolvedTask};
pub use tokenizer::Tokenizer;
pub use usage::{TokenUsage, UsageMeter, UsageSnapshot};
pub use zoo::{ModelTier, ModelZoo};
