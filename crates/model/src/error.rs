//! Error type for the model substrate, with a retryability
//! classification for the resilience layer (`llmdm-resil`).
//!
//! Real LLM endpoints fail in two structurally different ways:
//!
//! * **Permanent** failures — the request itself is wrong (unsupported
//!   prompt shape, context overflow, empty input). Retrying the same
//!   request can never succeed; callers must change the request.
//! * **Transient** failures — the *call* failed (rate limiting,
//!   timeouts, momentary unavailability) or the stochastic decode
//!   produced garbage (malformed payload). Retrying — possibly after a
//!   provider-suggested delay — is sensible and is exactly what
//!   [`crate::resilient::ResilientClient`] does.
//!
//! [`ModelError::is_retryable`] encodes that classification for every
//! variant; the deterministic fault injector
//! ([`crate::faulty::FaultyModel`]) produces the transient family.

use std::fmt;

/// The transient-failure taxonomy (mirrors the fault kinds injectable by
/// `llmdm-resil`'s `FaultPlan`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransientKind {
    /// The provider rejected the call before executing it (HTTP 429).
    /// Nothing was billed.
    RateLimited,
    /// The call exceeded its wall-clock budget. The provider may have
    /// executed (and billed) the request anyway.
    Timeout,
    /// Momentary provider-side unavailability (5xx, connection reset,
    /// outage window). Nothing was billed.
    Unavailable,
}

impl TransientKind {
    /// Stable lowercase label (used in JSON and metric names).
    pub fn label(self) -> &'static str {
        match self {
            TransientKind::RateLimited => "rate_limited",
            TransientKind::Timeout => "timeout",
            TransientKind::Unavailable => "unavailable",
        }
    }

    /// Parse a [`Self::label`] back.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "rate_limited" => Some(TransientKind::RateLimited),
            "timeout" => Some(TransientKind::Timeout),
            "unavailable" => Some(TransientKind::Unavailable),
            _ => None,
        }
    }
}

impl fmt::Display for TransientKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Errors produced by the simulated model stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The prompt did not contain a well-formed task envelope and no solver
    /// accepted it.
    UnsupportedPrompt(String),
    /// The prompt exceeded the model's context window (in tokens).
    ContextOverflow {
        /// Tokens in the offending prompt.
        tokens: usize,
        /// The model's context window.
        limit: usize,
    },
    /// A solver accepted the prompt but failed to extract its payload, or
    /// the (possibly fault-injected) response payload was corrupted.
    MalformedPayload {
        /// The task id of the solver that failed.
        task: String,
        /// Human-readable reason.
        reason: String,
    },
    /// An embedding request had an empty input.
    EmptyInput,
    /// A transient call failure: the request was fine, the *call* failed.
    /// `retry_after_ms` is the provider's suggested minimum delay before
    /// retrying (0 = no hint).
    Transient {
        /// What kind of transient failure this was.
        kind: TransientKind,
        /// Provider-suggested retry delay in milliseconds (0 = none).
        retry_after_ms: u64,
    },
}

impl ModelError {
    /// Shorthand constructor for a transient error.
    pub fn transient(kind: TransientKind, retry_after_ms: u64) -> Self {
        ModelError::Transient { kind, retry_after_ms }
    }

    /// Whether retrying the *same* request can plausibly succeed.
    ///
    /// * [`ModelError::Transient`] — yes: the failure was in the call,
    ///   not the request.
    /// * [`ModelError::MalformedPayload`] — yes: LLM decoding is
    ///   stochastic in production (and the fault injector's corruption
    ///   stream advances per attempt), so a resample can come back clean.
    ///   Retries are bounded by the policy cap, so a *deterministically*
    ///   malformed payload costs at most `max_retries` extra calls.
    /// * [`ModelError::UnsupportedPrompt`], [`ModelError::ContextOverflow`],
    ///   [`ModelError::EmptyInput`] — no: the request itself is invalid
    ///   and will fail identically every time.
    pub fn is_retryable(&self) -> bool {
        match self {
            ModelError::Transient { .. } => true,
            ModelError::MalformedPayload { .. } => true,
            ModelError::UnsupportedPrompt(_)
            | ModelError::ContextOverflow { .. }
            | ModelError::EmptyInput => false,
        }
    }

    /// The provider's suggested retry delay, if this error carries one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ModelError::Transient { retry_after_ms, .. } if *retry_after_ms > 0 => {
                Some(*retry_after_ms)
            }
            _ => None,
        }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnsupportedPrompt(head) => {
                write!(f, "no solver accepted prompt starting with {head:?}")
            }
            ModelError::ContextOverflow { tokens, limit } => {
                write!(f, "prompt of {tokens} tokens exceeds context window of {limit}")
            }
            ModelError::MalformedPayload { task, reason } => {
                write!(f, "solver for task {task:?} rejected payload: {reason}")
            }
            ModelError::EmptyInput => write!(f, "empty input"),
            ModelError::Transient { kind, retry_after_ms } => {
                write!(f, "transient failure ({kind})")?;
                if *retry_after_ms > 0 {
                    write!(f, ", retry after {retry_after_ms}ms")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_task() {
        let e = ModelError::MalformedPayload {
            task: "qa".into(),
            reason: "missing question".into(),
        };
        let s = e.to_string();
        assert!(s.contains("qa"));
        assert!(s.contains("missing question"));
    }

    #[test]
    fn display_context_overflow() {
        let e = ModelError::ContextOverflow { tokens: 9000, limit: 8192 };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("8192"));
    }

    #[test]
    fn display_transient_kinds() {
        let e = ModelError::transient(TransientKind::RateLimited, 250);
        let s = e.to_string();
        assert!(s.contains("rate_limited"), "{s}");
        assert!(s.contains("250ms"), "{s}");
        let t = ModelError::transient(TransientKind::Timeout, 0).to_string();
        assert!(t.contains("timeout"), "{t}");
        assert!(!t.contains("retry after"), "no hint should mean no suffix: {t}");
        let u = ModelError::transient(TransientKind::Unavailable, 1).to_string();
        assert!(u.contains("unavailable"), "{u}");
    }

    #[test]
    fn retryability_classification_covers_every_variant() {
        // Permanent: the request is wrong.
        assert!(!ModelError::UnsupportedPrompt("x".into()).is_retryable());
        assert!(!ModelError::ContextOverflow { tokens: 10, limit: 5 }.is_retryable());
        assert!(!ModelError::EmptyInput.is_retryable());
        // Retryable: the call (or the stochastic decode) failed.
        assert!(ModelError::MalformedPayload { task: "qa".into(), reason: "bad".into() }
            .is_retryable());
        for kind in [TransientKind::RateLimited, TransientKind::Timeout, TransientKind::Unavailable]
        {
            assert!(ModelError::transient(kind, 0).is_retryable(), "{kind} must be retryable");
        }
    }

    #[test]
    fn retry_after_hint_only_when_positive() {
        assert_eq!(
            ModelError::transient(TransientKind::RateLimited, 300).retry_after_ms(),
            Some(300)
        );
        assert_eq!(ModelError::transient(TransientKind::Timeout, 0).retry_after_ms(), None);
        assert_eq!(ModelError::EmptyInput.retry_after_ms(), None);
    }

    #[test]
    fn transient_kind_labels_roundtrip() {
        for kind in [TransientKind::RateLimited, TransientKind::Timeout, TransientKind::Unavailable]
        {
            assert_eq!(TransientKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(TransientKind::from_label("bogus"), None);
    }
}
