//! Error type for the model substrate.

use std::fmt;

/// Errors produced by the simulated model stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The prompt did not contain a well-formed task envelope and no solver
    /// accepted it.
    UnsupportedPrompt(String),
    /// The prompt exceeded the model's context window (in tokens).
    ContextOverflow {
        /// Tokens in the offending prompt.
        tokens: usize,
        /// The model's context window.
        limit: usize,
    },
    /// A solver accepted the prompt but failed to extract its payload.
    MalformedPayload {
        /// The task id of the solver that failed.
        task: String,
        /// Human-readable reason.
        reason: String,
    },
    /// An embedding request had an empty input.
    EmptyInput,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnsupportedPrompt(head) => {
                write!(f, "no solver accepted prompt starting with {head:?}")
            }
            ModelError::ContextOverflow { tokens, limit } => {
                write!(f, "prompt of {tokens} tokens exceeds context window of {limit}")
            }
            ModelError::MalformedPayload { task, reason } => {
                write!(f, "solver for task {task:?} rejected payload: {reason}")
            }
            ModelError::EmptyInput => write!(f, "empty input"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_task() {
        let e = ModelError::MalformedPayload {
            task: "qa".into(),
            reason: "missing question".into(),
        };
        let s = e.to_string();
        assert!(s.contains("qa"));
        assert!(s.contains("missing question"));
    }

    #[test]
    fn display_context_overflow() {
        let e = ModelError::ContextOverflow { tokens: 9000, limit: 8192 };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("8192"));
    }
}
