//! Token and dollar accounting across model calls.
//!
//! All of the paper's preliminary experiments report an "API Cost" row;
//! [`UsageMeter`] is the single source of truth for those numbers. It is
//! shared (via `Arc`) between every simulated model in a zoo so that an
//! experiment reads one total regardless of how many tiers it touched.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::pricing::PriceTable;

/// Token counts for a single call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenUsage {
    /// Prompt tokens consumed.
    pub input_tokens: usize,
    /// Completion tokens produced.
    pub output_tokens: usize,
}

impl TokenUsage {
    /// Total tokens moved in the call.
    pub fn total(&self) -> usize {
        self.input_tokens + self.output_tokens
    }
}

/// Aggregated per-model counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelUsage {
    /// Number of completed calls.
    pub calls: u64,
    /// Sum of prompt tokens.
    pub input_tokens: u64,
    /// Sum of completion tokens.
    pub output_tokens: u64,
    /// Accumulated dollar cost.
    pub dollars: f64,
}

/// A point-in-time copy of the meter's state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UsageSnapshot {
    per_model: Vec<(String, ModelUsage)>,
}

impl UsageSnapshot {
    /// Rebuild a snapshot from `(model, usage)` entries (JSON decoding).
    pub(crate) fn from_entries(per_model: Vec<(String, ModelUsage)>) -> Self {
        UsageSnapshot { per_model }
    }

    /// Total dollars across all models.
    pub fn total_dollars(&self) -> f64 {
        self.per_model.iter().map(|(_, u)| u.dollars).sum()
    }

    /// Total calls across all models.
    pub fn total_calls(&self) -> u64 {
        self.per_model.iter().map(|(_, u)| u.calls).sum()
    }

    /// Total tokens (input + output) across all models.
    pub fn total_tokens(&self) -> u64 {
        self.per_model.iter().map(|(_, u)| u.input_tokens + u.output_tokens).sum()
    }

    /// Usage for one model, if it was ever called.
    pub fn model(&self, name: &str) -> Option<&ModelUsage> {
        self.per_model.iter().find(|(m, _)| m == name).map(|(_, u)| u)
    }

    /// Iterate `(model, usage)` pairs in first-call order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ModelUsage)> {
        self.per_model.iter().map(|(m, u)| (m.as_str(), u))
    }

    /// Dollar delta relative to an earlier snapshot (self - earlier).
    pub fn dollars_since(&self, earlier: &UsageSnapshot) -> f64 {
        self.total_dollars() - earlier.total_dollars()
    }
}

/// Thread-safe usage meter shared by a model zoo.
#[derive(Debug, Clone)]
pub struct UsageMeter {
    inner: Arc<Mutex<UsageSnapshot>>,
    prices: Arc<PriceTable>,
}

impl UsageMeter {
    /// Create a meter pricing calls via `prices`.
    pub fn new(prices: PriceTable) -> Self {
        UsageMeter { inner: Arc::new(Mutex::new(UsageSnapshot::default())), prices: Arc::new(prices) }
    }

    /// Lock the counters, recovering from poison: a panicking recorder
    /// leaves the snapshot merely stale, never structurally broken, so
    /// billing totals stay readable (matches the old parking_lot
    /// semantics of never poisoning).
    fn lock(&self) -> MutexGuard<'_, UsageSnapshot> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a call. Unknown models are billed at $0 (still counted).
    ///
    /// The meter stays the dollar **source of truth**; it additionally
    /// mirrors every record into the `llmdm-obs` counters
    /// (`model.calls`, `model.tokens`, `model.cost_usd`) so traces and
    /// the Table I–III cost rows can never disagree (asserted by
    /// `crates/cascade/tests/obs_reconcile.rs`).
    pub fn record(&self, model: &str, usage: TokenUsage) -> f64 {
        let cost = self
            .prices
            .get(model)
            .map(|p| p.cost(usage.input_tokens, usage.output_tokens))
            .unwrap_or(0.0);
        if llmdm_obs::is_enabled() {
            llmdm_obs::counter_add("model.calls", 1.0);
            llmdm_obs::counter_add("model.tokens", usage.total() as f64);
            llmdm_obs::counter_add("model.tokens_in", usage.input_tokens as f64);
            llmdm_obs::counter_add("model.tokens_out", usage.output_tokens as f64);
            llmdm_obs::counter_add("model.cost_usd", cost);
            llmdm_obs::counter_add(&format!("model.calls.{model}"), 1.0);
            llmdm_obs::counter_add(&format!("model.cost_usd.{model}"), cost);
            llmdm_obs::observe("model.tokens_per_call", usage.total() as f64);
        }
        let mut snap = self.lock();
        let slot = match snap.per_model.iter_mut().find(|(m, _)| m == model) {
            Some((_, u)) => u,
            None => {
                snap.per_model.push((model.to_string(), ModelUsage::default()));
                &mut snap.per_model.last_mut().expect("just pushed").1
            }
        };
        slot.calls += 1;
        slot.input_tokens += usage.input_tokens as u64;
        slot.output_tokens += usage.output_tokens as u64;
        slot.dollars += cost;
        cost
    }

    /// Copy the current totals.
    pub fn snapshot(&self) -> UsageSnapshot {
        self.lock().clone()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        *self.lock() = UsageSnapshot::default();
    }

    /// The price table this meter bills with.
    pub fn prices(&self) -> &PriceTable {
        &self.prices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::Pricing;

    fn meter() -> UsageMeter {
        let mut t = PriceTable::new();
        t.set("m", Pricing::new(1.0, 2.0)); // $1/1k in, $2/1k out
        UsageMeter::new(t)
    }

    #[test]
    fn record_accumulates() {
        let m = meter();
        let c1 = m.record("m", TokenUsage { input_tokens: 1000, output_tokens: 0 });
        assert!((c1 - 1.0).abs() < 1e-12);
        m.record("m", TokenUsage { input_tokens: 0, output_tokens: 500 });
        let s = m.snapshot();
        assert_eq!(s.total_calls(), 2);
        assert_eq!(s.total_tokens(), 1500);
        assert!((s.total_dollars() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_model_is_free_but_counted() {
        let m = meter();
        let c = m.record("mystery", TokenUsage { input_tokens: 100, output_tokens: 100 });
        assert_eq!(c, 0.0);
        assert_eq!(m.snapshot().total_calls(), 1);
    }

    #[test]
    fn reset_clears() {
        let m = meter();
        m.record("m", TokenUsage { input_tokens: 10, output_tokens: 10 });
        m.reset();
        assert_eq!(m.snapshot().total_calls(), 0);
    }

    #[test]
    fn dollars_since_delta() {
        let m = meter();
        m.record("m", TokenUsage { input_tokens: 1000, output_tokens: 0 });
        let before = m.snapshot();
        m.record("m", TokenUsage { input_tokens: 2000, output_tokens: 0 });
        let after = m.snapshot();
        assert!((after.dollars_since(&before) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shared_between_clones() {
        let m = meter();
        let m2 = m.clone();
        m2.record("m", TokenUsage { input_tokens: 1, output_tokens: 1 });
        assert_eq!(m.snapshot().total_calls(), 1);
    }

    #[test]
    fn concurrent_records() {
        let m = meter();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        m.record("m", TokenUsage { input_tokens: 1, output_tokens: 0 });
                    }
                });
            }
        });
        assert_eq!(m.snapshot().total_calls(), 800);
    }
}
