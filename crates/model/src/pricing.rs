//! Per-model pricing, mirroring the API price structure the paper quotes
//! (§III-B1: "the latest price of GPT-3.5 Turbo is $0.001/1k input tokens,
//! and GPT-4 is $0.03/1k input tokens").


/// Prices for one model, in dollars per 1 000 tokens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pricing {
    /// Dollars per 1k input (prompt) tokens.
    pub input_per_1k: f64,
    /// Dollars per 1k output (completion) tokens.
    pub output_per_1k: f64,
}

impl Pricing {
    /// Construct a price point.
    pub const fn new(input_per_1k: f64, output_per_1k: f64) -> Self {
        Pricing { input_per_1k, output_per_1k }
    }

    /// Dollar cost of a call with the given token counts.
    pub fn cost(&self, input_tokens: usize, output_tokens: usize) -> f64 {
        (input_tokens as f64) * self.input_per_1k / 1000.0
            + (output_tokens as f64) * self.output_per_1k / 1000.0
    }
}

/// A table of model-name → pricing entries.
#[derive(Debug, Clone, Default)]
pub struct PriceTable {
    entries: Vec<(String, Pricing)>,
}

impl PriceTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard table used throughout the reproduction. Prices follow
    /// the paper's quoted numbers for the mid/large tier; the small tier
    /// uses babbage-002's public price at the time of the paper.
    pub fn standard() -> Self {
        let mut t = Self::new();
        t.set("sim-small", Pricing::new(0.0004, 0.0004)); // ≈ babbage-002
        t.set("sim-medium", Pricing::new(0.001, 0.002)); // ≈ gpt-3.5-turbo
        t.set("sim-large", Pricing::new(0.03, 0.06)); // ≈ gpt-4
        t
    }

    /// Insert or replace a model's pricing.
    pub fn set(&mut self, model: &str, pricing: Pricing) {
        if let Some(slot) = self.entries.iter_mut().find(|(m, _)| m == model) {
            slot.1 = pricing;
        } else {
            self.entries.push((model.to_string(), pricing));
        }
    }

    /// Look up pricing for a model.
    pub fn get(&self, model: &str) -> Option<Pricing> {
        self.entries.iter().find(|(m, _)| m == model).map(|(_, p)| *p)
    }

    /// All known model names.
    pub fn models(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(m, _)| m.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_arithmetic() {
        let p = Pricing::new(0.03, 0.06);
        let c = p.cost(1000, 500);
        assert!((c - (0.03 + 0.03)).abs() < 1e-12);
    }

    #[test]
    fn zero_tokens_cost_zero() {
        assert_eq!(Pricing::new(0.03, 0.06).cost(0, 0), 0.0);
    }

    #[test]
    fn standard_table_has_three_tiers() {
        let t = PriceTable::standard();
        assert_eq!(t.models().count(), 3);
        let large = t.get("sim-large").unwrap();
        let medium = t.get("sim-medium").unwrap();
        // The paper's headline cost ratio: gpt-4 input is 30x gpt-3.5.
        assert!((large.input_per_1k / medium.input_per_1k - 30.0).abs() < 1e-9);
    }

    #[test]
    fn set_replaces_existing() {
        let mut t = PriceTable::new();
        t.set("m", Pricing::new(1.0, 1.0));
        t.set("m", Pricing::new(2.0, 2.0));
        assert_eq!(t.get("m").unwrap().input_per_1k, 2.0);
        assert_eq!(t.models().count(), 1);
    }

    #[test]
    fn get_unknown_is_none() {
        assert!(PriceTable::new().get("nope").is_none());
    }
}
