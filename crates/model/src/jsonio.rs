//! Hand-written JSON (de)serialization for the model crate's report
//! types, replacing the former `serde` derives with explicit
//! [`ToJson`]/[`FromJson`] impls over `llmdm-rt`'s owned JSON tree.
//!
//! Field names match what the old derives would have produced, so any
//! previously written report file still parses.

use llmdm_rt::{FromJson, Json, JsonError, ToJson};

use crate::capability::CapabilityCurve;
use crate::pricing::{PriceTable, Pricing};
use crate::usage::{ModelUsage, TokenUsage, UsageSnapshot};

impl ToJson for Pricing {
    fn to_json(&self) -> Json {
        Json::obj([
            ("input_per_1k", self.input_per_1k.to_json()),
            ("output_per_1k", self.output_per_1k.to_json()),
        ])
    }
}

impl FromJson for Pricing {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Pricing {
            input_per_1k: v.field("input_per_1k")?.as_f64()?,
            output_per_1k: v.field("output_per_1k")?.as_f64()?,
        })
    }
}

impl ToJson for PriceTable {
    fn to_json(&self) -> Json {
        Json::obj([(
            "entries",
            Json::Arr(
                self.models()
                    .map(|m| {
                        Json::Arr(vec![
                            Json::Str(m.to_string()),
                            self.get(m).expect("listed model has pricing").to_json(),
                        ])
                    })
                    .collect(),
            ),
        )])
    }
}

impl FromJson for PriceTable {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut table = PriceTable::new();
        for entry in v.field("entries")?.as_arr()? {
            let pair = entry.as_arr()?;
            if pair.len() != 2 {
                return Err(JsonError::shape("pricing entry must be a [name, pricing] pair"));
            }
            table.set(pair[0].as_str()?, Pricing::from_json(&pair[1])?);
        }
        Ok(table)
    }
}

impl ToJson for TokenUsage {
    fn to_json(&self) -> Json {
        Json::obj([
            ("input_tokens", self.input_tokens.to_json()),
            ("output_tokens", self.output_tokens.to_json()),
        ])
    }
}

impl FromJson for TokenUsage {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TokenUsage {
            input_tokens: v.field("input_tokens")?.as_usize()?,
            output_tokens: v.field("output_tokens")?.as_usize()?,
        })
    }
}

impl ToJson for ModelUsage {
    fn to_json(&self) -> Json {
        Json::obj([
            ("calls", self.calls.to_json()),
            ("input_tokens", self.input_tokens.to_json()),
            ("output_tokens", self.output_tokens.to_json()),
            ("dollars", self.dollars.to_json()),
        ])
    }
}

impl FromJson for ModelUsage {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ModelUsage {
            calls: v.field("calls")?.as_u64()?,
            input_tokens: v.field("input_tokens")?.as_u64()?,
            output_tokens: v.field("output_tokens")?.as_u64()?,
            dollars: v.field("dollars")?.as_f64()?,
        })
    }
}

impl ToJson for UsageSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([(
            "per_model",
            Json::Arr(
                self.iter()
                    .map(|(m, u)| Json::Arr(vec![Json::Str(m.to_string()), u.to_json()]))
                    .collect(),
            ),
        )])
    }
}

impl FromJson for UsageSnapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut per_model = Vec::new();
        for entry in v.field("per_model")?.as_arr()? {
            let pair = entry.as_arr()?;
            if pair.len() != 2 {
                return Err(JsonError::shape("per_model entry must be a [name, usage] pair"));
            }
            per_model.push((pair[0].as_str()?.to_string(), ModelUsage::from_json(&pair[1])?));
        }
        Ok(UsageSnapshot::from_entries(per_model))
    }
}

impl ToJson for CapabilityCurve {
    fn to_json(&self) -> Json {
        Json::obj([
            ("capability", self.capability.to_json()),
            ("difficulty_slope", self.difficulty_slope.to_json()),
            ("shot_gain", self.shot_gain.to_json()),
            ("shot_saturation", self.shot_saturation.to_json()),
        ])
    }
}

impl FromJson for CapabilityCurve {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CapabilityCurve {
            capability: v.field("capability")?.as_f64()?,
            difficulty_slope: v.field("difficulty_slope")?.as_f64()?,
            shot_gain: v.field("shot_gain")?.as_f64()?,
            shot_saturation: v.field("shot_saturation")?.as_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pricing_roundtrip() {
        let p = Pricing::new(0.03, 0.06);
        let back = Pricing::from_json_str(&p.to_json_string()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn price_table_roundtrip_preserves_order() {
        let t = PriceTable::standard();
        let back = PriceTable::from_json_str(&t.to_json_string()).unwrap();
        assert_eq!(t.models().collect::<Vec<_>>(), back.models().collect::<Vec<_>>());
        assert_eq!(t.get("sim-large"), back.get("sim-large"));
    }

    #[test]
    fn usage_snapshot_roundtrip() {
        let meter = crate::usage::UsageMeter::new(PriceTable::standard());
        meter.record("sim-large", TokenUsage { input_tokens: 1000, output_tokens: 200 });
        meter.record("sim-small", TokenUsage { input_tokens: 50, output_tokens: 10 });
        let snap = meter.snapshot();
        let back = UsageSnapshot::from_json_str(&snap.to_json_string()).unwrap();
        assert_eq!(snap, back);
        assert!((back.total_dollars() - snap.total_dollars()).abs() < 1e-12);
    }

    #[test]
    fn capability_curve_roundtrip() {
        let c = CapabilityCurve::default();
        let back = CapabilityCurve::from_json_str(&c.to_json_string()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn bad_shape_is_an_error_not_a_panic() {
        assert!(Pricing::from_json_str("{\"input_per_1k\": 1.0}").is_err());
        assert!(TokenUsage::from_json_str("[1, 2]").is_err());
        assert!(UsageSnapshot::from_json_str("{\"per_model\": [[\"m\"]]}").is_err());
    }
}
