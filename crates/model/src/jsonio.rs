//! Hand-written JSON (de)serialization for the model crate's report
//! types, replacing the former `serde` derives with explicit
//! [`ToJson`]/[`FromJson`] impls over `llmdm-rt`'s owned JSON tree.
//!
//! Field names match what the old derives would have produced, so any
//! previously written report file still parses.

use llmdm_rt::{FromJson, Json, JsonError, ToJson};

use crate::capability::CapabilityCurve;
use crate::error::{ModelError, TransientKind};
use crate::pricing::{PriceTable, Pricing};
use crate::usage::{ModelUsage, TokenUsage, UsageSnapshot};

impl ToJson for ModelError {
    /// Tagged-object encoding: `{"error": "<variant>", ...fields}`, so
    /// resilience reports and chaos traces can persist failure causes.
    fn to_json(&self) -> Json {
        match self {
            ModelError::UnsupportedPrompt(head) => Json::obj([
                ("error", Json::Str("unsupported_prompt".into())),
                ("head", Json::Str(head.clone())),
            ]),
            ModelError::ContextOverflow { tokens, limit } => Json::obj([
                ("error", Json::Str("context_overflow".into())),
                ("tokens", tokens.to_json()),
                ("limit", limit.to_json()),
            ]),
            ModelError::MalformedPayload { task, reason } => Json::obj([
                ("error", Json::Str("malformed_payload".into())),
                ("task", Json::Str(task.clone())),
                ("reason", Json::Str(reason.clone())),
            ]),
            ModelError::EmptyInput => Json::obj([("error", Json::Str("empty_input".into()))]),
            ModelError::Transient { kind, retry_after_ms } => Json::obj([
                ("error", Json::Str("transient".into())),
                ("kind", Json::Str(kind.label().into())),
                ("retry_after_ms", retry_after_ms.to_json()),
            ]),
        }
    }
}

impl FromJson for ModelError {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let tag = v.field("error")?.as_str()?;
        match tag {
            "unsupported_prompt" => {
                Ok(ModelError::UnsupportedPrompt(v.field("head")?.as_str()?.to_string()))
            }
            "context_overflow" => Ok(ModelError::ContextOverflow {
                tokens: v.field("tokens")?.as_usize()?,
                limit: v.field("limit")?.as_usize()?,
            }),
            "malformed_payload" => Ok(ModelError::MalformedPayload {
                task: v.field("task")?.as_str()?.to_string(),
                reason: v.field("reason")?.as_str()?.to_string(),
            }),
            "empty_input" => Ok(ModelError::EmptyInput),
            "transient" => {
                let label = v.field("kind")?.as_str()?;
                let kind = TransientKind::from_label(label).ok_or_else(|| {
                    JsonError::shape("unknown transient kind label")
                })?;
                Ok(ModelError::Transient { kind, retry_after_ms: v.field("retry_after_ms")?.as_u64()? })
            }
            _ => Err(JsonError::shape("unknown ModelError tag")),
        }
    }
}

impl ToJson for Pricing {
    fn to_json(&self) -> Json {
        Json::obj([
            ("input_per_1k", self.input_per_1k.to_json()),
            ("output_per_1k", self.output_per_1k.to_json()),
        ])
    }
}

impl FromJson for Pricing {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Pricing {
            input_per_1k: v.field("input_per_1k")?.as_f64()?,
            output_per_1k: v.field("output_per_1k")?.as_f64()?,
        })
    }
}

impl ToJson for PriceTable {
    fn to_json(&self) -> Json {
        Json::obj([(
            "entries",
            Json::Arr(
                self.models()
                    .map(|m| {
                        Json::Arr(vec![
                            Json::Str(m.to_string()),
                            self.get(m).expect("listed model has pricing").to_json(),
                        ])
                    })
                    .collect(),
            ),
        )])
    }
}

impl FromJson for PriceTable {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut table = PriceTable::new();
        for entry in v.field("entries")?.as_arr()? {
            let pair = entry.as_arr()?;
            if pair.len() != 2 {
                return Err(JsonError::shape("pricing entry must be a [name, pricing] pair"));
            }
            table.set(pair[0].as_str()?, Pricing::from_json(&pair[1])?);
        }
        Ok(table)
    }
}

impl ToJson for TokenUsage {
    fn to_json(&self) -> Json {
        Json::obj([
            ("input_tokens", self.input_tokens.to_json()),
            ("output_tokens", self.output_tokens.to_json()),
        ])
    }
}

impl FromJson for TokenUsage {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TokenUsage {
            input_tokens: v.field("input_tokens")?.as_usize()?,
            output_tokens: v.field("output_tokens")?.as_usize()?,
        })
    }
}

impl ToJson for ModelUsage {
    fn to_json(&self) -> Json {
        Json::obj([
            ("calls", self.calls.to_json()),
            ("input_tokens", self.input_tokens.to_json()),
            ("output_tokens", self.output_tokens.to_json()),
            ("dollars", self.dollars.to_json()),
        ])
    }
}

impl FromJson for ModelUsage {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ModelUsage {
            calls: v.field("calls")?.as_u64()?,
            input_tokens: v.field("input_tokens")?.as_u64()?,
            output_tokens: v.field("output_tokens")?.as_u64()?,
            dollars: v.field("dollars")?.as_f64()?,
        })
    }
}

impl ToJson for UsageSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([(
            "per_model",
            Json::Arr(
                self.iter()
                    .map(|(m, u)| Json::Arr(vec![Json::Str(m.to_string()), u.to_json()]))
                    .collect(),
            ),
        )])
    }
}

impl FromJson for UsageSnapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut per_model = Vec::new();
        for entry in v.field("per_model")?.as_arr()? {
            let pair = entry.as_arr()?;
            if pair.len() != 2 {
                return Err(JsonError::shape("per_model entry must be a [name, usage] pair"));
            }
            per_model.push((pair[0].as_str()?.to_string(), ModelUsage::from_json(&pair[1])?));
        }
        Ok(UsageSnapshot::from_entries(per_model))
    }
}

impl ToJson for CapabilityCurve {
    fn to_json(&self) -> Json {
        Json::obj([
            ("capability", self.capability.to_json()),
            ("difficulty_slope", self.difficulty_slope.to_json()),
            ("shot_gain", self.shot_gain.to_json()),
            ("shot_saturation", self.shot_saturation.to_json()),
        ])
    }
}

impl FromJson for CapabilityCurve {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CapabilityCurve {
            capability: v.field("capability")?.as_f64()?,
            difficulty_slope: v.field("difficulty_slope")?.as_f64()?,
            shot_gain: v.field("shot_gain")?.as_f64()?,
            shot_saturation: v.field("shot_saturation")?.as_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pricing_roundtrip() {
        let p = Pricing::new(0.03, 0.06);
        let back = Pricing::from_json_str(&p.to_json_string()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn price_table_roundtrip_preserves_order() {
        let t = PriceTable::standard();
        let back = PriceTable::from_json_str(&t.to_json_string()).unwrap();
        assert_eq!(t.models().collect::<Vec<_>>(), back.models().collect::<Vec<_>>());
        assert_eq!(t.get("sim-large"), back.get("sim-large"));
    }

    #[test]
    fn usage_snapshot_roundtrip() {
        let meter = crate::usage::UsageMeter::new(PriceTable::standard());
        meter.record("sim-large", TokenUsage { input_tokens: 1000, output_tokens: 200 });
        meter.record("sim-small", TokenUsage { input_tokens: 50, output_tokens: 10 });
        let snap = meter.snapshot();
        let back = UsageSnapshot::from_json_str(&snap.to_json_string()).unwrap();
        assert_eq!(snap, back);
        assert!((back.total_dollars() - snap.total_dollars()).abs() < 1e-12);
    }

    #[test]
    fn capability_curve_roundtrip() {
        let c = CapabilityCurve::default();
        let back = CapabilityCurve::from_json_str(&c.to_json_string()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn bad_shape_is_an_error_not_a_panic() {
        assert!(Pricing::from_json_str("{\"input_per_1k\": 1.0}").is_err());
        assert!(TokenUsage::from_json_str("[1, 2]").is_err());
        assert!(UsageSnapshot::from_json_str("{\"per_model\": [[\"m\"]]}").is_err());
    }

    #[test]
    fn model_error_roundtrips_every_variant() {
        use crate::error::{ModelError, TransientKind};
        let variants = vec![
            ModelError::UnsupportedPrompt("### task: bogus".into()),
            ModelError::ContextOverflow { tokens: 9000, limit: 8192 },
            ModelError::MalformedPayload { task: "qa".into(), reason: "no question".into() },
            ModelError::EmptyInput,
            ModelError::Transient { kind: TransientKind::RateLimited, retry_after_ms: 250 },
            ModelError::Transient { kind: TransientKind::Timeout, retry_after_ms: 0 },
            ModelError::Transient { kind: TransientKind::Unavailable, retry_after_ms: 1000 },
        ];
        for e in variants {
            let back = ModelError::from_json_str(&e.to_json_string())
                .unwrap_or_else(|err| panic!("{e:?} did not roundtrip: {err:?}"));
            assert_eq!(e, back);
        }
    }

    #[test]
    fn model_error_bad_tags_are_errors() {
        use crate::error::ModelError;
        assert!(ModelError::from_json_str("{\"error\": \"who_knows\"}").is_err());
        assert!(ModelError::from_json_str("{\"error\": \"transient\", \"kind\": \"zap\", \"retry_after_ms\": 0}").is_err());
        assert!(ModelError::from_json_str("{}").is_err());
    }
}
