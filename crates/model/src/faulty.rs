//! [`FaultyModel`] — the [`LanguageModel`] decorator that injects the
//! faults described by an `llmdm-resil` [`FaultPlan`].
//!
//! The decorator sits between a caller and any inner model and, per
//! call, consults the plan's pure decision function with its own
//! per-instance call index and the shared [`SimClock`]. Billing follows
//! what a real provider would charge:
//!
//! | fault | inner executed? | billed? | surfaced as |
//! |---|---|---|---|
//! | `RateLimited` | no | no | `Transient(RateLimited)` + hint |
//! | `Outage` | no | no | `Transient(Unavailable)` + window hint |
//! | `MalformedPayload` | no | no | `MalformedPayload` (retryable) |
//! | `Timeout` | **yes** | **yes** | `Transient(Timeout)` |
//! | `TruncatedOutput` | **yes** | **yes (full)** | *successful* truncated `Completion` |
//!
//! Because timeouts and truncations bill the inner call while the other
//! kinds never reach it, the decorator's [`FaultyModel::executed_cost`]
//! equals exactly what the inner model's `UsageMeter` accumulated — the
//! reconciliation invariant `examples/chaos_pipeline.rs` asserts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use llmdm_resil::{FaultKind, FaultPlan, SimClock};

use crate::error::{ModelError, TransientKind};
use crate::sim::{Completion, CompletionRequest, LanguageModel};

/// Per-kind injection counters (indexed by `FaultKind::all()` order).
#[derive(Debug, Default)]
struct FaultCounters {
    counts: [AtomicU64; 5],
}

impl FaultCounters {
    fn bump(&self, kind: FaultKind) {
        let idx = FaultKind::all().iter().position(|k| *k == kind).expect("kind in all()");
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn get(&self, kind: FaultKind) -> u64 {
        let idx = FaultKind::all().iter().position(|k| *k == kind).expect("kind in all()");
        self.counts[idx].load(Ordering::Relaxed)
    }
}

/// A fault-injecting [`LanguageModel`] decorator.
///
/// Deterministic: the injected fault for call `i` depends only on
/// `(plan, inner.name(), i, clock at call time)`, so identical call
/// sequences against identical plans reproduce identical fault
/// sequences.
pub struct FaultyModel {
    inner: Arc<dyn LanguageModel>,
    plan: Arc<FaultPlan>,
    clock: SimClock,
    call_index: AtomicU64,
    executed_cost: Mutex<f64>,
    faults: FaultCounters,
}

impl std::fmt::Debug for FaultyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyModel")
            .field("inner", &self.inner.name())
            .field("plan", &self.plan.name)
            .field("calls", &self.call_index.load(Ordering::Relaxed))
            .finish()
    }
}

impl FaultyModel {
    /// Wrap `inner` with the fault `plan`, advancing time on `clock`.
    pub fn new(inner: Arc<dyn LanguageModel>, plan: Arc<FaultPlan>, clock: SimClock) -> Self {
        FaultyModel {
            inner,
            plan,
            clock,
            call_index: AtomicU64::new(0),
            executed_cost: Mutex::new(0.0),
            faults: FaultCounters::default(),
        }
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The plan driving the injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total calls routed through this decorator (faulted or not).
    pub fn calls(&self) -> u64 {
        self.call_index.load(Ordering::Relaxed)
    }

    /// How many times `kind` was injected.
    pub fn fault_count(&self, kind: FaultKind) -> u64 {
        self.faults.get(kind)
    }

    /// Total faults injected across all kinds.
    pub fn total_faults(&self) -> u64 {
        FaultKind::all().iter().map(|k| self.faults.get(*k)).sum()
    }

    /// The dollar cost of inner calls that actually *executed* (clean
    /// calls, timeouts, truncations). By construction this equals what
    /// the inner model billed to its `UsageMeter` through this
    /// decorator — the chaos pipeline's reconciliation invariant.
    pub fn executed_cost(&self) -> f64 {
        *self.executed_cost.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn note_executed(&self, cost: f64) {
        *self.executed_cost.lock().unwrap_or_else(|e| e.into_inner()) += cost;
    }

    fn record_fault(&self, kind: FaultKind) {
        self.faults.bump(kind);
        llmdm_obs::counter_add(&format!("resil.faults.{}", kind.label()), 1.0);
    }

    /// Truncate `text` to its first half (at a char boundary), modeling
    /// a response cut off mid-stream.
    fn truncate_text(text: &str) -> String {
        let cut = text.len() / 2;
        let mut end = cut;
        while end > 0 && !text.is_char_boundary(end) {
            end -= 1;
        }
        text[..end].to_string()
    }
}

impl LanguageModel for FaultyModel {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    fn complete(&self, req: &CompletionRequest) -> Result<Completion, ModelError> {
        // No-op fast path: one branch, no hashing, no index bump — this
        // is what the `resil_overhead` bench pins below 5%.
        if self.plan.is_noop() {
            let c = self.inner.complete(req)?;
            self.clock.advance(c.latency.as_millis() as u64);
            self.note_executed(c.cost);
            return Ok(c);
        }

        let idx = self.call_index.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now_ms();
        let tier = self.inner.name().to_string();
        match self.plan.decide(&tier, idx, now) {
            None => {
                let c = self.inner.complete(req)?;
                self.clock.advance(c.latency.as_millis() as u64);
                self.note_executed(c.cost);
                Ok(c)
            }
            Some(FaultKind::RateLimited) => {
                self.record_fault(FaultKind::RateLimited);
                let hint = self.plan.tier(&tier).map(|t| t.retry_after_ms).unwrap_or(0);
                Err(ModelError::transient(TransientKind::RateLimited, hint))
            }
            Some(FaultKind::Outage) => {
                self.record_fault(FaultKind::Outage);
                // Hint at when the covering outage window ends.
                let hint = self
                    .plan
                    .tier(&tier)
                    .and_then(|t| t.outages.iter().find(|w| w.contains(now)))
                    .map(|w| w.end_ms.saturating_sub(now))
                    .unwrap_or(0);
                Err(ModelError::transient(TransientKind::Unavailable, hint))
            }
            Some(FaultKind::MalformedPayload) => {
                self.record_fault(FaultKind::MalformedPayload);
                Err(ModelError::MalformedPayload {
                    task: "fault_injection".into(),
                    reason: format!("injected malformed payload (call {idx})"),
                })
            }
            Some(FaultKind::Timeout) => {
                // The inner call executes — and bills — but the caller
                // never sees the completion.
                let burned = self.plan.tier(&tier).map(|t| t.timeout_ms).unwrap_or(0);
                match self.inner.complete(req) {
                    Ok(c) => {
                        self.note_executed(c.cost);
                        let latency = c.latency.as_millis() as u64;
                        self.clock.advance(latency.max(burned));
                        self.record_fault(FaultKind::Timeout);
                        Err(ModelError::transient(TransientKind::Timeout, 0))
                    }
                    // The request was invalid anyway; surface that.
                    Err(e) => Err(e),
                }
            }
            Some(FaultKind::TruncatedOutput) => {
                match self.inner.complete(req) {
                    Ok(mut c) => {
                        self.note_executed(c.cost);
                        self.clock.advance(c.latency.as_millis() as u64);
                        self.record_fault(FaultKind::TruncatedOutput);
                        c.text = Self::truncate_text(&c.text);
                        // Confidence drops: a cut-off answer reads worse.
                        c.confidence = (c.confidence * 0.5).max(0.01);
                        Ok(c)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::CapabilityCurve;
    use crate::latency::LatencyModel;
    use crate::pricing::PriceTable;
    use crate::sim::{SimLlm, SimLlmConfig};
    use crate::solver::PromptEnvelope as Env;
    use crate::usage::UsageMeter;
    use llmdm_resil::{FaultRates, TierPlan, Window};

    fn sim(meter: UsageMeter) -> Arc<SimLlm> {
        Arc::new(SimLlm::new(
            SimLlmConfig {
                name: "sim-test".into(),
                curve: CapabilityCurve::new(1.0, 0.6, 0.5, 8),
                context_window: 4096,
                latency: LatencyModel::default(),
                confidence_noise: 0.05,
                seed: 3,
            },
            meter,
        ))
    }

    fn prompt(nonce: u64) -> CompletionRequest {
        CompletionRequest::new(
            Env::builder("oracle")
                .header("gold", "answer forty two")
                .header("difficulty", 0.0)
                .header("nonce", nonce)
                .body("q")
                .build(),
        )
    }

    #[test]
    fn noop_plan_is_transparent_and_tracks_cost() {
        let meter = UsageMeter::new(PriceTable::standard());
        let inner = sim(meter.clone());
        let f = FaultyModel::new(inner, Arc::new(FaultPlan::none()), SimClock::new());
        for n in 0..10 {
            let c = f.complete(&prompt(n)).unwrap();
            assert_eq!(c.text, "answer forty two");
        }
        assert_eq!(f.total_faults(), 0);
        let billed = meter.snapshot().total_dollars();
        assert!((f.executed_cost() - billed).abs() < 1e-12, "{} vs {billed}", f.executed_cost());
        assert!(f.clock().now_ms() > 0, "latency must advance the clock");
    }

    #[test]
    fn outage_window_fails_as_unavailable_with_hint() {
        let meter = UsageMeter::new(PriceTable::standard());
        let inner = sim(meter.clone());
        let plan = FaultPlan::new(
            "outage",
            1,
            vec![TierPlan::quiet("sim-test").outage(Window::new(0, 5_000))],
        );
        let clock = SimClock::new();
        let f = FaultyModel::new(inner, Arc::new(plan), clock.clone());
        match f.complete(&prompt(0)) {
            Err(ModelError::Transient { kind: TransientKind::Unavailable, retry_after_ms }) => {
                assert_eq!(retry_after_ms, 5_000);
            }
            other => panic!("expected unavailable, got {other:?}"),
        }
        assert_eq!(meter.snapshot().total_calls(), 0, "outage calls must not bill");
        // After the window, calls flow again.
        clock.advance(5_000);
        assert!(f.complete(&prompt(1)).is_ok());
    }

    #[test]
    fn timeout_bills_but_truncation_still_answers() {
        let meter = UsageMeter::new(PriceTable::standard());
        let inner = sim(meter.clone());
        // 100% timeout.
        let plan = FaultPlan::new(
            "t",
            2,
            vec![TierPlan::with_rates(
                "sim-test",
                FaultRates { timeout: 1.0, ..FaultRates::default() },
            )
            .timeout_latency(30_000)],
        );
        let f = FaultyModel::new(inner, Arc::new(plan), SimClock::new());
        match f.complete(&prompt(0)) {
            Err(ModelError::Transient { kind: TransientKind::Timeout, .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(meter.snapshot().total_calls(), 1, "timeouts bill the executed call");
        assert!((f.executed_cost() - meter.snapshot().total_dollars()).abs() < 1e-12);
        assert!(f.clock().now_ms() >= 30_000, "timeout burns its latency");

        // 100% truncation on a fresh decorator.
        let meter2 = UsageMeter::new(PriceTable::standard());
        let inner2 = sim(meter2.clone());
        let plan2 = FaultPlan::new(
            "tr",
            2,
            vec![TierPlan::with_rates(
                "sim-test",
                FaultRates { truncated: 1.0, ..FaultRates::default() },
            )],
        );
        let f2 = FaultyModel::new(inner2, Arc::new(plan2), SimClock::new());
        let c = f2.complete(&prompt(0)).unwrap();
        assert!(c.text.len() < "answer forty two".len(), "must be truncated: {:?}", c.text);
        assert_eq!(meter2.snapshot().total_calls(), 1, "truncations bill in full");
    }

    #[test]
    fn rate_limit_and_malformed_do_not_bill() {
        let meter = UsageMeter::new(PriceTable::standard());
        let inner = sim(meter.clone());
        let plan = FaultPlan::new(
            "rl",
            3,
            vec![TierPlan::with_rates(
                "sim-test",
                FaultRates { rate_limited: 0.5, malformed: 0.5, ..FaultRates::default() },
            )
            .retry_hint(250)],
        );
        let f = FaultyModel::new(inner, Arc::new(plan), SimClock::new());
        let mut rl = 0;
        let mut mal = 0;
        for n in 0..50 {
            match f.complete(&prompt(n)) {
                Err(ModelError::Transient { kind: TransientKind::RateLimited, retry_after_ms }) => {
                    assert_eq!(retry_after_ms, 250);
                    rl += 1;
                }
                Err(ModelError::MalformedPayload { task, .. }) => {
                    assert_eq!(task, "fault_injection");
                    mal += 1;
                }
                other => panic!("all calls should fault: {other:?}"),
            }
        }
        assert!(rl > 10 && mal > 10, "rl={rl} mal={mal}");
        assert_eq!(meter.snapshot().total_calls(), 0);
        assert_eq!(f.executed_cost(), 0.0);
        assert_eq!(f.total_faults(), 50);
    }

    #[test]
    fn fault_sequence_is_deterministic() {
        let run = || {
            let meter = UsageMeter::new(PriceTable::standard());
            let inner = sim(meter);
            let plan = FaultPlan::new(
                "lossy",
                42,
                vec![TierPlan::with_rates(
                    "sim-test",
                    FaultRates {
                        rate_limited: 0.2,
                        timeout: 0.1,
                        truncated: 0.1,
                        malformed: 0.1,
                    },
                )],
            );
            let f = FaultyModel::new(inner, Arc::new(plan), SimClock::new());
            (0..100)
                .map(|n| match f.complete(&prompt(n)) {
                    Ok(c) => format!("ok:{}", c.text),
                    Err(e) => format!("err:{e}"),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        let s = "héllo wörld ünïcode";
        let t = FaultyModel::truncate_text(s);
        assert!(t.len() < s.len());
        assert!(s.starts_with(t.as_str()));
    }
}
