//! The simulated language model: [`SimLlm`] and the [`LanguageModel`] trait.
//!
//! A [`SimLlm`] call pipeline is:
//!
//! 1. tokenize the prompt and check the context window,
//! 2. parse the [`PromptEnvelope`] and route
//!    to the registered solver for its task id,
//! 3. ask the solver for the correct answer and instance difficulty,
//! 4. draw a deterministic per-(model, prompt) coin against the tier's
//!    capability curve ([`CapabilityCurve`]) to decide
//!    whether this call succeeds,
//! 5. on failure, emit a deterministic corruption (one of the solver's
//!    plausible wrong answers, or a perturbed gold answer),
//! 6. meter tokens/dollars and compute simulated latency.
//!
//! Determinism: the same model asked the same prompt always returns the
//! same completion. This mirrors temperature-0 API behaviour and makes all
//! experiments reproducible. Callers that need resampling (self-consistency
//! voting in `llmdm-validate`) vary the prompt with a nonce header.

use std::sync::Arc;
use std::time::Duration;

use std::sync::RwLock;

use crate::capability::CapabilityCurve;
use crate::error::ModelError;
use crate::hash::{combine, fnv1a_str, unit_f64};
use crate::latency::LatencyModel;
use crate::solver::{PromptEnvelope, PromptSolver};
use crate::tokenizer::Tokenizer;
use crate::usage::{TokenUsage, UsageMeter};

/// A completion request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionRequest {
    /// The full prompt text (normally an envelope built with
    /// [`PromptEnvelope::builder`]).
    pub prompt: String,
    /// Maximum output tokens (advisory; the simulation truncates).
    pub max_output_tokens: usize,
}

impl CompletionRequest {
    /// A request with the default output budget.
    ///
    /// Infallible for compatibility; prefer [`CompletionRequest::builder`]
    /// which validates the prompt up front (an empty prompt fails here
    /// only at `complete` time, as [`ModelError::EmptyInput`]).
    pub fn new(prompt: impl Into<String>) -> Self {
        CompletionRequest { prompt: prompt.into(), max_output_tokens: 512 }
    }

    /// The validating builder: the one construction path that rejects
    /// bad requests *before* they reach a model or a solver.
    pub fn builder(prompt: impl Into<String>) -> CompletionRequestBuilder {
        CompletionRequestBuilder { prompt: prompt.into(), max_output_tokens: 512 }
    }
}

/// Builder for [`CompletionRequest`] with up-front validation.
///
/// Previously every call site hand-assembled requests and an empty or
/// whitespace-only prompt sailed through to whatever solver happened to
/// parse it downstream — panicking or mis-parsing instead of failing
/// with a typed error. The builder centralizes that check.
#[derive(Debug, Clone)]
pub struct CompletionRequestBuilder {
    prompt: String,
    max_output_tokens: usize,
}

impl CompletionRequestBuilder {
    /// Override the output-token budget (clamped to ≥ 1).
    pub fn max_output_tokens(mut self, n: usize) -> Self {
        self.max_output_tokens = n.max(1);
        self
    }

    /// Validate and build. An empty or whitespace-only prompt is a
    /// permanent, typed [`ModelError::EmptyInput`] — not retryable, not a
    /// downstream panic.
    pub fn build(self) -> Result<CompletionRequest, ModelError> {
        if self.prompt.trim().is_empty() {
            return Err(ModelError::EmptyInput);
        }
        Ok(CompletionRequest { prompt: self.prompt, max_output_tokens: self.max_output_tokens })
    }
}

/// A completion result.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The model's answer text.
    pub text: String,
    /// The producing model's name.
    pub model: String,
    /// Token accounting for this call.
    pub usage: TokenUsage,
    /// Dollar cost of this call.
    pub cost: f64,
    /// Simulated wall-clock latency (not actually slept).
    pub latency: Duration,
    /// The model's self-reported confidence in `[0, 1]`. Correlated with —
    /// but not equal to — the true probability of correctness, as with
    /// logprob-derived confidence from a real API.
    pub confidence: f64,
}

/// Object-safe language-model interface implemented by [`SimLlm`].
pub trait LanguageModel: Send + Sync {
    /// The model's name (stable; used for pricing and reporting).
    fn name(&self) -> &str;
    /// Complete a prompt.
    fn complete(&self, req: &CompletionRequest) -> Result<Completion, ModelError>;
    /// The model's context window in tokens.
    fn context_window(&self) -> usize;
}

/// Configuration for one simulated model.
#[derive(Debug, Clone)]
pub struct SimLlmConfig {
    /// Model name, e.g. `sim-large`.
    pub name: String,
    /// The tier's accuracy curve.
    pub curve: CapabilityCurve,
    /// Context window in tokens.
    pub context_window: usize,
    /// Latency model.
    pub latency: LatencyModel,
    /// Confidence noise amplitude.
    pub confidence_noise: f64,
    /// Base seed; combined with the prompt hash per call.
    pub seed: u64,
}

/// A deterministic simulated LLM.
pub struct SimLlm {
    config: SimLlmConfig,
    tokenizer: Tokenizer,
    meter: UsageMeter,
    solvers: RwLock<Vec<Arc<dyn PromptSolver>>>,
}

impl std::fmt::Debug for SimLlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimLlm")
            .field("name", &self.config.name)
            .field(
                "solvers",
                &self.read_solvers().iter().map(|s| s.task_id()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl SimLlm {
    /// Create a model with the default solver set (`echo`, `oracle`,
    /// `arith`).
    pub fn new(config: SimLlmConfig, meter: UsageMeter) -> Self {
        let llm =
            SimLlm { config, tokenizer: Tokenizer::new(), meter, solvers: RwLock::new(Vec::new()) };
        llm.register(Arc::new(crate::solver::EchoSolver));
        llm.register(Arc::new(crate::solver::OracleSolver));
        llm.register(Arc::new(crate::solver::ArithmeticSolver));
        llm
    }

    /// Read-lock the solver registry, recovering from poison (a solver
    /// registration cannot leave the `Vec` half-mutated in a way that
    /// matters, so a poisoned lock is safe to enter).
    fn read_solvers(&self) -> std::sync::RwLockReadGuard<'_, Vec<Arc<dyn PromptSolver>>> {
        self.solvers.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Register (or replace) a solver for its task id.
    pub fn register(&self, solver: Arc<dyn PromptSolver>) {
        let mut solvers = self.solvers.write().unwrap_or_else(|e| e.into_inner());
        solvers.retain(|s| s.task_id() != solver.task_id());
        solvers.push(solver);
    }

    /// The capability curve of this model.
    pub fn curve(&self) -> &CapabilityCurve {
        &self.config.curve
    }

    /// The usage meter this model bills into.
    pub fn meter(&self) -> &UsageMeter {
        &self.meter
    }

    /// The shared tokenizer.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    fn find_solver(&self, task: &str) -> Option<Arc<dyn PromptSolver>> {
        self.read_solvers().iter().find(|s| s.task_id() == task).cloned()
    }

    /// Deterministically corrupt `answer` given the solver's alternatives.
    fn corrupt(answer: &str, alternatives: &[String], seed: u64) -> String {
        // Prefer an alternative different from the gold answer.
        if !alternatives.is_empty() {
            let start = (seed % alternatives.len() as u64) as usize;
            for off in 0..alternatives.len() {
                let cand = &alternatives[(start + off) % alternatives.len()];
                if cand != answer {
                    return cand.clone();
                }
            }
        }
        if answer.is_empty() {
            return "unable to determine".to_string();
        }
        // Perturb: replace the longest word with "unknown".
        let words: Vec<&str> = answer.split_whitespace().collect();
        if let Some((idx, _)) =
            words.iter().enumerate().max_by_key(|(i, w)| (w.len(), usize::MAX - i))
        {
            let mut out: Vec<String> = words.iter().map(|w| w.to_string()).collect();
            out[idx] = "unknown".to_string();
            let candidate = out.join(" ");
            if candidate != answer {
                return candidate;
            }
        }
        format!("{answer} (unverified)")
    }
}

impl LanguageModel for SimLlm {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn context_window(&self) -> usize {
        self.config.context_window
    }

    fn complete(&self, req: &CompletionRequest) -> Result<Completion, ModelError> {
        let mut span = llmdm_obs::span("model.complete");
        span.field("model", self.config.name.as_str());
        // Defense in depth behind the builder: requests constructed via
        // `CompletionRequest::new` can still carry an empty prompt.
        if req.prompt.trim().is_empty() {
            return Err(ModelError::EmptyInput);
        }
        let input_tokens = self.tokenizer.count(&req.prompt);
        if input_tokens > self.config.context_window {
            return Err(ModelError::ContextOverflow {
                tokens: input_tokens,
                limit: self.config.context_window,
            });
        }
        let env = PromptEnvelope::parse(&req.prompt).ok_or_else(|| {
            ModelError::UnsupportedPrompt(req.prompt.chars().take(40).collect())
        })?;
        let solver = self.find_solver(&env.task).ok_or_else(|| {
            ModelError::UnsupportedPrompt(format!("task `{}` has no solver", env.task))
        })?;
        let solved = solver.solve(&env)?;

        let shots = env.examples();
        let call_seed = combine(self.config.seed, fnv1a_str(&req.prompt));

        // Multi-part (combined) prompts roll an independent coin per part.
        let (mut text, p, correct) = if solved.parts.is_empty() {
            let p = self.config.curve.p_correct(solved.difficulty, shots);
            let correct = unit_f64(call_seed) < p;
            let text = if correct {
                solved.answer.clone()
            } else {
                Self::corrupt(&solved.answer, &solved.alternatives, combine(call_seed, 0xbad))
            };
            (text, p, correct)
        } else {
            let mut lines = Vec::with_capacity(solved.parts.len());
            let mut p_sum = 0.0;
            let mut all_ok = true;
            for (i, part) in solved.parts.iter().enumerate() {
                let p = self.config.curve.p_correct(part.difficulty, shots);
                p_sum += p;
                let part_seed = combine(call_seed, i as u64 + 1);
                if unit_f64(part_seed) < p {
                    lines.push(part.answer.clone());
                } else {
                    all_ok = false;
                    lines.push(Self::corrupt(
                        &part.answer,
                        &part.alternatives,
                        combine(part_seed, 0xbad),
                    ));
                }
            }
            (lines.join("\n"), p_sum / solved.parts.len() as f64, all_ok)
        };
        // Enforce the output budget by token-truncating.
        let out_toks = self.tokenizer.encode(&text);
        if out_toks.len() > req.max_output_tokens {
            text = self.tokenizer.decode(&out_toks[..req.max_output_tokens]);
        }
        let output_tokens = self.tokenizer.count(&text).max(1);

        // Confidence: a noisy, correctness-tinted estimate of p. Correct
        // answers read as more confident — the signal cascade decision
        // models learn from — but with enough noise to be imperfect.
        let noise = self.config.confidence_noise * (2.0 * unit_f64(combine(call_seed, 0xc0f)) - 1.0);
        let confidence =
            (0.15 + 0.55 * p + if correct { 0.22 } else { -0.08 } + noise).clamp(0.01, 0.99);

        let usage = TokenUsage { input_tokens, output_tokens };
        let cost = self.meter.record(&self.config.name, usage);
        let latency = self.config.latency.latency(input_tokens, output_tokens, call_seed);

        if span.is_recording() {
            span.field("tokens_in", input_tokens);
            span.field("tokens_out", output_tokens);
            span.field("cost_usd", cost);
            span.field("latency_ms", latency.as_secs_f64() * 1e3);
            span.field("confidence", confidence);
            llmdm_obs::observe("model.latency_ms", latency.as_secs_f64() * 1e3);
        }

        Ok(Completion { text, model: self.config.name.clone(), usage, cost, latency, confidence })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::PriceTable;
    use crate::solver::PromptEnvelope as Env;

    fn model(capability: f64) -> SimLlm {
        let config = SimLlmConfig {
            name: "sim-test".into(),
            curve: CapabilityCurve::new(capability, 0.6, 0.5, 8),
            context_window: 4096,
            latency: LatencyModel::default(),
            confidence_noise: 0.1,
            seed: 7,
        };
        SimLlm::new(config, UsageMeter::new(PriceTable::standard()))
    }

    fn oracle_prompt(gold: &str, difficulty: f64, nonce: u64) -> String {
        Env::builder("oracle")
            .header("gold", gold)
            .header("difficulty", difficulty)
            .header("nonce", nonce)
            .header("alt", format!("not-{gold}"))
            .body("answer the question")
            .build()
    }

    #[test]
    fn perfect_model_always_correct_on_easy() {
        let m = model(1.0);
        for nonce in 0..50 {
            let req = CompletionRequest::new(oracle_prompt("paris", 0.0, nonce));
            assert_eq!(m.complete(&req).unwrap().text, "paris");
        }
    }

    #[test]
    fn weak_model_often_wrong_on_hard() {
        let m = model(0.25);
        let mut wrong = 0;
        for nonce in 0..100 {
            let req = CompletionRequest::new(oracle_prompt("paris", 0.9, nonce));
            if m.complete(&req).unwrap().text != "paris" {
                wrong += 1;
            }
        }
        assert!(wrong > 60, "wrong={wrong}");
    }

    #[test]
    fn accuracy_ordering_small_medium_large() {
        let tiers = [model(0.3), model(0.8), model(0.95)];
        let acc: Vec<f64> = tiers
            .iter()
            .map(|m| {
                let mut ok = 0;
                for nonce in 0..200 {
                    let req = CompletionRequest::new(oracle_prompt("x", 0.5, nonce));
                    if m.complete(&req).unwrap().text == "x" {
                        ok += 1;
                    }
                }
                ok as f64 / 200.0
            })
            .collect();
        assert!(acc[0] < acc[1] && acc[1] < acc[2], "{acc:?}");
    }

    #[test]
    fn determinism_same_prompt_same_answer() {
        let m = model(0.5);
        let req = CompletionRequest::new(oracle_prompt("paris", 0.7, 1));
        assert_eq!(m.complete(&req).unwrap().text, m.complete(&req).unwrap().text);
    }

    #[test]
    fn corruption_prefers_alternatives() {
        let out = SimLlm::corrupt("gold", &["alt-a".into(), "alt-b".into()], 3);
        assert!(out == "alt-a" || out == "alt-b");
    }

    #[test]
    fn corruption_never_returns_gold() {
        for seed in 0..20 {
            assert_ne!(SimLlm::corrupt("gold", &["gold".into(), "other".into()], seed), "gold");
            assert_ne!(SimLlm::corrupt("single word", &[], seed), "single word");
        }
    }

    #[test]
    fn context_overflow_rejected() {
        let m = model(0.9);
        let long = "word ".repeat(10_000);
        let req = CompletionRequest::new(Env::builder("echo").body(long).build());
        assert!(matches!(m.complete(&req), Err(ModelError::ContextOverflow { .. })));
    }

    #[test]
    fn unstructured_prompt_rejected() {
        let m = model(0.9);
        let req = CompletionRequest::new("free text with no envelope");
        assert!(matches!(m.complete(&req), Err(ModelError::UnsupportedPrompt(_))));
    }

    #[test]
    fn usage_metered() {
        let m = model(0.9);
        let req = CompletionRequest::new(oracle_prompt("paris", 0.1, 0));
        let c = m.complete(&req).unwrap();
        assert!(c.usage.input_tokens > 0);
        assert!(c.usage.output_tokens > 0);
        assert_eq!(m.meter().snapshot().total_calls(), 1);
    }

    #[test]
    fn output_budget_truncates() {
        let m = model(1.0);
        let long_answer = "tok ".repeat(100);
        let mut req = CompletionRequest::new(
            Env::builder("oracle").header("gold", long_answer.trim()).header("difficulty", 0.0).build(),
        );
        req.max_output_tokens = 5;
        let c = m.complete(&req).unwrap();
        assert!(c.usage.output_tokens <= 5);
    }

    #[test]
    fn confidence_correlates_with_correctness() {
        let m = model(0.6);
        let (mut conf_ok, mut n_ok, mut conf_bad, mut n_bad) = (0.0, 0, 0.0, 0);
        for nonce in 0..300 {
            let req = CompletionRequest::new(oracle_prompt("paris", 0.7, nonce));
            let c = m.complete(&req).unwrap();
            if c.text == "paris" {
                conf_ok += c.confidence;
                n_ok += 1;
            } else {
                conf_bad += c.confidence;
                n_bad += 1;
            }
        }
        assert!(n_ok > 10 && n_bad > 10);
        assert!(conf_ok / n_ok as f64 > conf_bad / n_bad as f64 + 0.1);
    }

    #[test]
    fn examples_improve_accuracy() {
        let m = model(0.55);
        let run = |shots: usize| {
            let mut ok = 0;
            for nonce in 0..300 {
                let prompt = Env::builder("oracle")
                    .header("gold", "yes")
                    .header("difficulty", 0.9)
                    .header("examples", shots)
                    .header("nonce", nonce)
                    .header("alt", "no")
                    .build();
                if m.complete(&CompletionRequest::new(prompt)).unwrap().text == "yes" {
                    ok += 1;
                }
            }
            ok
        };
        assert!(run(8) > run(0) + 20, "8-shot={} 0-shot={}", run(8), run(0));
    }

    #[test]
    fn builder_rejects_empty_prompts_with_typed_error() {
        for bad in ["", "   ", "\n\t "] {
            assert_eq!(
                CompletionRequest::builder(bad).build().unwrap_err(),
                ModelError::EmptyInput
            );
        }
        let ok = CompletionRequest::builder("### task: echo\nhi")
            .max_output_tokens(7)
            .build()
            .unwrap();
        assert_eq!(ok.max_output_tokens, 7);
        // The model-side backstop catches unvalidated construction too.
        let m = model(0.9);
        assert_eq!(m.complete(&CompletionRequest::new("  ")), Err(ModelError::EmptyInput));
    }

    #[test]
    fn builder_matches_new_for_valid_prompts() {
        let a = CompletionRequest::builder("### task: echo\nsame").build().unwrap();
        let b = CompletionRequest::new("### task: echo\nsame");
        assert_eq!(a, b);
    }

    #[test]
    fn arith_task_end_to_end() {
        let m = model(1.0);
        let req = CompletionRequest::new(Env::builder("arith").body("6 * 7").build());
        assert_eq!(m.complete(&req).unwrap().text, "42");
    }
}
