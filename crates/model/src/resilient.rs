//! [`ResilientClient`] — a [`LanguageModel`] wrapper that composes
//! `llmdm-resil`'s retry executor (backoff + deadline + circuit
//! breaker) around any inner model.
//!
//! This is the model-layer half of the resilience story: the tier-aware
//! fallback router (`llmdm_cascade::resilient::ResilientCascade`) keeps
//! one of these per tier and walks down the cascade when a tier's
//! breaker opens or its budget slice expires.

use std::sync::{Arc, Mutex, MutexGuard};

use llmdm_resil::{
    execute, Backoff, BreakerConfig, CallStats, CircuitBreaker, Deadline, ResilError, Retryable,
    RetryPolicy, SimClock,
};

use crate::error::{ModelError, TransientKind};
use crate::sim::{Completion, CompletionRequest, LanguageModel};

impl Retryable for ModelError {
    fn is_retryable(&self) -> bool {
        ModelError::is_retryable(self)
    }

    fn retry_after_ms(&self) -> Option<u64> {
        ModelError::retry_after_ms(self)
    }
}

/// Cumulative accounting across every call through a client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Calls attempted (excluding breaker rejections).
    pub calls: u64,
    /// Calls ultimately successful.
    pub successes: u64,
    /// Total retries across all calls.
    pub retries: u64,
    /// Calls rejected up front by the open breaker.
    pub breaker_rejections: u64,
    /// Calls abandoned on deadline expiry.
    pub deadline_failures: u64,
    /// Total simulated backoff delay consumed.
    pub backoff_ms_total: u64,
}

/// A retry/breaker/deadline wrapper around an inner [`LanguageModel`].
pub struct ResilientClient {
    inner: Arc<dyn LanguageModel>,
    policy: RetryPolicy,
    breaker: Mutex<CircuitBreaker>,
    clock: SimClock,
    stats: Mutex<ClientStats>,
}

impl std::fmt::Debug for ResilientClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientClient")
            .field("inner", &self.inner.name())
            .field("max_retries", &self.policy.max_retries)
            .finish()
    }
}

impl ResilientClient {
    /// Wrap `inner` with `policy` and a breaker built from
    /// `breaker_config`, timing everything on `clock`.
    pub fn new(
        inner: Arc<dyn LanguageModel>,
        policy: RetryPolicy,
        breaker_config: BreakerConfig,
        clock: SimClock,
    ) -> Self {
        ResilientClient {
            inner,
            policy,
            breaker: Mutex::new(CircuitBreaker::new(breaker_config)),
            clock,
            stats: Mutex::new(ClientStats::default()),
        }
    }

    /// A client with sensible defaults (3 retries, 50ms–5s backoff
    /// seeded from the model name hash, default breaker).
    pub fn with_defaults(inner: Arc<dyn LanguageModel>, clock: SimClock) -> Self {
        let seed = crate::hash::fnv1a_str(inner.name());
        let policy = RetryPolicy::new(3, Backoff::new(50, 5_000, seed));
        let breaker = BreakerConfig { seed, ..BreakerConfig::default() };
        ResilientClient::new(inner, policy, breaker, clock)
    }

    fn lock_breaker(&self) -> MutexGuard<'_, CircuitBreaker> {
        self.breaker.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_stats(&self) -> MutexGuard<'_, ClientStats> {
        self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The inner model.
    pub fn inner(&self) -> &Arc<dyn LanguageModel> {
        &self.inner
    }

    /// The retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> llmdm_resil::BreakerState {
        self.lock_breaker().state()
    }

    /// Snapshot of cumulative client statistics.
    pub fn stats(&self) -> ClientStats {
        *self.lock_stats()
    }

    /// Complete `req` under a deadline, returning the per-call
    /// [`CallStats`] alongside the outcome.
    pub fn complete_within(
        &self,
        req: &CompletionRequest,
        deadline: Deadline,
    ) -> (Result<Completion, ResilError<ModelError>>, CallStats) {
        let mut span = llmdm_obs::span("resil.call");
        span.field("model", self.inner.name());
        let mut breaker = self.lock_breaker();
        let (res, call_stats) =
            execute(&self.policy, &mut breaker, &self.clock, deadline, |_attempt| {
                self.inner.complete(req)
            });
        drop(breaker);

        let mut stats = self.lock_stats();
        if call_stats.attempts > 0 {
            stats.calls += 1;
        }
        stats.retries += call_stats.retries as u64;
        stats.backoff_ms_total += call_stats.backoff_ms_total;
        match &res {
            Ok(_) => stats.successes += 1,
            Err(ResilError::BreakerOpen { .. }) => stats.breaker_rejections += 1,
            Err(ResilError::DeadlineExceeded { .. }) => stats.deadline_failures += 1,
            Err(ResilError::Exhausted { .. }) => {}
        }
        drop(stats);

        if span.is_recording() {
            span.field("attempts", call_stats.attempts);
            span.field("retries", call_stats.retries);
            span.field("backoff_ms", call_stats.backoff_ms_total);
            span.field("outcome", match &res {
                Ok(_) => "ok",
                Err(ResilError::BreakerOpen { .. }) => "breaker_open",
                Err(ResilError::DeadlineExceeded { .. }) => "deadline",
                Err(ResilError::Exhausted { .. }) => "exhausted",
            });
        }
        (res, call_stats)
    }
}

/// Map the executor's failure back into the model error vocabulary so
/// `ResilientClient` can itself implement [`LanguageModel`].
pub fn resil_to_model_error(e: ResilError<ModelError>) -> ModelError {
    match e {
        ResilError::BreakerOpen { retry_after_ms } => {
            ModelError::transient(TransientKind::Unavailable, retry_after_ms)
        }
        ResilError::DeadlineExceeded { .. } => ModelError::transient(TransientKind::Timeout, 0),
        ResilError::Exhausted { last_error, .. } => last_error,
    }
}

impl LanguageModel for ResilientClient {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    /// Trait-level completion uses an unbounded deadline; use
    /// [`ResilientClient::complete_within`] for budgeted calls.
    fn complete(&self, req: &CompletionRequest) -> Result<Completion, ModelError> {
        let (res, _) = self.complete_within(req, Deadline::unbounded());
        res.map_err(resil_to_model_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::CapabilityCurve;
    use crate::faulty::FaultyModel;
    use crate::latency::LatencyModel;
    use crate::pricing::PriceTable;
    use crate::sim::{SimLlm, SimLlmConfig};
    use crate::solver::PromptEnvelope as Env;
    use crate::usage::UsageMeter;
    use llmdm_resil::{FaultPlan, FaultRates, TierPlan, Window};

    fn sim(meter: UsageMeter) -> Arc<SimLlm> {
        Arc::new(SimLlm::new(
            SimLlmConfig {
                name: "sim-test".into(),
                curve: CapabilityCurve::new(1.0, 0.6, 0.5, 8),
                context_window: 4096,
                latency: LatencyModel::default(),
                confidence_noise: 0.05,
                seed: 3,
            },
            meter,
        ))
    }

    fn prompt(nonce: u64) -> CompletionRequest {
        CompletionRequest::new(
            Env::builder("oracle")
                .header("gold", "ok")
                .header("difficulty", 0.0)
                .header("nonce", nonce)
                .body("q")
                .build(),
        )
    }

    fn faulty(rates: FaultRates, seed: u64, clock: &SimClock) -> Arc<FaultyModel> {
        let meter = UsageMeter::new(PriceTable::standard());
        let plan = FaultPlan::new("t", seed, vec![TierPlan::with_rates("sim-test", rates)]);
        Arc::new(FaultyModel::new(sim(meter), Arc::new(plan), clock.clone()))
    }

    #[test]
    fn retries_through_transient_faults() {
        let clock = SimClock::new();
        let inner =
            faulty(FaultRates { rate_limited: 0.5, ..FaultRates::default() }, 11, &clock);
        let client = ResilientClient::with_defaults(inner, clock.clone());
        let mut ok = 0;
        for n in 0..50 {
            if client.complete(&prompt(n)).is_ok() {
                ok += 1;
            }
            // Requests arrive over time; give an opened breaker the
            // chance to cool down and probe.
            clock.advance(2_000);
        }
        // P(4 consecutive rate-limits) ≈ 6% per call; most calls succeed.
        assert!(ok >= 40, "ok={ok}");
        let stats = client.stats();
        assert!(stats.retries > 0, "some retries must have happened");
        assert!(stats.backoff_ms_total > 0);
    }

    #[test]
    fn per_call_retries_never_exceed_cap() {
        let clock = SimClock::new();
        let inner = faulty(FaultRates { rate_limited: 0.9, ..FaultRates::default() }, 5, &clock);
        let client = ResilientClient::with_defaults(inner, clock);
        for n in 0..30 {
            let (_, cs) = client.complete_within(&prompt(n), Deadline::unbounded());
            assert!(cs.retries <= client.policy().max_retries, "{cs:?}");
        }
    }

    #[test]
    fn breaker_opens_under_outage_and_rejects() {
        let clock = SimClock::new();
        let meter = UsageMeter::new(PriceTable::standard());
        let plan = FaultPlan::new(
            "outage",
            1,
            vec![TierPlan::quiet("sim-test").outage(Window::new(0, 60_000))],
        );
        let inner = Arc::new(FaultyModel::new(sim(meter), Arc::new(plan), clock.clone()));
        // No retries: the outage's retry-after hint would otherwise let
        // a retry sleep straight past the window.
        let client = ResilientClient::new(
            inner,
            RetryPolicy::none(),
            BreakerConfig { failure_threshold: 3, cooldown_ms: 10_000, jitter: 0.0, seed: 0 },
            clock.clone(),
        );
        let mut rejections = 0;
        for n in 0..10 {
            match client.complete_within(&prompt(n), Deadline::unbounded()).0 {
                Err(ResilError::BreakerOpen { .. }) => rejections += 1,
                Err(_) => {}
                Ok(_) => panic!("nothing can succeed during a total outage"),
            }
        }
        assert!(rejections > 0, "breaker must start rejecting");
        assert_eq!(client.breaker_state(), llmdm_resil::BreakerState::Open);
        assert_eq!(client.stats().breaker_rejections, rejections);
    }

    #[test]
    fn breaker_recovers_after_outage_via_probe() {
        let clock = SimClock::new();
        let meter = UsageMeter::new(PriceTable::standard());
        let plan = FaultPlan::new(
            "outage",
            1,
            vec![TierPlan::quiet("sim-test").outage(Window::new(0, 5_000))],
        );
        let inner = Arc::new(FaultyModel::new(sim(meter), Arc::new(plan), clock.clone()));
        let client = ResilientClient::new(
            inner,
            RetryPolicy::none(),
            BreakerConfig { failure_threshold: 2, cooldown_ms: 1_000, jitter: 0.0, seed: 0 },
            clock.clone(),
        );
        // Trip the breaker inside the outage.
        for n in 0..3 {
            let _ = client.complete(&prompt(n));
        }
        assert_eq!(client.breaker_state(), llmdm_resil::BreakerState::Open);
        // Past the outage and the cooldown, the probe succeeds and the
        // breaker re-closes.
        clock.advance(10_000);
        assert!(client.complete(&prompt(100)).is_ok());
        assert_eq!(client.breaker_state(), llmdm_resil::BreakerState::Closed);
    }

    #[test]
    fn deadline_bounds_the_retry_storm() {
        let clock = SimClock::new();
        let inner = faulty(FaultRates { rate_limited: 1.0, ..FaultRates::default() }, 9, &clock);
        let client = ResilientClient::new(
            Arc::clone(&inner) as Arc<dyn LanguageModel>,
            RetryPolicy::new(10, Backoff::new(100, 1_000, 0)),
            BreakerConfig { failure_threshold: 100, cooldown_ms: 1, jitter: 0.0, seed: 0 },
            clock.clone(),
        );
        let deadline = Deadline::after(&clock, 300);
        let (res, _) = client.complete_within(&prompt(0), deadline);
        assert!(matches!(res, Err(ResilError::DeadlineExceeded { .. })), "{res:?}");
        assert!(clock.now_ms() <= 300, "must not overrun the deadline: {}", clock.now_ms());
    }

    #[test]
    fn permanent_errors_fail_fast_without_retries() {
        let clock = SimClock::new();
        let meter = UsageMeter::new(PriceTable::standard());
        let client = ResilientClient::with_defaults(sim(meter), clock);
        let (res, cs) = client
            .complete_within(&CompletionRequest::new("no envelope here"), Deadline::unbounded());
        assert!(matches!(res, Err(ResilError::Exhausted { attempts: 1, .. })));
        assert_eq!(cs.retries, 0);
    }

    #[test]
    fn error_mapping_back_to_model_vocabulary() {
        let e = resil_to_model_error(ResilError::BreakerOpen { retry_after_ms: 9 });
        assert_eq!(e, ModelError::transient(TransientKind::Unavailable, 9));
        let d: ResilError<ModelError> =
            ResilError::DeadlineExceeded { attempts: 1, last_error: None };
        assert_eq!(resil_to_model_error(d), ModelError::transient(TransientKind::Timeout, 0));
        let x = ResilError::Exhausted { attempts: 2, last_error: ModelError::EmptyInput };
        assert_eq!(resil_to_model_error(x), ModelError::EmptyInput);
    }
}
