//! Simulated inference latency.
//!
//! §II-E of the paper rules LLMs out of low-latency applications because
//! "LLMs are very expensive at inference". To let the workspace reason
//! about latency (e.g., cache-hit time savings, cascade tail latency) we
//! attach a simple queueing-free latency model to each tier: a fixed
//! network/setup overhead plus a per-output-token decode time, with mild
//! deterministic jitter. The model *computes* durations; it never sleeps.

use std::time::Duration;

use crate::hash::{combine, unit_f64};

/// Latency parameters for one model tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed per-call overhead.
    pub overhead: Duration,
    /// Time to decode one output token.
    pub per_output_token: Duration,
    /// Time to ingest 1k prompt tokens (prefill).
    pub per_1k_input_tokens: Duration,
    /// Jitter amplitude as a fraction of the deterministic latency.
    pub jitter: f64,
}

impl LatencyModel {
    /// Latency for a call, deterministic given `call_seed`.
    pub fn latency(&self, input_tokens: usize, output_tokens: usize, call_seed: u64) -> Duration {
        let base = self.overhead.as_secs_f64()
            + self.per_output_token.as_secs_f64() * output_tokens as f64
            + self.per_1k_input_tokens.as_secs_f64() * (input_tokens as f64 / 1000.0);
        let u = unit_f64(combine(call_seed, 0x6c6174)); // "lat"
        let factor = 1.0 + self.jitter * (2.0 * u - 1.0);
        Duration::from_secs_f64((base * factor).max(0.0))
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            overhead: Duration::from_millis(120),
            per_output_token: Duration::from_millis(20),
            per_1k_input_tokens: Duration::from_millis(80),
            jitter: 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_output_tokens_take_longer() {
        let m = LatencyModel::default();
        assert!(m.latency(100, 200, 7) > m.latency(100, 10, 7));
    }

    #[test]
    fn deterministic_per_seed() {
        let m = LatencyModel::default();
        assert_eq!(m.latency(50, 50, 3), m.latency(50, 50, 3));
    }

    #[test]
    fn jitter_varies_with_seed() {
        let m = LatencyModel::default();
        assert_ne!(m.latency(50, 50, 3), m.latency(50, 50, 4));
    }

    #[test]
    fn never_negative() {
        let m = LatencyModel { jitter: 5.0, ..LatencyModel::default() };
        for s in 0..100 {
            let _ = m.latency(10, 10, s); // from_secs_f64 panics on negative
        }
    }
}
