//! The capability model: how accurate is a model tier on a task of a given
//! difficulty, and how do few-shot examples help?
//!
//! This is the calibrated core of the LLM simulation. Three empirical
//! regularities the paper's experiments depend on are encoded here:
//!
//! 1. **Scale** — larger tiers have higher base capability (Table I:
//!    gpt-4 92.5% vs babbage-002 27.5%).
//! 2. **Difficulty sensitivity** — simpler inputs are answered correctly
//!    more often (the mechanism behind Table II's "sub-queries tend to be
//!    simpler, increasing the possibility of converting them into correct
//!    SQL").
//! 3. **In-context learning** — more few-shot examples reduce effective
//!    difficulty (the mechanism behind Table II's "after query combination,
//!    the number of examples in the prompt will increase for each query,
//!    which can help LLMs reason the query better").


/// Accuracy curve parameters for one model tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapabilityCurve {
    /// Base capability in `[0, 1]`: accuracy on a difficulty-0 task with no
    /// examples.
    pub capability: f64,
    /// How steeply accuracy decays with difficulty (≥ 0).
    pub difficulty_slope: f64,
    /// Maximum fraction of difficulty that few-shot examples can remove.
    pub shot_gain: f64,
    /// Number of examples at which `shot_gain` saturates.
    pub shot_saturation: usize,
}

impl CapabilityCurve {
    /// Construct a curve; panics on out-of-range parameters (programmer
    /// error, not data error).
    pub fn new(capability: f64, difficulty_slope: f64, shot_gain: f64, shot_saturation: usize) -> Self {
        assert!((0.0..=1.0).contains(&capability), "capability in [0,1]");
        assert!(difficulty_slope >= 0.0);
        assert!((0.0..=1.0).contains(&shot_gain));
        assert!(shot_saturation > 0);
        CapabilityCurve { capability, difficulty_slope, shot_gain, shot_saturation }
    }

    /// Probability this tier answers a task correctly.
    ///
    /// `difficulty` in `[0, 1]`; `shots` = number of in-context examples.
    /// The effective difficulty after ICL is
    /// `d * (1 - shot_gain * min(shots, sat)/sat)`, and accuracy is
    /// `capability * (1 - slope * d_eff)` clamped to `[floor, 1]` where the
    /// floor is a small guess-rate.
    pub fn p_correct(&self, difficulty: f64, shots: usize) -> f64 {
        let d = difficulty.clamp(0.0, 1.0);
        let shot_frac = (shots.min(self.shot_saturation) as f64) / self.shot_saturation as f64;
        let d_eff = d * (1.0 - self.shot_gain * shot_frac);
        let p = self.capability * (1.0 - self.difficulty_slope * d_eff);
        p.clamp(0.02, 1.0)
    }
}

impl Default for CapabilityCurve {
    fn default() -> Self {
        CapabilityCurve::new(0.8, 0.6, 0.5, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn easy_beats_hard() {
        let c = CapabilityCurve::default();
        assert!(c.p_correct(0.1, 0) > c.p_correct(0.9, 0));
    }

    #[test]
    fn shots_help_on_hard_tasks() {
        let c = CapabilityCurve::default();
        assert!(c.p_correct(0.8, 8) > c.p_correct(0.8, 0));
    }

    #[test]
    fn shots_saturate() {
        let c = CapabilityCurve::default();
        assert_eq!(c.p_correct(0.8, 8), c.p_correct(0.8, 100));
    }

    #[test]
    fn bigger_capability_bigger_accuracy() {
        let small = CapabilityCurve::new(0.3, 0.6, 0.5, 8);
        let large = CapabilityCurve::new(0.95, 0.6, 0.5, 8);
        for d in [0.0, 0.3, 0.7, 1.0] {
            assert!(large.p_correct(d, 0) > small.p_correct(d, 0));
        }
    }

    #[test]
    fn probability_bounds() {
        let c = CapabilityCurve::new(1.0, 2.0, 0.0, 1);
        for d in [0.0, 0.5, 1.0, 5.0, -3.0] {
            let p = c.p_correct(d, 0);
            assert!((0.0..=1.0).contains(&p), "p={p} at d={d}");
        }
    }

    #[test]
    #[should_panic]
    fn invalid_capability_panics() {
        CapabilityCurve::new(1.5, 0.0, 0.0, 1);
    }
}
