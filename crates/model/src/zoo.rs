//! The standard three-tier model zoo.
//!
//! Mirrors the paper's Table I line-up: a small, cheap, weak model
//! (≈ babbage-002), a mid-priced workhorse (≈ gpt-3.5-turbo), and an
//! expensive, strong model (≈ gpt-4). Capability parameters are calibrated
//! so that the zoo reproduces the paper's accuracy band on the multi-hop QA
//! workload (small ≈ 27.5%, large ≈ 92.5%).

use std::sync::Arc;
use std::time::Duration;

use crate::capability::CapabilityCurve;
use crate::hash::seed_for;
use crate::latency::LatencyModel;
use crate::pricing::PriceTable;
use crate::sim::{SimLlm, SimLlmConfig};
use crate::solver::PromptSolver;
use crate::usage::UsageMeter;

/// The three standard tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelTier {
    /// ≈ babbage-002: cheap, weak.
    Small,
    /// ≈ gpt-3.5-turbo: mid cost, decent.
    Medium,
    /// ≈ gpt-4: expensive, strong.
    Large,
}

impl ModelTier {
    /// All tiers, cheapest first (cascade order).
    pub const ALL: [ModelTier; 3] = [ModelTier::Small, ModelTier::Medium, ModelTier::Large];

    /// The tier's model name.
    pub fn name(self) -> &'static str {
        match self {
            ModelTier::Small => "sim-small",
            ModelTier::Medium => "sim-medium",
            ModelTier::Large => "sim-large",
        }
    }
}

/// A zoo of simulated models sharing one tokenizer, one usage meter, and
/// one solver registry.
pub struct ModelZoo {
    models: Vec<(ModelTier, Arc<SimLlm>)>,
    meter: UsageMeter,
    seed: u64,
}

impl std::fmt::Debug for ModelZoo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelZoo").field("seed", &self.seed).finish()
    }
}

impl ModelZoo {
    /// Build the standard small/medium/large zoo.
    ///
    /// Capability calibration: on the multi-hop QA difficulty band (easy
    /// ≈ 0.05, hard ≈ 0.2, zero-shot) the tiers land at ≈ 28% / 75% / 92%
    /// accuracy, matching the paper's Table I (babbage-002 27.5%, gpt-4
    /// 92.5%). The same curves put grammar-complex NL2SQL queries
    /// (difficulty ≈ 0.9) at ≈ 79% for the large tier with 4-shot prompts
    /// and their decomposed sub-queries (difficulty ≈ 0.07) at ≈ 95%,
    /// matching Table II's origin/decomposition bands.
    pub fn standard(seed: u64) -> Self {
        let meter = UsageMeter::new(PriceTable::standard());
        let mk = |tier: ModelTier, cap: f64, slope: f64, win: usize, tok_ms: u64| {
            let config = SimLlmConfig {
                name: tier.name().to_string(),
                curve: CapabilityCurve::new(cap, slope, 0.5, 8),
                context_window: win,
                latency: LatencyModel {
                    overhead: Duration::from_millis(100),
                    per_output_token: Duration::from_millis(tok_ms),
                    per_1k_input_tokens: Duration::from_millis(60),
                    jitter: 0.1,
                },
                confidence_noise: 0.12,
                seed: seed_for(seed, tier.name()),
            };
            Arc::new(SimLlm::new(config, meter.clone()))
        };
        let models = vec![
            (ModelTier::Small, mk(ModelTier::Small, 0.30, 0.50, 4_096, 8)),
            (ModelTier::Medium, mk(ModelTier::Medium, 0.80, 0.45, 16_384, 20)),
            (ModelTier::Large, mk(ModelTier::Large, 0.97, 0.40, 128_000, 45)),
        ];
        ModelZoo { models, meter, seed }
    }

    /// The model for a tier.
    pub fn get(&self, tier: ModelTier) -> Arc<SimLlm> {
        self.models
            .iter()
            .find(|(t, _)| *t == tier)
            .map(|(_, m)| Arc::clone(m))
            .expect("standard zoo always has all tiers")
    }

    /// The small tier.
    pub fn small(&self) -> Arc<SimLlm> {
        self.get(ModelTier::Small)
    }

    /// The medium tier.
    pub fn medium(&self) -> Arc<SimLlm> {
        self.get(ModelTier::Medium)
    }

    /// The large tier.
    pub fn large(&self) -> Arc<SimLlm> {
        self.get(ModelTier::Large)
    }

    /// Models in cascade order (cheapest first).
    pub fn cascade_order(&self) -> Vec<Arc<SimLlm>> {
        ModelTier::ALL.iter().map(|&t| self.get(t)).collect()
    }

    /// The shared usage meter.
    pub fn meter(&self) -> &UsageMeter {
        &self.meter
    }

    /// Register a solver on every tier (higher crates call this to teach
    /// the zoo their task).
    pub fn register_solver(&self, solver: Arc<dyn PromptSolver>) {
        for (_, model) in &self.models {
            model.register(Arc::clone(&solver));
        }
    }

    /// The zoo's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{CompletionRequest, LanguageModel};
    use crate::solver::PromptEnvelope;

    #[test]
    fn standard_zoo_has_three_tiers() {
        let zoo = ModelZoo::standard(1);
        assert_eq!(zoo.cascade_order().len(), 3);
        assert_eq!(zoo.small().name(), "sim-small");
        assert_eq!(zoo.large().name(), "sim-large");
    }

    #[test]
    fn tiers_share_a_meter() {
        let zoo = ModelZoo::standard(1);
        let req = CompletionRequest::new(
            PromptEnvelope::builder("oracle").header("gold", "x").header("difficulty", "0").build(),
        );
        zoo.small().complete(&req).unwrap();
        zoo.large().complete(&req).unwrap();
        let snap = zoo.meter().snapshot();
        assert_eq!(snap.total_calls(), 2);
        assert!(snap.model("sim-small").is_some());
        assert!(snap.model("sim-large").is_some());
    }

    #[test]
    fn large_costs_more_than_small_for_same_prompt() {
        let zoo = ModelZoo::standard(1);
        let req = CompletionRequest::new(
            PromptEnvelope::builder("oracle")
                .header("gold", "same answer text")
                .header("difficulty", "0")
                .body("some moderately long body to give nonzero input tokens")
                .build(),
        );
        let small = zoo.small().complete(&req).unwrap();
        let large = zoo.large().complete(&req).unwrap();
        assert!(large.cost > small.cost * 10.0, "large={} small={}", large.cost, small.cost);
    }

    #[test]
    fn zoo_accuracy_band_matches_table1_calibration() {
        // On the QA workload's difficulty band (easy 0.05 / hard 0.2) the
        // small tier should land in the 20-40% band and the large tier at
        // or above 88%.
        let zoo = ModelZoo::standard(17);
        let acc = |m: Arc<SimLlm>| {
            let mut ok = 0;
            for i in 0..400u32 {
                let d = if i % 2 == 0 { 0.05 } else { 0.2 };
                let prompt = PromptEnvelope::builder("oracle")
                    .header("gold", "ans")
                    .header("difficulty", d)
                    .header("nonce", i)
                    .header("alt", "wrong")
                    .build();
                if m.complete(&CompletionRequest::new(prompt)).unwrap().text == "ans" {
                    ok += 1;
                }
            }
            ok as f64 / 400.0
        };
        let s = acc(zoo.small());
        let l = acc(zoo.large());
        assert!((0.15..=0.45).contains(&s), "small acc {s}");
        assert!(l >= 0.85, "large acc {l}");
    }

    #[test]
    fn register_solver_after_sharing() {
        struct Upper;
        impl PromptSolver for Upper {
            fn task_id(&self) -> &str {
                "upper"
            }
            fn solve(
                &self,
                env: &PromptEnvelope,
            ) -> Result<crate::solver::SolvedTask, crate::error::ModelError> {
                Ok(crate::solver::SolvedTask::new(env.body.trim().to_uppercase(), 0.0))
            }
        }
        let zoo = ModelZoo::standard(3);
        zoo.register_solver(Arc::new(Upper));
        let req =
            CompletionRequest::new(PromptEnvelope::builder("upper").body("make me loud").build());
        assert_eq!(zoo.large().complete(&req).unwrap().text, "MAKE ME LOUD");
    }
}
