//! Property-based tests for the model substrate's core invariants.

use llmdm_model::hash::{combine, fnv1a_str, seed_for, unit_f64};
use llmdm_model::{CapabilityCurve, Embedder, PromptEnvelope, Tokenizer};
use llmdm_rt::proptest;
use llmdm_rt::proptest::prelude::*;

proptest! {
    /// The tokenizer is lossless on arbitrary unicode input.
    #[test]
    fn tokenizer_roundtrip(s in "\\PC{0,200}") {
        let t = Tokenizer::new();
        prop_assert_eq!(t.decode(&t.encode(&s)), s);
    }

    /// `count` always agrees with `encode().len()`.
    #[test]
    fn tokenizer_count_matches_encode(s in "\\PC{0,200}") {
        let t = Tokenizer::new();
        prop_assert_eq!(t.count(&s), t.encode(&s).len());
    }

    /// Token count is monotone under concatenation (subadditivity bound:
    /// concatenation can merge at most the boundary pieces, never grow
    /// beyond the sum).
    #[test]
    fn tokenizer_concat_bounded(a in "\\PC{0,100}", b in "\\PC{0,100}") {
        let t = Tokenizer::new();
        let joined = format!("{a}{b}");
        prop_assert!(t.count(&joined) <= t.count(&a) + t.count(&b) + 1);
    }

    /// Capability probabilities are always valid probabilities, and more
    /// shots never hurt.
    #[test]
    fn capability_bounds_and_monotonicity(
        cap in 0.0f64..=1.0,
        slope in 0.0f64..=2.0,
        gain in 0.0f64..=1.0,
        d in -1.0f64..=2.0,
        shots in 0usize..32,
    ) {
        let c = CapabilityCurve::new(cap, slope, gain, 8);
        let p = c.p_correct(d, shots);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(c.p_correct(d, shots + 1) >= p - 1e-12);
    }

    /// Harder tasks are never easier.
    #[test]
    fn capability_difficulty_monotone(d1 in 0.0f64..=1.0, d2 in 0.0f64..=1.0) {
        let c = CapabilityCurve::default();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(c.p_correct(lo, 0) >= c.p_correct(hi, 0) - 1e-12);
    }

    /// Embeddings are unit-norm and deterministic for any non-empty text.
    #[test]
    fn embedding_unit_norm(s in "\\PC{1,120}") {
        prop_assume!(!s.is_empty());
        let e = Embedder::standard(3);
        let v = e.embed(&s).unwrap();
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-3, "norm {}", norm);
        prop_assert_eq!(v, e.embed(&s).unwrap());
    }

    /// Envelope build → parse recovers task, headers, and body for
    /// header-safe values.
    #[test]
    fn envelope_roundtrip(
        task in "[a-z][a-z0-9-]{0,15}",
        key in "[a-z][a-z0-9_]{0,10}",
        value in "[ -~&&[^\\r\\n]]{0,40}",
        body in "\\PC{0,120}",
    ) {
        prop_assume!(key != "task");
        prop_assume!(!body.starts_with("### "));
        let prompt = PromptEnvelope::builder(&task)
            .header(&key, value.trim())
            .body(body.clone())
            .build();
        let env = PromptEnvelope::parse(&prompt).unwrap();
        prop_assert_eq!(&env.task, &task);
        prop_assert_eq!(env.get(&key).unwrap(), value.trim());
        prop_assert_eq!(&env.body, &body);
    }

    /// unit_f64 stays in [0, 1) for any hash input.
    #[test]
    fn unit_f64_range(x in any::<u64>()) {
        let u = unit_f64(x);
        prop_assert!((0.0..1.0).contains(&u));
    }

    /// seed_for separates labels and seeds (no trivial collisions on
    /// small perturbations).
    #[test]
    fn seed_for_separation(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let other = format!("{label}x");
        prop_assert_ne!(seed_for(seed, &label), seed_for(seed, &other));
        prop_assert_ne!(seed_for(seed, &label), seed_for(seed.wrapping_add(1), &label));
    }

    /// combine is order-sensitive for distinct operands.
    #[test]
    fn combine_order_sensitive(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(combine(a, b), combine(b, a));
    }

    /// fnv1a_str is stable and distinguishes appended content.
    #[test]
    fn fnv_appending_changes_hash(s in "[a-z]{0,30}") {
        let extended = format!("{s}!");
        prop_assert_ne!(fnv1a_str(&s), fnv1a_str(&extended));
    }
}
