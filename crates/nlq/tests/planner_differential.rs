//! Cross-crate differential check: every gold SQL query the NL2SQL
//! workload generator can emit must return bit-identical results on the
//! sqlengine planner and on the direct-executor oracle, across several
//! generated domains and workload seeds.

use llmdm_nlq::{concert_domain, fig7_queries, Workload, WorkloadConfig};
use llmdm_sqlengine::exec::{execute_select, execute_select_direct};
use llmdm_sqlengine::{parse_statement, Database, Statement};

fn check(db: &Database, sql: &str) {
    let stmt = parse_statement(sql).unwrap_or_else(|e| panic!("gold SQL parse failed: {sql}: {e}"));
    let Statement::Select(s) = stmt else { panic!("gold SQL not a SELECT: {sql}") };
    let planned = execute_select(db, &s)
        .unwrap_or_else(|e| panic!("planner failed on gold SQL {sql}: {e}"));
    let direct = execute_select_direct(db, &s)
        .unwrap_or_else(|e| panic!("direct path failed on gold SQL {sql}: {e}"));
    assert!(
        planned.bit_eq(&direct),
        "planner/direct divergence on gold SQL {sql}\n planner: {planned:?}\n direct:  {direct:?}"
    );
}

#[test]
fn fig7_gold_queries_agree_across_domains() {
    for domain_seed in [1, 7, 42] {
        let db = concert_domain(domain_seed);
        for q in fig7_queries() {
            check(&db, &q.gold_sql);
        }
    }
}

#[test]
fn generated_workload_gold_queries_agree() {
    for seed in 0..4u64 {
        let db = concert_domain(seed + 100);
        let workload = Workload::generate(WorkloadConfig {
            n: 24,
            atom_pool: 10,
            single_fraction: 0.5,
            superlative_fraction: 0.4,
            seed,
        });
        for q in &workload.queries {
            check(&db, &q.gold_sql);
        }
    }
}
