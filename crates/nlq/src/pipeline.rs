//! The three Table-II pipelines: origin, decomposition, and
//! decomposition + combination — run side by side over the same workload,
//! model zoo, and meter.

use std::collections::BTreeMap;
use std::sync::Arc;

use llmdm_model::{CompletionRequest, LanguageModel, ModelZoo, UsageSnapshot};
use llmdm_sqlengine::Database;

use crate::decompose::{decompose, recompose, unique_atoms};
use crate::prompt::{ExamplePool, PromptBuilder};
use crate::solver::Nl2SqlSolver;
use crate::workload::{NlQuery, Workload, WorkloadConfig};

/// Metrics from one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Execution accuracy over the workload.
    pub accuracy: f64,
    /// Total dollar cost of model calls.
    pub cost: f64,
    /// Number of model calls.
    pub calls: u64,
    /// Total tokens moved.
    pub tokens: u64,
}

/// The full Table II reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Report {
    /// Per-query prompting, no decomposition.
    pub origin: PipelineReport,
    /// Decompose → translate unique sub-queries → recompose locally.
    pub decomposition: PipelineReport,
    /// Decomposition plus combined prompts sharing example blocks.
    pub combination: PipelineReport,
}

fn report_from(meter_before: &UsageSnapshot, zoo: &ModelZoo, correct: usize, total: usize) -> PipelineReport {
    let snap = zoo.meter().snapshot();
    PipelineReport {
        accuracy: correct as f64 / total.max(1) as f64,
        cost: snap.dollars_since(meter_before),
        calls: snap.total_calls() - meter_before.total_calls(),
        tokens: snap.total_tokens() - meter_before.total_tokens(),
    }
}

/// Execute the gold SQL for each query once (the reference results).
///
/// Gold queries run on the *direct* (pre-planner) executor so execution
/// accuracy is judged against an independent oracle: predicted SQL goes
/// through the planner, gold SQL does not, and a planner bug cannot
/// silently agree with itself on both sides of the comparison.
fn gold_results(db: &Database, queries: &[NlQuery]) -> Vec<llmdm_sqlengine::ResultSet> {
    queries
        .iter()
        .map(|q| {
            let stmt = llmdm_sqlengine::parse_statement(&q.gold_sql).expect("gold SQL parses");
            match stmt {
                llmdm_sqlengine::Statement::Select(s) => {
                    llmdm_sqlengine::exec::execute_select_direct(db, &s)
                        .expect("gold SQL executes")
                }
                _ => unreachable!("gold SQL is always SELECT"),
            }
        })
        .collect()
}

fn execute_predicted(db: &Database, sql: &str) -> Option<llmdm_sqlengine::ResultSet> {
    let stmt = llmdm_sqlengine::parse_statement(sql).ok()?;
    match stmt {
        llmdm_sqlengine::Statement::Select(s) => {
            llmdm_sqlengine::exec::execute_select(db, &s).ok()
        }
        _ => None,
    }
}

/// Run the origin pipeline: one full-query prompt per workload query.
pub fn run_origin(
    db: &Database,
    queries: &[NlQuery],
    zoo: &ModelZoo,
    builder: &PromptBuilder,
) -> PipelineReport {
    let mut span = llmdm_obs::span("nlq.origin");
    span.field("queries", queries.len());
    let model = zoo.large();
    let before = zoo.meter().snapshot();
    let gold = gold_results(db, queries);
    let mut correct = 0usize;
    for (q, gold_rs) in queries.iter().zip(&gold) {
        let prompt = builder.single(&q.text);
        let Ok(completion) = model.complete(&CompletionRequest::new(prompt)) else {
            continue;
        };
        if let Some(rs) = execute_predicted(db, completion.text.trim()) {
            if rs.bag_eq(gold_rs) {
                correct += 1;
            }
        }
    }
    report_from(&before, zoo, correct, queries.len())
}

/// Run the decomposition pipeline: translate each *unique* sub-query once,
/// recompose locally.
pub fn run_decomposition(
    db: &Database,
    queries: &[NlQuery],
    zoo: &ModelZoo,
    builder: &PromptBuilder,
) -> PipelineReport {
    let mut span = llmdm_obs::span("nlq.decompose");
    let model = zoo.large();
    let before = zoo.meter().snapshot();
    let gold = gold_results(db, queries);

    let atoms = unique_atoms(queries);
    if span.is_recording() {
        // The decomposition fan-out: N queries collapse to M unique atoms,
        // each translated exactly once (M model calls instead of N).
        span.field("queries", queries.len());
        span.field("unique_atoms", atoms.len());
        llmdm_obs::counter_add("nlq.decompose.queries", queries.len() as f64);
        llmdm_obs::counter_add("nlq.decompose.unique_atoms", atoms.len() as f64);
        llmdm_obs::observe("nlq.decompose.fanout", atoms.len() as f64);
    }
    let mut answers: BTreeMap<String, String> = BTreeMap::new();
    for (key, atom) in &atoms {
        let prompt = builder.single(&atom.sub_question());
        if let Ok(completion) = model.complete(&CompletionRequest::new(prompt)) {
            answers.insert(key.clone(), completion.text.trim().to_string());
        }
    }

    let mut correct = 0usize;
    for (q, gold_rs) in queries.iter().zip(&gold) {
        let d = decompose(q);
        if let Ok(rs) = recompose(db, &d, &answers) {
            if rs.bag_eq(gold_rs) {
                correct += 1;
            }
        }
    }
    report_from(&before, zoo, correct, queries.len())
}

/// Run decomposition + combination: unique sub-queries batched into
/// combined prompts that share one example block.
pub fn run_combination(
    db: &Database,
    queries: &[NlQuery],
    zoo: &ModelZoo,
    builder: &PromptBuilder,
    batch_size: usize,
) -> PipelineReport {
    let mut span = llmdm_obs::span("nlq.combine");
    let model = zoo.large();
    let before = zoo.meter().snapshot();
    let gold = gold_results(db, queries);

    let atoms = unique_atoms(queries);
    let entries: Vec<(String, String)> =
        atoms.iter().map(|(k, a)| (k.clone(), a.sub_question())).collect();
    if span.is_recording() {
        let batches = entries.len().div_ceil(batch_size.max(1));
        span.field("queries", queries.len());
        span.field("unique_atoms", atoms.len());
        span.field("batch_size", batch_size);
        span.field("batches", batches);
        llmdm_obs::counter_add("nlq.combine.batches", batches as f64);
    }
    let mut answers: BTreeMap<String, String> = BTreeMap::new();
    for chunk in entries.chunks(batch_size.max(1)) {
        let questions: Vec<&str> = chunk.iter().map(|(_, q)| q.as_str()).collect();
        let prompt = builder.combined(&questions);
        let Ok(completion) = model.complete(&CompletionRequest::new(prompt)) else {
            continue;
        };
        // One output line per question, in order.
        for ((key, _), line) in chunk.iter().zip(completion.text.lines()) {
            answers.insert(key.clone(), line.trim().to_string());
        }
    }

    let mut correct = 0usize;
    for (q, gold_rs) in queries.iter().zip(&gold) {
        let d = decompose(q);
        if let Ok(rs) = recompose(db, &d, &answers) {
            if rs.bag_eq(gold_rs) {
                correct += 1;
            }
        }
    }
    report_from(&before, zoo, correct, queries.len())
}

/// Reproduce Table II end to end with the default workload.
pub fn run_table2(seed: u64) -> Table2Report {
    run_table2_with(seed, WorkloadConfig { seed, ..WorkloadConfig::default() })
}

/// Reproduce Table II with an explicit workload configuration.
pub fn run_table2_with(seed: u64, config: WorkloadConfig) -> Table2Report {
    let db = crate::domain::concert_domain(seed);
    let workload = Workload::generate(config);
    let zoo = ModelZoo::standard(seed);
    zoo.register_solver(Arc::new(Nl2SqlSolver));
    let builder = PromptBuilder::new(ExamplePool::generate(seed), db_summary(&db));

    let origin = run_origin(&db, &workload.queries, &zoo, &builder);
    let decomposition = run_decomposition(&db, &workload.queries, &zoo, &builder);
    let combination = run_combination(&db, &workload.queries, &zoo, &builder, 5);
    Table2Report { origin, decomposition, combination }
}

fn db_summary(db: &Database) -> String {
    db.schema_summary()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_holds() {
        // The paper's Table II shape: decomposition improves accuracy while
        // cutting cost; combination keeps accuracy and cuts cost further.
        let r = run_table2(8);
        assert!(
            r.decomposition.accuracy >= r.origin.accuracy + 0.05,
            "decomposition should improve accuracy: origin={:.2} decomp={:.2}",
            r.origin.accuracy,
            r.decomposition.accuracy
        );
        assert!(
            r.decomposition.cost < r.origin.cost,
            "decomposition should cut cost: origin={:.4} decomp={:.4}",
            r.origin.cost,
            r.decomposition.cost
        );
        assert!(
            r.combination.cost < r.decomposition.cost * 0.8,
            "combination should cut cost further: decomp={:.4} comb={:.4}",
            r.decomposition.cost,
            r.combination.cost
        );
        assert!(
            r.combination.accuracy >= r.origin.accuracy,
            "combination should not regress below origin"
        );
    }

    #[test]
    fn origin_accuracy_in_paper_band() {
        // Averaged over seeds, origin should land in the 70-90% band the
        // paper reports (79%).
        let mut acc = 0.0;
        for seed in [1u64, 2, 3] {
            acc += run_table2(seed).origin.accuracy;
        }
        acc /= 3.0;
        assert!((0.65..=0.92).contains(&acc), "origin accuracy {acc}");
    }

    #[test]
    fn decomposition_makes_fewer_calls_than_origin() {
        let r = run_table2(11);
        assert!(r.decomposition.calls < r.origin.calls);
        assert!(r.combination.calls < r.decomposition.calls);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_table2(5);
        let b = run_table2(5);
        assert_eq!(a, b);
    }
}

