//! Query decomposition and local recomposition (§III-B1, Fig. 7).
//!
//! A compositional query decomposes into its atomic sub-queries; identical
//! sub-queries across the workload are hash-consed (Fig. 7's "Q11 and Q21
//! are the same sub-query, so they only need to call the LLM once"). The
//! model translates each unique sub-question to SQL; recomposition then
//! happens *locally* — set operations over the returned stadium-id sets —
//! without further model calls.

use std::collections::BTreeMap;

use llmdm_sqlengine::{Database, ResultSet, SqlError, Value};

use crate::atoms::{Atom, Connective, QueryShape};
use crate::workload::NlQuery;

/// The decomposition of one workload query.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// The original query id.
    pub query_id: usize,
    /// The recomposition plan (shape with atom slots).
    pub shape: QueryShape,
    /// Canonical keys of the sub-queries, in shape order.
    pub atom_keys: Vec<String>,
}

/// Decompose a query into its atoms.
pub fn decompose(q: &NlQuery) -> Decomposition {
    let atoms = q.shape.atoms();
    Decomposition {
        query_id: q.id,
        shape: q.shape,
        atom_keys: atoms.iter().map(Atom::key).collect(),
    }
}

/// Collect the unique atoms of a workload, keyed canonically. The map's
/// size is the number of model calls the decomposed pipeline makes.
pub fn unique_atoms(queries: &[NlQuery]) -> BTreeMap<String, Atom> {
    let mut map = BTreeMap::new();
    for q in queries {
        for a in q.shape.atoms() {
            map.insert(a.key(), a);
        }
    }
    map
}

/// Execute a predicted id-SQL and extract the (deduplicated) stadium-id
/// set.
pub fn id_set(db: &Database, sql: &str) -> Result<Vec<i64>, SqlError> {
    let stmt = llmdm_sqlengine::parse_statement(sql)?;
    let select = match stmt {
        llmdm_sqlengine::Statement::Select(s) => s,
        other => return Err(SqlError::Exec(format!("expected SELECT, got {other:?}"))),
    };
    let rs = llmdm_sqlengine::exec::execute_select(db, &select)?;
    if rs.columns.is_empty() {
        return Err(SqlError::Exec("id sub-query returned no columns".into()));
    }
    let mut ids: Vec<i64> = rs
        .rows
        .iter()
        .filter_map(|r| match &r[0] {
            Value::Int(i) => Some(*i),
            _ => None,
        })
        .collect();
    ids.sort_unstable();
    ids.dedup();
    Ok(ids)
}

/// Recompose a query's final result from its sub-query answers.
///
/// `answers` maps atom key → the model's predicted SQL for that sub-query.
/// Set semantics follow the connective; the id set is then mapped to
/// stadium names through the `stadium` table directly (no model call).
pub fn recompose(
    db: &Database,
    decomposition: &Decomposition,
    answers: &BTreeMap<String, String>,
) -> Result<ResultSet, SqlError> {
    let sets: Vec<Vec<i64>> = decomposition
        .atom_keys
        .iter()
        .map(|k| {
            let sql = answers
                .get(k)
                .ok_or_else(|| SqlError::Exec(format!("missing sub-answer for {k}")))?;
            id_set(db, sql)
        })
        .collect::<Result<_, _>>()?;

    let final_ids: Vec<i64> = match (&decomposition.shape, sets.as_slice()) {
        (QueryShape::Single(_), [a]) => a.clone(),
        (QueryShape::Pair(_, conn, _), [a, b]) => match conn {
            Connective::Or => {
                let mut u = a.clone();
                u.extend(b);
                u.sort_unstable();
                u.dedup();
                u
            }
            Connective::And => a.iter().copied().filter(|x| b.binary_search(x).is_ok()).collect(),
            Connective::AndNot => {
                a.iter().copied().filter(|x| b.binary_search(x).is_err()).collect()
            }
        },
        _ => return Err(SqlError::Exec("shape/answer arity mismatch".into())),
    };

    // Map ids → names via the stadium table (local, no model call).
    let stadium = db.table("stadium")?;
    let id_idx = stadium
        .schema
        .index_of("stadium_id")
        .ok_or_else(|| SqlError::UnknownColumn("stadium_id".into()))?;
    let name_idx = stadium
        .schema
        .index_of("name")
        .ok_or_else(|| SqlError::UnknownColumn("name".into()))?;
    let rows: Vec<Vec<Value>> = stadium
        .rows
        .iter()
        .filter(|r| match &r[id_idx] {
            Value::Int(i) => final_ids.binary_search(i).is_ok(),
            _ => false,
        })
        .map(|r| vec![r[name_idx].clone()])
        .collect();
    Ok(ResultSet { columns: vec!["name".into()], rows, affected: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::concert_domain;
    use crate::workload::fig7_queries;

    /// Recomposition with *gold* sub-answers must reproduce the gold
    /// query's results exactly — the core correctness property of the
    /// decomposed pipeline.
    #[test]
    fn gold_recomposition_matches_gold_sql() {
        let mut db = concert_domain(42);
        let queries = fig7_queries();
        let atoms = unique_atoms(&queries);
        let answers: BTreeMap<String, String> =
            atoms.iter().map(|(k, a)| (k.clone(), a.id_sql())).collect();
        for q in &queries {
            let d = decompose(q);
            let recomposed = recompose(&db, &d, &answers).unwrap();
            let gold = db.query(&q.gold_sql).unwrap();
            assert!(
                recomposed.bag_eq(&gold),
                "mismatch for {}:\nrecomposed: {recomposed}\ngold: {gold}",
                q.text
            );
        }
    }

    #[test]
    fn unique_atoms_dedups_fig7() {
        let atoms = unique_atoms(&fig7_queries());
        assert_eq!(atoms.len(), 4);
    }

    #[test]
    fn wrong_sub_answer_changes_result() {
        let mut db = concert_domain(42);
        let queries = fig7_queries();
        let q1 = &queries[0];
        let d = decompose(q1);
        let atoms = unique_atoms(&queries);
        let mut answers: BTreeMap<String, String> =
            atoms.iter().map(|(k, a)| (k.clone(), a.id_sql())).collect();
        // Corrupt the concert-2014 sub-answer with the wrong year.
        answers.insert(
            d.atom_keys[0].clone(),
            "SELECT DISTINCT stadium_id FROM concert WHERE year = 1999".into(),
        );
        let recomposed = recompose(&db, &d, &answers).unwrap();
        let gold = db.query(&q1.gold_sql).unwrap();
        assert!(!recomposed.bag_eq(&gold));
    }

    #[test]
    fn missing_answer_is_an_error() {
        let db = concert_domain(42);
        let q = &fig7_queries()[0];
        let d = decompose(q);
        let answers = BTreeMap::new();
        assert!(recompose(&db, &d, &answers).is_err());
    }

    #[test]
    fn id_set_dedups_and_sorts() {
        let db = concert_domain(42);
        let ids =
            id_set(&db, "SELECT stadium_id FROM concert WHERE year = 2014").unwrap();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
        assert!(!ids.is_empty());
    }

    #[test]
    fn id_set_rejects_non_select() {
        let db = concert_domain(42);
        assert!(id_set(&db, "DELETE FROM concert").is_err());
        assert!(id_set(&db, "not sql at all").is_err());
    }
}
