//! The NL→SQL solver registered into the simulated model zoo.
//!
//! This is the "LLM" of the Table II experiment: it genuinely parses the
//! workload's natural-language grammar (connectives, superlatives, event
//! phrases, years, ids-vs-names projection) and emits executable SQL. The
//! surrounding [`SimLlm`](llmdm_model::SimLlm) decides — per question, via
//! its calibrated capability curve — whether to return this correct
//! translation or a plausible corruption (wrong year, wrong event table,
//! flipped connective), exactly the error modes real text-to-SQL models
//! exhibit.

use llmdm_model::{ModelError, PromptEnvelope, PromptSolver, SolvedPart, SolvedTask};

use crate::atoms::{Atom, Connective, Event, QueryShape};

/// What the question asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Projection {
    /// Stadium names (full queries).
    Names,
    /// Stadium ids (decomposed sub-queries).
    Ids,
}

/// The NL2SQL prompt solver (`### task: nl2sql`).
///
/// Body format (built by [`crate::prompt::PromptBuilder`]):
///
/// ```text
/// Schema:
/// TABLE stadium (...)
///
/// Example Q: …
/// Example SQL: …
///
/// Q: <question 1>
/// Q: <question 2>       (combined prompts carry several)
/// ```
#[derive(Debug, Default)]
pub struct Nl2SqlSolver;

impl Nl2SqlSolver {
    /// Parse one question into (projection, shape).
    fn parse_question(q: &str) -> Option<(Projection, QueryShape)> {
        let t = q.to_lowercase();
        let projection =
            if t.contains("stadium ids") { Projection::Ids } else { Projection::Names };
        // Strip up to the relative clause.
        let body = t
            .split_once("stadiums that ")
            .map(|(_, b)| b)
            .or_else(|| t.split_once("stadiums with ").map(|(_, b)| b))?;
        let body = body.trim_end_matches(['?', '.', '!']).trim();

        // Connectives, most specific first.
        if let Some((l, r)) = body.split_once(" but did not have ") {
            let a = parse_condition(l)?;
            let b = parse_condition(&format!("had {r}"))?;
            return Some((projection, QueryShape::Pair(a, Connective::AndNot, b)));
        }
        if let Some((l, r)) = split_connective(body, " and had ") {
            let a = parse_condition(&l)?;
            let b = parse_condition(&format!("had {r}"))?;
            return Some((projection, QueryShape::Pair(a, Connective::And, b)));
        }
        if let Some((l, r)) = split_connective(body, " or had ") {
            let a = parse_condition(&l)?;
            let b = parse_condition(&format!("had {r}"))?;
            return Some((projection, QueryShape::Pair(a, Connective::Or, b)));
        }
        let a = parse_condition(body)?;
        Some((projection, QueryShape::Single(a)))
    }

    /// Correct SQL for a parsed question.
    fn answer_sql(projection: Projection, shape: &QueryShape) -> String {
        match (projection, shape) {
            (Projection::Ids, QueryShape::Single(a)) => a.id_sql(),
            (Projection::Ids, QueryShape::Pair(..)) => {
                // Decomposed prompts only ever ask for single-atom id sets,
                // but answer compound id requests anyway via the name query
                // pattern swapped to ids.
                shape.gold_sql().replacen("SELECT name", "SELECT stadium_id", 1)
            }
            (Projection::Names, shape) => shape.gold_sql(),
        }
    }

    /// Difficulty of a parsed question.
    fn question_difficulty(projection: Projection, shape: &QueryShape) -> f64 {
        match (projection, shape) {
            (Projection::Ids, QueryShape::Single(a)) => a.difficulty(),
            _ => shape.difficulty(),
        }
    }

    /// Plausible wrong translations: off-by-one year, wrong event, flipped
    /// connective.
    fn alternatives(projection: Projection, shape: &QueryShape) -> Vec<String> {
        let mut alts = Vec::new();
        let bump_year = |a: &Atom| Atom { year: a.year + 1, ..*a };
        let swap_event = |a: &Atom| {
            let next = match a.event {
                Event::Concert => Event::SportsMeeting,
                Event::SportsMeeting => Event::Festival,
                Event::Festival => Event::Concert,
            };
            Atom { event: next, ..*a }
        };
        match shape {
            QueryShape::Single(a) => {
                alts.push(Self::answer_sql(projection, &QueryShape::Single(bump_year(a))));
                alts.push(Self::answer_sql(projection, &QueryShape::Single(swap_event(a))));
                if a.superlative {
                    // Dropping the superlative is the classic error.
                    let plain = Atom { superlative: false, ..*a };
                    alts.push(Self::answer_sql(projection, &QueryShape::Single(plain)));
                }
            }
            QueryShape::Pair(a, c, b) => {
                let flipped = match c {
                    Connective::Or => Connective::And,
                    Connective::And => Connective::Or,
                    Connective::AndNot => Connective::And,
                };
                alts.push(Self::answer_sql(projection, &QueryShape::Pair(*a, flipped, *b)));
                alts.push(Self::answer_sql(
                    projection,
                    &QueryShape::Pair(bump_year(a), *c, *b),
                ));
                alts.push(Self::answer_sql(
                    projection,
                    &QueryShape::Pair(*a, *c, swap_event(b)),
                ));
            }
        }
        alts
    }

    fn solve_one(q: &str) -> Result<SolvedPart, ModelError> {
        let (projection, shape) = Self::parse_question(q).ok_or_else(|| {
            ModelError::MalformedPayload {
                task: "nl2sql".into(),
                reason: format!("cannot parse question {q:?}"),
            }
        })?;
        Ok(SolvedPart {
            answer: Self::answer_sql(projection, &shape),
            difficulty: Self::question_difficulty(projection, &shape),
            alternatives: Self::alternatives(projection, &shape),
        })
    }
}

fn split_connective(body: &str, sep: &str) -> Option<(String, String)> {
    body.split_once(sep).map(|(l, r)| (l.to_string(), r.to_string()))
}

/// Parse a condition fragment like "had concerts in 2014" or
/// "had the most number of sports meetings in 2015" / "most number of …".
fn parse_condition(text: &str) -> Option<Atom> {
    let superlative = text.contains("most number of");
    let event = Event::from_phrase(text)?;
    let year = extract_year(text)?;
    Some(Atom { event, year, superlative })
}

fn extract_year(text: &str) -> Option<i64> {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i + 4 <= bytes.len() {
        if bytes[i..i + 4].iter().all(|b| b.is_ascii_digit())
            && (i == 0 || !bytes[i - 1].is_ascii_digit())
            && (i + 4 == bytes.len() || !bytes[i + 4].is_ascii_digit())
        {
            return text[i..i + 4].parse().ok();
        }
        i += 1;
    }
    None
}

impl PromptSolver for Nl2SqlSolver {
    fn task_id(&self) -> &str {
        "nl2sql"
    }

    fn solve(&self, env: &PromptEnvelope) -> Result<SolvedTask, ModelError> {
        let questions: Vec<&str> = env
            .body
            .lines()
            .filter_map(|l| l.strip_prefix("Q: "))
            .collect();
        if questions.is_empty() {
            return Err(ModelError::MalformedPayload {
                task: "nl2sql".into(),
                reason: "no `Q:` lines in prompt".into(),
            });
        }
        if questions.len() == 1 {
            let part = Self::solve_one(questions[0])?;
            Ok(SolvedTask {
                answer: part.answer,
                difficulty: part.difficulty,
                alternatives: part.alternatives,
                parts: Vec::new(),
            })
        } else {
            let parts: Result<Vec<SolvedPart>, ModelError> =
                questions.iter().map(|q| Self::solve_one(q)).collect();
            Ok(SolvedTask::multi(parts?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::fig7_queries;

    fn parse(q: &str) -> (Projection, QueryShape) {
        Nl2SqlSolver::parse_question(q).unwrap_or_else(|| panic!("cannot parse {q:?}"))
    }

    #[test]
    fn parses_all_fig7_questions() {
        for q in fig7_queries() {
            let (proj, shape) = parse(&q.text);
            assert_eq!(proj, Projection::Names);
            assert_eq!(shape, q.shape, "mismatch for {:?}", q.text);
        }
    }

    #[test]
    fn parses_sub_questions_as_id_projection() {
        let a = Atom::new(Event::Concert, 2014);
        let (proj, shape) = parse(&a.sub_question());
        assert_eq!(proj, Projection::Ids);
        assert_eq!(shape, QueryShape::Single(a));
    }

    #[test]
    fn answer_matches_gold() {
        for q in fig7_queries() {
            let (proj, shape) = parse(&q.text);
            assert_eq!(Nl2SqlSolver::answer_sql(proj, &shape), q.gold_sql);
        }
    }

    #[test]
    fn alternatives_differ_from_gold_and_execute() {
        let mut db = crate::domain::concert_domain(5);
        for q in fig7_queries() {
            let (proj, shape) = parse(&q.text);
            for alt in Nl2SqlSolver::alternatives(proj, &shape) {
                assert_ne!(alt, q.gold_sql);
                assert!(db.query(&alt).is_ok(), "alt not executable: {alt}");
            }
        }
    }

    #[test]
    fn year_extraction() {
        assert_eq!(extract_year("had concerts in 2014"), Some(2014));
        assert_eq!(extract_year("in the year 2016!"), Some(2016));
        assert_eq!(extract_year("no year"), None);
        assert_eq!(extract_year("12345"), None, "5-digit runs are not years");
    }

    #[test]
    fn solver_end_to_end_single() {
        let prompt = PromptEnvelope::builder("nl2sql")
            .header("examples", 0)
            .body("Schema:\nTABLE stadium (...)\n\nQ: What are the names of stadiums that had concerts in 2014?")
            .build();
        let env = PromptEnvelope::parse(&prompt).unwrap();
        let solved = Nl2SqlSolver.solve(&env).unwrap();
        assert!(solved.answer.contains("SELECT name FROM stadium"));
        assert!(solved.parts.is_empty());
    }

    #[test]
    fn solver_end_to_end_batch() {
        let body = "Q: Show the stadium ids of stadiums that had concerts in 2014\n\
                    Q: Show the stadium ids of stadiums that had sports meetings in 2015";
        let prompt = PromptEnvelope::builder("nl2sql").body(body).build();
        let env = PromptEnvelope::parse(&prompt).unwrap();
        let solved = Nl2SqlSolver.solve(&env).unwrap();
        assert_eq!(solved.parts.len(), 2);
        assert!(solved.parts[0].answer.contains("FROM concert"));
        assert!(solved.parts[1].answer.contains("FROM sports_meeting"));
    }

    #[test]
    fn example_lines_are_not_questions() {
        let body = "Example Q: What are the names of stadiums that had festivals in 2013?\n\
                    Example SQL: SELECT ...\n\n\
                    Q: What are the names of stadiums that had concerts in 2014?";
        let prompt = PromptEnvelope::builder("nl2sql").body(body).build();
        let env = PromptEnvelope::parse(&prompt).unwrap();
        let solved = Nl2SqlSolver.solve(&env).unwrap();
        assert!(solved.parts.is_empty(), "only one real question expected");
        assert!(solved.answer.contains("concert"));
    }

    #[test]
    fn garbage_question_rejected() {
        let prompt = PromptEnvelope::builder("nl2sql").body("Q: what is love?").build();
        let env = PromptEnvelope::parse(&prompt).unwrap();
        assert!(Nl2SqlSolver.solve(&env).is_err());
    }

    #[test]
    fn difficulty_full_query_exceeds_sub_query() {
        let full = parse("What are the names of stadiums that had concerts in 2014 or had sports meetings in 2015?");
        let sub = parse("Show the stadium ids of stadiums that had concerts in 2014");
        let d_full = Nl2SqlSolver::question_difficulty(full.0, &full.1);
        let d_sub = Nl2SqlSolver::question_difficulty(sub.0, &sub.1);
        assert!(d_full > d_sub + 0.4, "full={d_full} sub={d_sub}");
    }
}
