//! The Spider-inspired stadium/concert domain of the paper's Figure 7.

use llmdm_sqlengine::{Database, Value};
use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::{Rng, SeedableRng};

/// Stadium name pool (deterministic, index-stable).
const STADIUM_NAMES: &[&str] = &[
    "Eagle Arena",
    "River Dome",
    "Sun Bowl",
    "Metro Field",
    "Harbor Park",
    "Summit Stadium",
    "Lakeside Grounds",
    "Union Coliseum",
    "Granite Bowl",
    "Meadow Court",
    "Crown Pavilion",
    "Pioneer Yard",
];

/// Years events can occur in.
pub const YEARS: [i64; 4] = [2013, 2014, 2015, 2016];

/// Build the seeded concert domain database:
///
/// * `stadium(stadium_id, name, capacity, city)`
/// * `concert(concert_id, stadium_id, year, attendance)`
/// * `sports_meeting(meeting_id, stadium_id, year)`
/// * `festival(festival_id, stadium_id, year)`
///
/// Event placement is seeded so that every `(event, year)` atom has a
/// non-trivial, non-universal stadium set — the property that makes the
/// Fig. 7 queries discriminative.
pub fn concert_domain(seed: u64) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.execute("CREATE TABLE stadium (stadium_id INT, name TEXT, capacity INT, city TEXT)")
        .expect("static DDL");
    db.execute(
        "CREATE TABLE concert (concert_id INT, stadium_id INT, year INT, attendance INT)",
    )
    .expect("static DDL");
    db.execute("CREATE TABLE sports_meeting (meeting_id INT, stadium_id INT, year INT)")
        .expect("static DDL");
    db.execute("CREATE TABLE festival (festival_id INT, stadium_id INT, year INT)")
        .expect("static DDL");

    let n_stadiums = STADIUM_NAMES.len();
    for (i, name) in STADIUM_NAMES.iter().enumerate() {
        let capacity = 15_000 + 5_000 * rng.gen_range(0..10i64);
        let city = format!("City {}", (b'A' + (i % 8) as u8) as char);
        let t = db.table_mut("stadium").expect("created above");
        t.push_row(vec![
            Value::Int(i as i64 + 1),
            Value::Str((*name).to_string()),
            Value::Int(capacity),
            Value::Str(city),
        ])
        .expect("schema-conforming row");
    }

    let mut concert_id = 100i64;
    let mut meeting_id = 200i64;
    let mut festival_id = 300i64;
    for year in YEARS {
        // Each year, a random ~half of stadiums host concerts (some twice,
        // so superlatives are non-trivial), a third host sports meetings,
        // a quarter host festivals.
        for sid in 1..=n_stadiums as i64 {
            if rng.gen_bool(0.5) {
                let shows = if rng.gen_bool(0.3) { 2 } else { 1 };
                for _ in 0..shows {
                    concert_id += 1;
                    let att = 8_000 + rng.gen_range(0..30i64) * 1_000;
                    db.table_mut("concert")
                        .expect("created above")
                        .push_row(vec![
                            Value::Int(concert_id),
                            Value::Int(sid),
                            Value::Int(year),
                            Value::Int(att),
                        ])
                        .expect("schema-conforming row");
                }
            }
            if rng.gen_bool(0.34) {
                meeting_id += 1;
                db.table_mut("sports_meeting")
                    .expect("created above")
                    .push_row(vec![Value::Int(meeting_id), Value::Int(sid), Value::Int(year)])
                    .expect("schema-conforming row");
            }
            if rng.gen_bool(0.25) {
                festival_id += 1;
                db.table_mut("festival")
                    .expect("created above")
                    .push_row(vec![Value::Int(festival_id), Value::Int(sid), Value::Int(year)])
                    .expect("schema-conforming row");
            }
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_has_all_tables() {
        let db = concert_domain(1);
        for t in ["stadium", "concert", "sports_meeting", "festival"] {
            assert!(db.has_table(t), "missing {t}");
        }
        assert_eq!(db.table("stadium").unwrap().len(), STADIUM_NAMES.len());
        assert!(db.table("concert").unwrap().len() > 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = concert_domain(7);
        let b = concert_domain(7);
        assert_eq!(a.table("concert").unwrap().rows, b.table("concert").unwrap().rows);
        let c = concert_domain(8);
        assert_ne!(a.table("concert").unwrap().rows, c.table("concert").unwrap().rows);
    }

    #[test]
    fn atoms_are_discriminative() {
        // Each (event, year) should select some but not all stadiums.
        let mut db = concert_domain(42);
        for year in YEARS {
            let rs = db
                .query(&format!(
                    "SELECT DISTINCT stadium_id FROM concert WHERE year = {year}"
                ))
                .unwrap();
            assert!(!rs.rows.is_empty(), "no concerts in {year}");
            assert!(rs.rows.len() < STADIUM_NAMES.len(), "all stadiums host in {year}");
        }
    }

    #[test]
    fn fig7_gold_queries_execute() {
        let mut db = concert_domain(42);
        let q1 = "SELECT name FROM stadium WHERE stadium_id IN \
                  (SELECT stadium_id FROM concert WHERE year = 2014) \
                  OR stadium_id IN (SELECT stadium_id FROM sports_meeting WHERE year = 2015)";
        assert!(db.query(q1).is_ok());
    }
}
