//! Atomic query components and compositional query shapes.
//!
//! Every workload query is built from *atoms* — "(stadiums that) had
//! concerts in 2014", "had the most number of sports meetings in 2015" —
//! combined by a connective. This compositionality is what makes query
//! decomposition (§III-B1) meaningful: two different top-level queries can
//! share an atom, in which case the decomposed pipeline calls the model
//! only once for it (the paper's `Q11 = Q21` observation in Fig. 7).


/// The event relations of the concert domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// `concert` table.
    Concert,
    /// `sports_meeting` table.
    SportsMeeting,
    /// `festival` table.
    Festival,
}

impl Event {
    /// All event kinds.
    pub const ALL: [Event; 3] = [Event::Concert, Event::SportsMeeting, Event::Festival];

    /// The backing table name.
    pub fn table(&self) -> &'static str {
        match self {
            Event::Concert => "concert",
            Event::SportsMeeting => "sports_meeting",
            Event::Festival => "festival",
        }
    }

    /// The plural natural-language phrase.
    pub fn phrase(&self) -> &'static str {
        match self {
            Event::Concert => "concerts",
            Event::SportsMeeting => "sports meetings",
            Event::Festival => "festivals",
        }
    }

    /// Parse an event from a natural-language phrase, longest match first.
    pub fn from_phrase(text: &str) -> Option<Event> {
        let t = text.to_lowercase();
        if t.contains("sports meeting") {
            Some(Event::SportsMeeting)
        } else if t.contains("concert") {
            Some(Event::Concert)
        } else if t.contains("festival") {
            Some(Event::Festival)
        } else {
            None
        }
    }
}

/// An atomic condition on stadiums.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The event kind.
    pub event: Event,
    /// The event year.
    pub year: i64,
    /// Superlative: "the most number of `<event>` in `<year>`".
    pub superlative: bool,
}

impl Atom {
    /// Plain atom.
    pub fn new(event: Event, year: i64) -> Self {
        Atom { event, year, superlative: false }
    }

    /// Superlative atom.
    pub fn superlative(event: Event, year: i64) -> Self {
        Atom { event, year, superlative: true }
    }

    /// The NL condition fragment: "had concerts in 2014" or
    /// "had the most number of concerts in 2014".
    pub fn condition(&self) -> String {
        if self.superlative {
            format!("had the most number of {} in {}", self.event.phrase(), self.year)
        } else {
            format!("had {} in {}", self.event.phrase(), self.year)
        }
    }

    /// The negated NL fragment: "did not have concerts in 2014".
    pub fn negated_condition(&self) -> String {
        format!("did not have {} in {}", self.event.phrase(), self.year)
    }

    /// The sub-query NL question asking for *stadium ids* (the decomposed
    /// form the paper's Fig. 7 labels Q11, Q21, …).
    pub fn sub_question(&self) -> String {
        format!("Show the stadium ids of stadiums that {}", self.condition())
    }

    /// The gold SQL returning this atom's stadium-id set.
    pub fn id_sql(&self) -> String {
        if self.superlative {
            format!(
                "SELECT stadium_id FROM {} WHERE year = {} \
                 GROUP BY stadium_id ORDER BY COUNT(*) DESC LIMIT 1",
                self.event.table(),
                self.year
            )
        } else {
            format!("SELECT DISTINCT stadium_id FROM {} WHERE year = {}", self.event.table(), self.year)
        }
    }

    /// Difficulty of translating this atom alone (calibrated; see zoo docs).
    pub fn difficulty(&self) -> f64 {
        if self.superlative {
            0.31
        } else {
            0.07
        }
    }

    /// Stable canonical key for hash-consing shared sub-queries.
    pub fn key(&self) -> String {
        format!("{}:{}:{}", self.event.table(), self.year, self.superlative)
    }
}

/// How two atoms combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Connective {
    /// Either condition (set union) — "… or …".
    Or,
    /// Both conditions (set intersection) — "… and …".
    And,
    /// First but not second (set difference) — "… but did not have …".
    AndNot,
}

/// The compositional shape of a workload query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// A single atom.
    Single(Atom),
    /// Two atoms under a connective.
    Pair(Atom, Connective, Atom),
}

impl QueryShape {
    /// The atoms of this query, in order.
    pub fn atoms(&self) -> Vec<Atom> {
        match self {
            QueryShape::Single(a) => vec![*a],
            QueryShape::Pair(a, _, b) => vec![*a, *b],
        }
    }

    /// The full natural-language question.
    pub fn question(&self) -> String {
        match self {
            QueryShape::Single(a) => {
                format!("What are the names of stadiums that {}?", a.condition())
            }
            QueryShape::Pair(a, Connective::Or, b) => format!(
                "What are the names of stadiums that {} or {}?",
                a.condition(),
                b.condition()
            ),
            QueryShape::Pair(a, Connective::And, b) => format!(
                "Show the names of stadiums that {} and {}",
                a.condition(),
                b.condition()
            ),
            QueryShape::Pair(a, Connective::AndNot, b) => format!(
                "Show the names of stadiums that {} but {}",
                a.condition(),
                b.negated_condition()
            ),
        }
    }

    /// The gold SQL for the full question (projects stadium names).
    pub fn gold_sql(&self) -> String {
        match self {
            QueryShape::Single(a) => {
                format!("SELECT name FROM stadium WHERE stadium_id IN ({})", a.id_sql())
            }
            QueryShape::Pair(a, c, b) => {
                let (lhs, rhs) = (a.id_sql(), b.id_sql());
                match c {
                    Connective::Or => format!(
                        "SELECT name FROM stadium WHERE stadium_id IN ({lhs}) \
                         OR stadium_id IN ({rhs})"
                    ),
                    Connective::And => format!(
                        "SELECT name FROM stadium WHERE stadium_id IN ({lhs}) \
                         AND stadium_id IN ({rhs})"
                    ),
                    Connective::AndNot => format!(
                        "SELECT name FROM stadium WHERE stadium_id IN ({lhs}) \
                         AND stadium_id NOT IN ({rhs})"
                    ),
                }
            }
        }
    }

    /// Translation difficulty of the *full* question (complex queries are
    /// markedly harder than their atoms — the effect Table II exploits).
    pub fn difficulty(&self) -> f64 {
        match self {
            QueryShape::Single(a) => {
                if a.superlative {
                    0.41
                } else {
                    0.24
                }
            }
            QueryShape::Pair(a, _, b) => {
                let base = 0.80;
                let sup = [a, b].iter().filter(|x| x.superlative).count() as f64;
                (base + 0.08 * sup).min(1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condition_rendering() {
        let a = Atom::new(Event::Concert, 2014);
        assert_eq!(a.condition(), "had concerts in 2014");
        let s = Atom::superlative(Event::SportsMeeting, 2015);
        assert_eq!(s.condition(), "had the most number of sports meetings in 2015");
    }

    #[test]
    fn question_rendering_matches_fig7_style() {
        let q1 = QueryShape::Pair(
            Atom::new(Event::Concert, 2014),
            Connective::Or,
            Atom::new(Event::SportsMeeting, 2015),
        );
        assert_eq!(
            q1.question(),
            "What are the names of stadiums that had concerts in 2014 or had sports meetings in 2015?"
        );
        let q5 = QueryShape::Pair(
            Atom::new(Event::Concert, 2014),
            Connective::AndNot,
            Atom::new(Event::SportsMeeting, 2015),
        );
        assert!(q5.question().contains("but did not have sports meetings in 2015"));
    }

    #[test]
    fn gold_sql_parses_and_executes() {
        let mut db = crate::domain::concert_domain(3);
        for shape in [
            QueryShape::Single(Atom::new(Event::Concert, 2014)),
            QueryShape::Single(Atom::superlative(Event::Concert, 2014)),
            QueryShape::Pair(
                Atom::new(Event::Concert, 2014),
                Connective::Or,
                Atom::new(Event::SportsMeeting, 2015),
            ),
            QueryShape::Pair(
                Atom::new(Event::Festival, 2013),
                Connective::And,
                Atom::new(Event::Concert, 2016),
            ),
            QueryShape::Pair(
                Atom::new(Event::Concert, 2014),
                Connective::AndNot,
                Atom::new(Event::SportsMeeting, 2015),
            ),
        ] {
            let rs = db.query(&shape.gold_sql());
            assert!(rs.is_ok(), "{} -> {:?}", shape.gold_sql(), rs.err());
        }
    }

    #[test]
    fn event_phrase_roundtrip() {
        for e in Event::ALL {
            assert_eq!(Event::from_phrase(e.phrase()), Some(e));
        }
        // "sports meetings" must not be mistaken for concerts.
        assert_eq!(Event::from_phrase("had sports meetings in 2015"), Some(Event::SportsMeeting));
        assert_eq!(Event::from_phrase("no events here"), None);
    }

    #[test]
    fn difficulty_ordering() {
        let atom = Atom::new(Event::Concert, 2014);
        let single = QueryShape::Single(atom);
        let pair = QueryShape::Pair(atom, Connective::And, Atom::new(Event::Festival, 2015));
        assert!(atom.difficulty() < single.difficulty());
        assert!(single.difficulty() < pair.difficulty());
    }

    #[test]
    fn atom_keys_distinguish() {
        let a = Atom::new(Event::Concert, 2014);
        let b = Atom::new(Event::Concert, 2015);
        let c = Atom::superlative(Event::Concert, 2014);
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_eq!(a.key(), Atom::new(Event::Concert, 2014).key());
    }
}
