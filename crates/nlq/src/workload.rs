//! Workload generation: compositional NL2SQL query sets with controllable
//! sub-query sharing, plus the paper's exact Figure-7 queries.

use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::{Rng, SeedableRng};

use crate::atoms::{Atom, Connective, Event, QueryShape};
use crate::domain::YEARS;

/// One workload query.
#[derive(Debug, Clone, PartialEq)]
pub struct NlQuery {
    /// Workload-local id.
    pub id: usize,
    /// Compositional shape (atoms + connective).
    pub shape: QueryShape,
    /// The rendered natural-language question.
    pub text: String,
    /// The gold SQL.
    pub gold_sql: String,
}

impl NlQuery {
    /// Build a query from its shape.
    pub fn from_shape(id: usize, shape: QueryShape) -> Self {
        NlQuery { id, shape, text: shape.question(), gold_sql: shape.gold_sql() }
    }
}

/// Workload generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of queries.
    pub n: usize,
    /// Size of the atom pool to draw from; smaller pools mean more
    /// sub-query sharing across queries (the lever behind decomposition's
    /// cost savings).
    pub atom_pool: usize,
    /// Fraction of single-atom queries (the rest are pairs).
    pub single_fraction: f64,
    /// Fraction of single-atom queries that are superlative.
    pub superlative_fraction: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n: 20,
            atom_pool: 8,
            single_fraction: 0.5,
            superlative_fraction: 0.4,
            seed: 0,
        }
    }
}

/// A generated workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The queries.
    pub queries: Vec<NlQuery>,
}

impl Workload {
    /// Generate a workload per `config`.
    pub fn generate(config: WorkloadConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        // Build the atom pool: distinct (event, year) combos, some
        // superlative.
        let mut pool: Vec<Atom> = Vec::new();
        'outer: for year in YEARS {
            for event in Event::ALL {
                pool.push(Atom::new(event, year));
                if pool.len() >= config.atom_pool {
                    break 'outer;
                }
            }
        }
        let mut queries = Vec::with_capacity(config.n);
        for id in 0..config.n {
            let shape = if rng.gen_bool(config.single_fraction) {
                let mut a = pool[rng.gen_range(0..pool.len())];
                if rng.gen_bool(config.superlative_fraction) {
                    a.superlative = true;
                }
                QueryShape::Single(a)
            } else {
                let a = pool[rng.gen_range(0..pool.len())];
                let mut b = pool[rng.gen_range(0..pool.len())];
                // Avoid degenerate identical pairs.
                if b == a {
                    b = pool[(pool.iter().position(|x| *x == a).unwrap_or(0) + 1) % pool.len()];
                }
                let conn = match rng.gen_range(0..3) {
                    0 => Connective::Or,
                    1 => Connective::And,
                    _ => Connective::AndNot,
                };
                QueryShape::Pair(a, conn, b)
            };
            queries.push(NlQuery::from_shape(id, shape));
        }
        Workload { queries }
    }

    /// Number of *distinct* atoms across the workload (the number of model
    /// calls the decomposed pipeline makes).
    pub fn distinct_atoms(&self) -> usize {
        let mut keys: Vec<String> = self
            .queries
            .iter()
            .flat_map(|q| q.shape.atoms())
            .map(|a| a.key())
            .collect();
        keys.sort();
        keys.dedup();
        keys.len()
    }

    /// Total atom references (with repetition).
    pub fn total_atom_refs(&self) -> usize {
        self.queries.iter().map(|q| q.shape.atoms().len()).sum()
    }
}

/// The paper's exact five Figure-7 queries (Q1–Q5).
pub fn fig7_queries() -> Vec<NlQuery> {
    let concert14 = Atom::new(Event::Concert, 2014);
    let meeting15 = Atom::new(Event::SportsMeeting, 2015);
    let shapes = [
        // Q1: "What are the names of stadiums that had concerts in 2014 or
        //      had sports meetings in 2015?"
        QueryShape::Pair(concert14, Connective::Or, meeting15),
        // Q2: "What are the names of stadiums that had the most number of
        //      concerts in 2014"
        QueryShape::Single(Atom::superlative(Event::Concert, 2014)),
        // Q3: "Show the names of stadiums with most number of sports
        //      meetings in 2015"
        QueryShape::Single(Atom::superlative(Event::SportsMeeting, 2015)),
        // Q4: "Show the names of stadiums that had concerts in 2014 and had
        //      sports meetings in 2015"
        QueryShape::Pair(concert14, Connective::And, meeting15),
        // Q5: "Show the names of stadiums that had concerts in 2014 but did
        //      not have sports meetings in 2015"
        QueryShape::Pair(concert14, Connective::AndNot, meeting15),
    ];
    shapes.iter().enumerate().map(|(i, s)| NlQuery::from_shape(i + 1, *s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_has_five_queries_with_shared_atoms() {
        let qs = fig7_queries();
        assert_eq!(qs.len(), 5);
        let w = Workload { queries: qs };
        // Q1/Q4/Q5 share both atoms; Q2/Q3 add superlative variants:
        // distinct atoms = {c14, m15, c14-sup, m15-sup} = 4 vs 8 refs.
        assert_eq!(w.distinct_atoms(), 4);
        assert_eq!(w.total_atom_refs(), 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(WorkloadConfig::default());
        let b = Workload::generate(WorkloadConfig::default());
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn sharing_increases_with_smaller_pool() {
        let tight = Workload::generate(WorkloadConfig { atom_pool: 4, seed: 5, ..Default::default() });
        let loose = Workload::generate(WorkloadConfig { atom_pool: 12, seed: 5, ..Default::default() });
        assert!(tight.distinct_atoms() <= loose.distinct_atoms());
    }

    #[test]
    fn gold_sql_is_executable_for_generated_workload() {
        let mut db = crate::domain::concert_domain(11);
        let w = Workload::generate(WorkloadConfig { n: 30, seed: 3, ..Default::default() });
        for q in &w.queries {
            assert!(db.query(&q.gold_sql).is_ok(), "bad gold sql: {}", q.gold_sql);
        }
    }

    #[test]
    fn no_degenerate_pairs() {
        let w = Workload::generate(WorkloadConfig { n: 100, seed: 9, ..Default::default() });
        for q in &w.queries {
            if let QueryShape::Pair(a, _, b) = q.shape {
                assert_ne!(a, b, "degenerate pair in {}", q.text);
            }
        }
    }
}
