//! # llmdm-nlq — NL2SQL, query decomposition, and query combination
//!
//! This crate reproduces the machinery behind the paper's **Table II**
//! (§III-B1, "Query Decomposition and Combination"):
//!
//! * a Spider-inspired compositional NL2SQL workload over the stadium /
//!   concert domain of the paper's Figure 7 — including the exact five
//!   queries Q1–Q5 the paper lists ([`workload::fig7_queries`]);
//! * a DAIL-SQL-style prompt builder with few-shot example selection by
//!   embedding similarity ([`prompt`]);
//! * an NL→SQL grammar solver registered into the simulated model zoo
//!   ([`solver::Nl2SqlSolver`]) — the "LLM" that actually translates;
//! * **query decomposition** ([`mod@decompose`]): compositional queries split
//!   into atomic sub-queries, hash-consed so shared sub-queries (Fig. 7's
//!   `Q11 = Q21`) call the model once, and recomposed locally with set
//!   semantics;
//! * **query combination**: multiple sub-queries batched into one prompt
//!   sharing a single few-shot example block, eliminating redundant example
//!   tokens;
//! * an execution-accuracy scorer against `llmdm-sqlengine` (a prediction
//!   is correct iff its result set bag-equals the gold query's).
//!
//! The three pipelines (`origin`, `decomposition`, `decomposition +
//! combination`) are run side by side by [`pipeline::run_table2`], which
//! regenerates the paper's accuracy/cost table.

#![warn(missing_docs)]

pub mod atoms;
pub mod decompose;
pub mod domain;
pub mod pipeline;
pub mod prompt;
pub mod solver;
pub mod workload;

pub use atoms::{Atom, Connective, Event, QueryShape};
pub use decompose::{decompose, recompose, Decomposition};
pub use domain::concert_domain;
pub use pipeline::{run_combination, run_decomposition, run_origin, run_table2, run_table2_with, PipelineReport, Table2Report};
pub use prompt::{ExamplePool, PromptBuilder};
pub use solver::Nl2SqlSolver;
pub use workload::{fig7_queries, NlQuery, Workload, WorkloadConfig};
