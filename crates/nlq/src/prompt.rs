//! DAIL-SQL-style prompt construction with similarity-based few-shot
//! example selection, plus combined prompts (§III-B1 query combination).

use llmdm_model::{Embedder, PromptEnvelope};

use crate::atoms::{Atom, Connective, Event, QueryShape};
use crate::domain::YEARS;
use crate::workload::NlQuery;

/// A pool of (question, SQL) example pairs for few-shot prompting.
#[derive(Debug, Clone)]
pub struct ExamplePool {
    examples: Vec<(String, String)>,
    vectors: Vec<Vec<f32>>,
    embedder: Embedder,
}

impl ExamplePool {
    /// Generate a deterministic example pool covering the grammar: one
    /// plain single, one superlative, and one pair per event/year stripe.
    pub fn generate(seed: u64) -> Self {
        let mut shapes: Vec<QueryShape> = Vec::new();
        for (i, year) in YEARS.iter().enumerate() {
            let e1 = Event::ALL[i % 3];
            let e2 = Event::ALL[(i + 1) % 3];
            shapes.push(QueryShape::Single(Atom::new(e1, *year)));
            shapes.push(QueryShape::Single(Atom::superlative(e2, *year)));
            shapes.push(QueryShape::Pair(
                Atom::new(e1, *year),
                if i % 2 == 0 { Connective::Or } else { Connective::And },
                Atom::new(e2, *year),
            ));
        }
        let examples: Vec<(String, String)> =
            shapes.iter().map(|s| (s.question(), s.gold_sql())).collect();
        let embedder = Embedder::standard(seed);
        let vectors = examples
            .iter()
            .map(|(q, _)| embedder.embed(q).expect("non-empty question"))
            .collect();
        ExamplePool { examples, vectors, embedder }
    }

    /// Number of examples in the pool.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// The `k` examples most similar to `question` (DAIL-SQL's masked
    /// question-similarity selection, embedded with the shared encoder).
    pub fn select(&self, question: &str, k: usize) -> Vec<&(String, String)> {
        let Ok(qv) = self.embedder.embed(question) else {
            return Vec::new();
        };
        let mut scored: Vec<(f32, usize)> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (llmdm_model::embed::cosine(&qv, v), i))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        scored.into_iter().take(k).map(|(_, i)| &self.examples[i]).collect()
    }
}

/// Builds `### task: nl2sql` prompts.
#[derive(Debug, Clone)]
pub struct PromptBuilder {
    pool: ExamplePool,
    /// Few-shot examples per single prompt.
    pub shots: usize,
    /// Few-shot examples per combined prompt.
    pub combined_shots: usize,
    schema_summary: String,
}

impl PromptBuilder {
    /// Create a builder with the given example pool and schema context.
    pub fn new(pool: ExamplePool, schema_summary: String) -> Self {
        PromptBuilder { pool, shots: 4, combined_shots: 8, schema_summary }
    }

    fn render(&self, questions: &[&str], shots: usize, anchor: &str) -> String {
        let mut body = String::from("Schema:\n");
        body.push_str(&self.schema_summary);
        body.push('\n');
        for (q, sql) in self.pool.select(anchor, shots) {
            body.push_str(&format!("Example Q: {q}\nExample SQL: {sql}\n"));
        }
        body.push('\n');
        for q in questions {
            body.push_str(&format!("Q: {q}\n"));
        }
        PromptEnvelope::builder("nl2sql").header("examples", shots).body(body).build()
    }

    /// A single-question prompt.
    pub fn single(&self, question: &str) -> String {
        self.render(&[question], self.shots, question)
    }

    /// A combined prompt answering several questions with one shared
    /// example block — the paper's query combination.
    pub fn combined(&self, questions: &[&str]) -> String {
        let anchor = questions.first().copied().unwrap_or("");
        self.render(questions, self.combined_shots, anchor)
    }

    /// What `single()` prompts would cost in tokens for each query if sent
    /// separately (used by cost reports).
    pub fn single_tokens(&self, tokenizer: &llmdm_model::Tokenizer, q: &NlQuery) -> usize {
        tokenizer.count(&self.single(&q.text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_model::Tokenizer;

    fn builder() -> PromptBuilder {
        let db = crate::domain::concert_domain(1);
        PromptBuilder::new(ExamplePool::generate(1), db.schema_summary())
    }

    #[test]
    fn pool_generation_covers_grammar() {
        let pool = ExamplePool::generate(1);
        assert_eq!(pool.len(), 12);
        let has_sup = pool.examples.iter().any(|(q, _)| q.contains("most number"));
        let has_pair = pool.examples.iter().any(|(q, _)| q.contains(" or "));
        assert!(has_sup && has_pair);
    }

    #[test]
    fn selection_prefers_similar_examples() {
        let pool = ExamplePool::generate(1);
        let picks =
            pool.select("What are the names of stadiums that had concerts in 2013?", 3);
        assert_eq!(picks.len(), 3);
        // The most similar example should at least mention concerts.
        assert!(picks[0].0.contains("concert"), "top pick: {}", picks[0].0);
    }

    #[test]
    fn single_prompt_shape() {
        let b = builder();
        let p = b.single("What are the names of stadiums that had concerts in 2014?");
        let env = PromptEnvelope::parse(&p).unwrap();
        assert_eq!(env.task, "nl2sql");
        assert_eq!(env.examples(), 4);
        assert!(env.body.contains("Schema:"));
        assert_eq!(env.body.lines().filter(|l| l.starts_with("Q: ")).count(), 1);
    }

    #[test]
    fn combined_prompt_is_cheaper_than_sum_of_singles() {
        let b = builder();
        let tok = Tokenizer::new();
        let qs = [
            "Show the stadium ids of stadiums that had concerts in 2014",
            "Show the stadium ids of stadiums that had sports meetings in 2015",
            "Show the stadium ids of stadiums that had festivals in 2013",
            "Show the stadium ids of stadiums that had concerts in 2016",
        ];
        let combined = tok.count(&b.combined(&qs));
        let singles: usize = qs.iter().map(|q| tok.count(&b.single(q))).sum();
        assert!(
            (combined as f64) < singles as f64 * 0.55,
            "combined={combined} singles={singles}"
        );
    }

    #[test]
    fn combined_prompt_has_all_questions() {
        let b = builder();
        let qs = ["Q one?", "Q two?"];
        let p = b.combined(&qs);
        let env = PromptEnvelope::parse(&p).unwrap();
        assert_eq!(env.body.lines().filter(|l| l.starts_with("Q: ")).count(), 2);
        assert_eq!(env.examples(), b.combined_shots);
    }
}
