//! Semantic-SQL operator savings, pinned.
//!
//! DESIGN.md §14 claims two cost mechanisms for `LLM_MAP`/`LLM_FILTER`
//! plans, both measured here on the session [`UsageMeter`] (calls *and*
//! dollars) rather than inferred:
//!
//! * **batch dedup** — each semantic operator memoizes prompts across its
//!   input, so a duplicate-heavy batch costs one model call per *distinct*
//!   prompt. Pinned: on a cacheless stack, a duplicate-heavy `LLM_MAP`
//!   batch must bill ≥ `LLMDM_SEMSQL_MIN_DEDUP` (default 2.0)× fewer
//!   calls — and proportionally fewer dollars — than the same-size
//!   unique-value batch.
//! * **cache savings** — with the semantic cache in the stack, re-running
//!   a query bills zero further calls and zero further dollars.
//!
//! Before any timing, every benched query is asserted **bit-identical**
//! between the planner and the direct-execution oracle under the same
//! seeded model. `scripts/verify.sh` runs this with `LLMDM_BENCH_FAST=1`;
//! results land in `BENCH_semsql.json`.

use llmdm_rt::bench::Criterion;
use llmdm_sqlengine::exec::{execute_select, execute_select_direct};
use llmdm_sqlengine::{parse_statement, Database, ModelHandle, SelectStmt, Statement, Value};

const ROWS: i64 = 96;
const DISTINCT: i64 = 8;
const SEED: u64 = 11;

/// One table, two text columns over the same rows: `category` repeats
/// `DISTINCT` values (duplicate-heavy), `label` is unique per row.
fn fixture(model: ModelHandle) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE items (id INT, category TEXT, label TEXT)").expect("ddl");
    for i in 0..ROWS {
        db.table_mut("items")
            .unwrap()
            .push_row(vec![
                Value::Int(i),
                Value::Str(format!("cat-{}", i % DISTINCT)),
                Value::Str(format!("item-{i}")),
            ])
            .expect("row");
    }
    db.set_model(model);
    db
}

fn select_stmt(sql: &str) -> SelectStmt {
    match parse_statement(sql).expect("parses") {
        Statement::Select(s) => s,
        _ => unreachable!("bench queries are SELECTs"),
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn stat<'a>(c: &'a Criterion, id: &str) -> &'a llmdm_rt::bench::BenchStats {
    c.results().iter().find(|s| s.id == id).unwrap_or_else(|| panic!("no stats for `{id}`"))
}

const DUP_SQL: &str = "SELECT LLM_MAP(category, 'categorize') FROM items";
const UNIQ_SQL: &str = "SELECT LLM_MAP(label, 'categorize') FROM items";

/// Run `sql` on a fresh fixture around `handle`, returning the meter
/// delta as (calls, dollars).
fn billed(handle: &ModelHandle, sql: &str) -> (u64, f64) {
    let db = fixture(handle.clone());
    let before = handle.meter().snapshot();
    execute_select(&db, &select_stmt(sql)).expect("executes");
    let after = handle.meter().snapshot();
    (after.total_calls() - before.total_calls(), after.dollars_since(&before))
}

fn main() {
    llmdm_obs::disable();

    // ---- Correctness gate: planner ≡ direct, bit for bit. -----------
    {
        let db = fixture(ModelHandle::sim(SEED));
        for sql in [DUP_SQL, UNIQ_SQL] {
            let stmt = select_stmt(sql);
            let planned = execute_select(&db, &stmt).expect("planner executes");
            let direct = execute_select_direct(&db, &stmt).expect("direct executes");
            assert!(
                planned.bit_eq(&direct),
                "{sql}: planner and direct paths disagree\n planner: {planned:?}\n direct:  {direct:?}"
            );
            assert_eq!(planned.rows.len(), ROWS as usize, "{sql}: unexpected row count");
        }
    }

    // ---- Dedup pin (cacheless stack isolates operator dedup). -------
    let min_dedup = env_f64("LLMDM_SEMSQL_MIN_DEDUP", 2.0);
    let (dup_calls, dup_dollars) = billed(&ModelHandle::sim_uncached(SEED), DUP_SQL);
    let (uniq_calls, uniq_dollars) = billed(&ModelHandle::sim_uncached(SEED), UNIQ_SQL);
    println!(
        "dedup: duplicate-heavy {dup_calls} calls (${dup_dollars:.6}) vs \
         unique {uniq_calls} calls (${uniq_dollars:.6})"
    );
    assert_eq!(
        dup_calls, DISTINCT as u64,
        "duplicate-heavy batch should bill one call per distinct prompt"
    );
    assert_eq!(uniq_calls, ROWS as u64, "unique batch should bill one call per row");
    let call_ratio = uniq_calls as f64 / dup_calls as f64;
    let dollar_ratio = uniq_dollars / dup_dollars;
    assert!(
        call_ratio >= min_dedup,
        "dedup call savings {call_ratio:.2}x below the {min_dedup:.1}x floor"
    );
    assert!(
        dollar_ratio >= min_dedup,
        "dedup dollar savings {dollar_ratio:.2}x below the {min_dedup:.1}x floor"
    );

    // ---- Cache pin: a warm re-run bills nothing. --------------------
    let cached = ModelHandle::sim(SEED);
    let db = fixture(cached.clone());
    let stmt = select_stmt(DUP_SQL);
    execute_select(&db, &stmt).expect("cold run");
    let before = cached.meter().snapshot();
    execute_select(&db, &stmt).expect("warm run");
    let after = cached.meter().snapshot();
    assert_eq!(after.total_calls(), before.total_calls(), "warm re-run billed model calls");
    assert!(
        after.dollars_since(&before) == 0.0,
        "warm re-run billed dollars: {}",
        after.dollars_since(&before)
    );
    println!(
        "cache: warm re-run of {} rows billed 0 calls / $0 (cache stats: {:?})",
        ROWS,
        cached.cache_stats()
    );

    // ---- Timing: warm-cache planner latency on both workloads. ------
    let mut c = Criterion::default();
    {
        let mut group = c.benchmark_group("semsql");
        let dup_stmt = select_stmt(DUP_SQL);
        let uniq_stmt = select_stmt(UNIQ_SQL);
        group.bench_function("llm_map_dup/plan", |b| {
            b.iter(|| execute_select(&db, &dup_stmt).expect("executes"))
        });
        group.bench_function("llm_map_dup/direct", |b| {
            b.iter(|| execute_select_direct(&db, &dup_stmt).expect("executes"))
        });
        group.bench_function("llm_map_uniq/plan", |b| {
            b.iter(|| execute_select(&db, &uniq_stmt).expect("executes"))
        });
        group.finish();
    }

    for id in ["semsql/llm_map_dup/plan", "semsql/llm_map_dup/direct", "semsql/llm_map_uniq/plan"]
    {
        let s = stat(&c, id);
        println!("{id}: median {} ns", s.median_ns);
    }

    let seed = std::env::var("LLMDM_BENCH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
    let meta = llmdm_obs::run_meta(Some(seed));
    let path = llmdm_rt::bench::report_dir().join("BENCH_semsql.json");
    match c.write_json_with_meta(&path, "semsql", &meta) {
        Ok(_) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
