//! The cost of *windowed* telemetry, pinned against plain recording.
//!
//! DESIGN.md §12 claims the windowed per-class metrics add effectively
//! nothing over the flat recorder paths, because a [`WindowHandle`]
//! resolves its `(metric, class)` registry slot once and every
//! subsequent call is a mutex on one ring plus an amortized clock
//! sample. This bench enforces that claim:
//!
//! 1. Enabled: `WindowHandle::observe` through a cached handle stays
//!    within `LLMDM_OBS_WINDOW_SLACK` percent (default 5) of plain
//!    `llmdm_obs::observe` on the same batch size — the windowed path
//!    may not cost materially more than the histogram it wraps.
//! 2. Disabled: `WindowHandle::observe` and the `window_observe`
//!    one-shot stay under the same per-call nanosecond budget as every
//!    other disabled entry point (`LLMDM_OBS_DISABLED_NS_MAX`, default
//!    50 ns) — turning telemetry off turns the window plane off too.
//!
//! The uncached `window_observe` one-shot (per-call registry lookup) is
//! measured for the report but deliberately not gated: it exists for
//! cold paths, and hot paths are expected to hold a handle.
//!
//! `scripts/verify.sh` runs this with `LLMDM_BENCH_FAST=1`; the stamped
//! report lands in `BENCH_obswindow.json`.

use llmdm_rt::bench::{black_box, Criterion};

const BATCH: usize = 100;

fn bench_enabled(c: &mut Criterion) {
    llmdm_obs::enable();
    llmdm_obs::reset();
    let mut group = c.benchmark_group("obs_window_enabled");
    group.bench_function("plain_observe_x100", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                llmdm_obs::observe(black_box("bench.plain_hist"), 1.5);
            }
        })
    });
    let handle = llmdm_obs::window("bench.windowed_hist", "hot");
    group.bench_function("window_handle_observe_x100", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                handle.observe(black_box(1.5));
            }
        })
    });
    group.bench_function("window_oneshot_observe_x100", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                llmdm_obs::window_observe(black_box("bench.windowed_hist"), "cold", 1.5);
            }
        })
    });
    group.finish();
    llmdm_obs::disable();
    llmdm_obs::reset();
}

fn bench_disabled(c: &mut Criterion) {
    llmdm_obs::disable();
    let handle = llmdm_obs::window("bench.disabled_hist", "hot");
    let mut group = c.benchmark_group("obs_window_disabled");
    group.bench_function("window_handle_observe_x100", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                handle.observe(black_box(1.5));
            }
        })
    });
    group.bench_function("window_oneshot_observe_x100", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                llmdm_obs::window_observe(black_box("bench.disabled_hist"), "hot", 1.5);
            }
        })
    });
    group.finish();
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn stat<'a>(c: &'a Criterion, id: &str) -> &'a llmdm_rt::bench::BenchStats {
    c.results()
        .iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("no stats for `{id}`"))
}

fn main() {
    let mut c = Criterion::default();
    bench_enabled(&mut c);
    bench_disabled(&mut c);

    // Gate 1: cached-handle windowed recording tracks plain observe.
    let slack = 1.0 + env_f64("LLMDM_OBS_WINDOW_SLACK", 5.0) / 100.0;
    let plain = stat(&c, "obs_window_enabled/plain_observe_x100").min_ns as f64;
    let windowed = stat(&c, "obs_window_enabled/window_handle_observe_x100").min_ns as f64;
    assert!(
        windowed <= plain * slack,
        "windowed observe adds {:.1}% over plain observe (plain {plain} ns, windowed \
         {windowed} ns per {BATCH}-call batch, budget {:.0}%)",
        (windowed / plain - 1.0) * 100.0,
        (slack - 1.0) * 100.0
    );
    println!(
        "windowed vs plain observe: {:+.2}% (plain {plain} ns, windowed {windowed} ns)",
        (windowed / plain - 1.0) * 100.0
    );

    // Gate 2: the disabled window plane costs what every other disabled
    // entry point costs.
    let max_per_call_ns = env_f64("LLMDM_OBS_DISABLED_NS_MAX", 50.0);
    for id in [
        "obs_window_disabled/window_handle_observe_x100",
        "obs_window_disabled/window_oneshot_observe_x100",
    ] {
        let s = stat(&c, id);
        let per_call = s.median_ns as f64 / BATCH as f64;
        assert!(
            per_call <= max_per_call_ns,
            "{id}: {per_call:.1} ns/call exceeds the disabled-path budget of {max_per_call_ns} ns"
        );
        println!("{id}: {per_call:.2} ns/call (budget {max_per_call_ns})");
    }

    let seed = std::env::var("LLMDM_BENCH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42);
    let meta = llmdm_obs::run_meta(Some(seed));
    let path = llmdm_rt::bench::report_dir().join("BENCH_obswindow.json");
    match c.write_json_with_meta(&path, "obs_window", &meta) {
        Ok(_) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
