//! SQL parse + execute throughput on the concert fixture.

use llmdm_rt::bench::{criterion_group, Criterion};
use llmdm_nlq::concert_domain;
use llmdm_sqlengine::parse_statement;

fn bench_sql(c: &mut Criterion) {
    let db = concert_domain(1);
    let queries = [
        "SELECT name FROM stadium WHERE capacity > 30000",
        "SELECT s.name, COUNT(*) FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id \
         GROUP BY s.name ORDER BY COUNT(*) DESC LIMIT 3",
        "SELECT name FROM stadium WHERE stadium_id IN \
         (SELECT stadium_id FROM concert WHERE year = 2014) \
         AND stadium_id NOT IN (SELECT stadium_id FROM sports_meeting WHERE year = 2015)",
    ];
    let mut group = c.benchmark_group("sqlengine");
    group.bench_function("parse_simple", |b| b.iter(|| parse_statement(queries[0]).expect("parses")));
    group.bench_function("parse_complex", |b| b.iter(|| parse_statement(queries[2]).expect("parses")));
    for (name, q) in [("exec_filter", queries[0]), ("exec_join_group", queries[1]), ("exec_setops", queries[2])] {
        let stmt = parse_statement(q).expect("parses");
        let select = match stmt {
            llmdm_sqlengine::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        group.bench_function(name, |b| {
            b.iter(|| llmdm_sqlengine::exec::execute_select(&db, &select).expect("executes"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sql);
llmdm_obs::bench_main!(benches);
