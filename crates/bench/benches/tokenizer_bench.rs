//! Tokenizer throughput: every dollar figure in the reproduction flows
//! through `Tokenizer::count`.

use llmdm_rt::bench::{criterion_group, Criterion, Throughput};
use llmdm_model::Tokenizer;

fn bench_tokenizer(c: &mut Criterion) {
    let tok = Tokenizer::new();
    let prompt = include_str!("tokenizer_bench.rs").repeat(4);
    let mut group = c.benchmark_group("tokenizer");
    group.throughput(Throughput::Bytes(prompt.len() as u64));
    group.bench_function("count", |b| b.iter(|| tok.count(&prompt)));
    group.bench_function("encode", |b| b.iter(|| tok.encode(&prompt)));
    group.finish();
}

criterion_group!(benches, bench_tokenizer);
llmdm_obs::bench_main!(benches);
