//! Cascade routing overhead per query (excluding/including escalation).

use llmdm_rt::bench::{criterion_group, Criterion};
use llmdm_cascade::{CascadeRouter, DecisionModel, HotpotConfig, HotpotWorkload, QaSolver};
use llmdm_model::ModelZoo;
use std::sync::Arc;

fn bench_cascade(c: &mut Criterion) {
    let zoo = ModelZoo::standard(3);
    zoo.register_solver(Arc::new(QaSolver));
    let w = HotpotWorkload::generate(HotpotConfig { n: 40, seed: 3, ..Default::default() });
    let router = CascadeRouter::new(zoo.cascade_order(), DecisionModel::new(), 0.6);
    let mut group = c.benchmark_group("cascade");
    let mut i = 0usize;
    group.bench_function("route_one_query", |b| {
        b.iter(|| {
            i = (i + 1) % w.items.len();
            router.answer(&w.items[i].prompt()).expect("routes")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cascade);
llmdm_obs::bench_main!(benches);
