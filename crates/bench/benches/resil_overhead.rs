//! The cost of the resilience layer when nothing is failing, pinned.
//!
//! DESIGN.md §9 claims the no-fault fast path is essentially free: a
//! `FaultyModel` carrying a no-op plan (`FaultPlan::is_noop`) skips the
//! fault hashing entirely, and a `ResilientClient` whose inner call
//! succeeds first try does one breaker poll and no backoff. This bench
//! measures a bare `SimLlm::complete` against the same call through
//!
//! 1. a `FaultyModel` with `FaultPlan::none()` — asserted <5% overhead
//!    on `min_ns` (`LLMDM_RESIL_NOOP_SLACK` percent, default 5);
//! 2. a full `ResilientClient(FaultyModel(SimLlm))` stack — measured
//!    and reported, asserted under a looser wrapper budget
//!    (`LLMDM_RESIL_WRAPPED_SLACK` percent, default 25) since the
//!    breaker/stats mutexes are real work the fast path legitimately
//!    pays.
//!
//! `scripts/verify.sh` runs this with `LLMDM_BENCH_FAST=1`; a regression
//! that puts hashing or allocation on the clean path fails the build.

use std::sync::Arc;

use llmdm_cascade::QaSolver;
use llmdm_model::{
    CompletionRequest, FaultyModel, LanguageModel, ModelZoo, ResilientClient, SimLlm,
};
use llmdm_resil::{FaultPlan, SimClock};
use llmdm_rt::bench::{black_box, Criterion};

fn prompts() -> Vec<String> {
    let w = llmdm_cascade::HotpotWorkload::generate(llmdm_cascade::HotpotConfig {
        n: 16,
        seed: 11,
        ..Default::default()
    });
    w.items.iter().map(|i| i.prompt()).collect()
}

fn bench_paths(c: &mut Criterion) {
    let zoo = ModelZoo::standard(11);
    zoo.register_solver(Arc::new(QaSolver));
    let model: Arc<SimLlm> = zoo.medium();
    let prompts = prompts();

    let clock = SimClock::new();
    let noop_plan = Arc::new(FaultPlan::none());
    assert!(noop_plan.is_noop());
    let faulty = Arc::new(FaultyModel::new(
        model.clone() as Arc<dyn LanguageModel>,
        noop_plan,
        clock.clone(),
    ));
    let wrapped = ResilientClient::with_defaults(faulty.clone() as Arc<dyn LanguageModel>, clock);

    let mut group = c.benchmark_group("resil_noop");
    let mut i = 0usize;
    group.bench_function("bare_model", |b| {
        b.iter(|| {
            i = (i + 1) % prompts.len();
            model.complete(black_box(&CompletionRequest::new(prompts[i].clone()))).expect("ok")
        })
    });
    let mut j = 0usize;
    group.bench_function("faulty_noop", |b| {
        b.iter(|| {
            j = (j + 1) % prompts.len();
            faulty.complete(black_box(&CompletionRequest::new(prompts[j].clone()))).expect("ok")
        })
    });
    let mut k = 0usize;
    group.bench_function("resilient_stack", |b| {
        b.iter(|| {
            k = (k + 1) % prompts.len();
            wrapped.complete(black_box(&CompletionRequest::new(prompts[k].clone()))).expect("ok")
        })
    });
    group.finish();
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn stat<'a>(c: &'a Criterion, id: &str) -> &'a llmdm_rt::bench::BenchStats {
    c.results()
        .iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("no stats for `{id}`"))
}

fn main() {
    llmdm_obs::disable();
    let mut c = Criterion::default();
    bench_paths(&mut c);

    let bare = stat(&c, "resil_noop/bare_model").min_ns as f64;
    let noop = stat(&c, "resil_noop/faulty_noop").min_ns as f64;
    let stack = stat(&c, "resil_noop/resilient_stack").min_ns as f64;

    let noop_slack = 1.0 + env_f64("LLMDM_RESIL_NOOP_SLACK", 5.0) / 100.0;
    assert!(
        noop <= bare * noop_slack,
        "no-op fault injection adds {:.1}% to a clean completion \
         (bare {bare} ns, faulty {noop} ns, budget {:.0}%)",
        (noop / bare - 1.0) * 100.0,
        (noop_slack - 1.0) * 100.0
    );
    println!(
        "faulty_noop overhead: {:+.2}% (bare {bare} ns, faulty {noop} ns, budget {:.0}%)",
        (noop / bare - 1.0) * 100.0,
        (noop_slack - 1.0) * 100.0
    );

    let wrapped_slack = 1.0 + env_f64("LLMDM_RESIL_WRAPPED_SLACK", 25.0) / 100.0;
    assert!(
        stack <= bare * wrapped_slack,
        "full resilient stack adds {:.1}% to a clean completion \
         (bare {bare} ns, stack {stack} ns, budget {:.0}%)",
        (stack / bare - 1.0) * 100.0,
        (wrapped_slack - 1.0) * 100.0
    );
    println!(
        "resilient_stack overhead: {:+.2}% (bare {bare} ns, stack {stack} ns, budget {:.0}%)",
        (stack / bare - 1.0) * 100.0,
        (wrapped_slack - 1.0) * 100.0
    );

    // Report, stamped like every other bench.
    let seed = std::env::var("LLMDM_BENCH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42);
    let meta = llmdm_obs::run_meta(Some(seed));
    let path = llmdm_rt::bench::report_dir().join("BENCH_resil_overhead.json");
    match c.write_json_with_meta(&path, "resil_overhead", &meta) {
        Ok(_) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
