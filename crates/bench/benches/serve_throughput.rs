//! Serving-layer throughput scaling and saturation, pinned.
//!
//! DESIGN.md §10/§15 claim the scheduler's worker pool overlaps
//! I/O-bound request latency: since a serving deployment spends its time
//! waiting on model APIs, N workers should approach N× the single-worker
//! ops/sec. This bench drives a mixed HotpotQA + NL2SQL workload through
//! the typed [`llmdm_serve::serve_requests`] surface at 1/2/4/8 workers
//! with a handler that *enacts* each completion's simulated latency as a
//! real (scaled-down) sleep — the deterministic stand-in for network
//! wait, so the measured scaling reflects wait-overlap rather than core
//! count (this repo's CI box has one core).
//!
//! Asserted invariants, before any timing:
//! * 1-worker serving is byte-identical (text + cost bits) to a direct
//!   sequential loop over the same jobs;
//! * after all runs, the fault injector's executed cost reconciles with
//!   the shared usage meter to 1e-9 even though workers billed it
//!   concurrently;
//! * every sweep configuration's accounting reconciles
//!   (`admitted + rejected + shed == submitted`, per tenant).
//!
//! Then: 8-worker ops/sec must be ≥ `LLMDM_SERVE_MIN_SPEEDUP` (default 3)
//! times the 1-worker figure, on median ns.
//!
//! The **saturation sweep** extends the report: ops/sec and p99 as the
//! offered load rises against a fixed per-tenant quota
//! (`serve_saturation/interval/*`, arrival interval 50 → 2 ms), and as
//! the tenant mix shifts between interactive- and batch-heavy
//! (`serve_saturation/mix/*`). Throughput counts *completed* jobs, so
//! the sweep shows the admitted plateau once quotas bind.
//!
//! `scripts/verify.sh` runs this with `LLMDM_BENCH_FAST=1`; results —
//! stamped with git rev + seed — land in `BENCH_serve.json`.

use std::sync::Arc;
use std::time::Duration;

use llmdm_cascade::{HotpotConfig, HotpotWorkload, QaSolver};
use llmdm_model::prelude::*;
use llmdm_nlq::{concert_domain, ExamplePool, Nl2SqlSolver, PromptBuilder, Workload, WorkloadConfig};
use llmdm_resil::FaultPlan;
use llmdm_rt::bench::{Criterion, Throughput};
use llmdm_serve::prelude::*;

const SEED: u64 = 42;
/// Real sleep = simulated latency / this. A ~300 ms simulated call
/// becomes ~1.2 ms of actual wait — long enough to dominate the CPU
/// cost of a simulated completion, short enough to keep the bench quick.
const LATENCY_SCALE: u32 = 256;

#[derive(Clone)]
struct Req {
    prompt: String,
}

/// The two task families as prompt pools.
struct Pools {
    hotpot: Vec<String>,
    nl2sql: Vec<String>,
}

fn pools(zoo: &ModelZoo) -> Pools {
    zoo.register_solver(Arc::new(QaSolver));
    zoo.register_solver(Arc::new(Nl2SqlSolver));
    let hotpot = HotpotWorkload::generate(HotpotConfig { n: 24, seed: SEED, ..Default::default() });
    let nlq_db = concert_domain(SEED);
    let builder = PromptBuilder::new(ExamplePool::generate(SEED), nlq_db.schema_summary());
    let nlq = Workload::generate(WorkloadConfig { n: 16, seed: SEED, ..Default::default() });
    Pools {
        hotpot: hotpot.items.iter().map(|i| i.prompt()).collect(),
        nl2sql: nlq.queries.iter().map(|q| builder.single(&q.text)).collect(),
    }
}

/// Interleave the pools `per_round.0` hotpot : `per_round.1` nl2sql into
/// typed requests — hotpot bills tenant `research` at interactive
/// priority, nl2sql bills `analytics` at batch priority.
fn mixed_requests(pools: &Pools, per_round: (usize, usize)) -> Vec<ServeRequest<Req>> {
    let mut jobs = Vec::new();
    let mut h = pools.hotpot.iter();
    let mut n = pools.nl2sql.iter();
    loop {
        let mut pushed = false;
        for prompt in h.by_ref().take(per_round.0) {
            jobs.push(
                ServeRequest::builder("research", Req { prompt: prompt.clone() })
                    .class(Priority::Interactive)
                    .batch_key("hotpot")
                    .build()
                    .expect("valid request"),
            );
            pushed = true;
        }
        for prompt in n.by_ref().take(per_round.1) {
            jobs.push(
                ServeRequest::builder("analytics", Req { prompt: prompt.clone() })
                    .class(Priority::Batch)
                    .batch_key("nl2sql")
                    .build()
                    .expect("valid request"),
            );
            pushed = true;
        }
        if !pushed {
            break;
        }
    }
    jobs
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn stat<'a>(c: &'a Criterion, id: &str) -> &'a llmdm_rt::bench::BenchStats {
    c.results().iter().find(|s| s.id == id).unwrap_or_else(|| panic!("no stats for `{id}`"))
}

fn main() {
    llmdm_obs::disable();
    let zoo = ModelZoo::standard(SEED);
    let pools = pools(&zoo);
    let jobs = mixed_requests(&pools, (3, 2));
    let total = jobs.len() as u64;

    // The serving stack: zoo large tier behind a no-op fault injector,
    // kept so executed-cost reconciliation can be asserted at the end.
    let stack = ModelStack::new(&zoo).with_faults(Arc::new(FaultPlan::none()));
    let faulty = stack.faulty().expect("with_faults applied").clone();
    let model = stack.build_arc();

    // The I/O-bound handler: complete, then actually wait the (scaled)
    // simulated latency, as a network-bound deployment would.
    let handler = |_class: &str, batch: &[Job<Req>]| -> Vec<Result<Completion, ModelError>> {
        batch
            .iter()
            .map(|j| {
                let c = model.complete(&CompletionRequest::new(j.payload.prompt.clone()))?;
                std::thread::sleep(c.latency / LATENCY_SCALE);
                Ok(c)
            })
            .collect()
    };

    // ---- Correctness gate 1: 1-worker ≡ direct loop. ----------------
    let direct: Vec<(String, u64)> = jobs
        .iter()
        .map(|r| {
            let c = model.complete(&CompletionRequest::new(r.payload.prompt.clone())).expect("ok");
            (c.text, c.cost.to_bits())
        })
        .collect();
    let one = serve_requests(
        &ServeConfig { workers: 1, seed: SEED, ..Default::default() },
        jobs.clone(),
        handler,
    );
    for (i, d) in one.results.iter().enumerate() {
        let Disposition::Done(Ok(c)) = d else { panic!("job {i} did not complete") };
        assert_eq!(
            (c.text.clone(), c.cost.to_bits()),
            direct[i],
            "job {i}: 1-worker serve differs from the direct call path"
        );
    }

    // ---- Timing: the same run at 1/2/4/8 workers. -------------------
    let mut c = Criterion::default();
    // Each sample is a whole serve run (tens of ms): stretch the budget
    // so every worker count gets a handful of samples even in fast mode.
    c.measure = c.measure.max(Duration::from_millis(250));
    {
        let mut group = c.benchmark_group("serve_throughput");
        group.throughput(Throughput::Elements(total));
        for workers in [1usize, 2, 4, 8] {
            let cfg = ServeConfig { workers, max_batch: 4, seed: SEED, ..Default::default() };
            group.bench_function(format!("workers/{workers}"), |b| {
                b.iter(|| {
                    let run = serve_requests(&cfg, jobs.clone(), handler);
                    assert_eq!(run.stats.admitted, total);
                    run
                })
            });
        }
        group.finish();
    }

    // ---- Saturation sweep: offered load × tenant mix under quota. ---
    // A fixed per-tenant bucket (burst 4, 100 jobs/sec refill) meets a
    // rising offered rate: at 50 ms between arrivals the quota never
    // binds; at 2 ms much of the tail throttles. Throughput counts
    // *completed* jobs, so ops/sec plateaus where admission saturates.
    let quota_cfg = |interval_ms: u64| {
        ServeConfig::builder()
            .workers(4)
            .max_batch(4)
            .seed(SEED)
            .arrival_interval_ms(interval_ms)
            .default_policy(TenantPolicy::per_sec(4, 100))
            .build()
            .expect("valid config")
    };
    {
        let mut group = c.benchmark_group("serve_saturation");
        for interval_ms in [50u64, 10, 2] {
            let cfg = quota_cfg(interval_ms);
            let probe = serve_requests(&cfg, jobs.clone(), handler);
            assert!(probe.stats.reconciles(), "interval {interval_ms}: {:?}", probe.stats);
            let admitted = probe.stats.admitted;
            assert!(admitted > 0, "interval {interval_ms} admitted nothing");
            println!(
                "saturation interval {interval_ms:>2} ms: {admitted}/{total} admitted \
                 ({} throttled)",
                probe.stats.rejected
            );
            group.throughput(Throughput::Elements(admitted));
            group.bench_function(format!("interval/{interval_ms}"), |b| {
                b.iter(|| {
                    let run = serve_requests(&cfg, jobs.clone(), handler);
                    assert_eq!(run.stats.admitted, admitted);
                    run
                })
            });
        }
        for (name, per_round) in
            [("interactive", (4usize, 1usize)), ("balanced", (2, 2)), ("batch", (1, 4))]
        {
            let mix = mixed_requests(&pools, per_round);
            let cfg = quota_cfg(10);
            let probe = serve_requests(&cfg, mix.clone(), handler);
            assert!(probe.stats.reconciles(), "mix {name}: {:?}", probe.stats);
            let admitted = probe.stats.admitted;
            group.throughput(Throughput::Elements(admitted));
            group.bench_function(format!("mix/{name}"), |b| {
                b.iter(|| {
                    let run = serve_requests(&cfg, mix.clone(), handler);
                    assert_eq!(run.stats.admitted, admitted);
                    run
                })
            });
        }
        group.finish();
    }

    // ---- Correctness gate 2: concurrent dollars reconcile. ----------
    let executed = faulty.executed_cost();
    let metered = zoo.meter().snapshot().total_dollars();
    let diff = (executed - metered).abs();
    assert!(diff < 1e-9, "executed ${executed:.9} != metered ${metered:.9} (diff {diff:e})");
    println!("dollar reconciliation: executed ${executed:.4} == metered ${metered:.4}");

    // ---- The scaling pin. -------------------------------------------
    let m1 = stat(&c, "serve_throughput/workers/1").median_ns as f64;
    for workers in [2usize, 4, 8] {
        let mw = stat(&c, &format!("serve_throughput/workers/{workers}")).median_ns as f64;
        println!("speedup at {workers} workers: {:.2}x", m1 / mw);
    }
    let m8 = stat(&c, "serve_throughput/workers/8").median_ns as f64;
    let min_speedup = env_f64("LLMDM_SERVE_MIN_SPEEDUP", 3.0);
    assert!(
        m1 / m8 >= min_speedup,
        "8-worker speedup {:.2}x below the {min_speedup:.1}x floor \
         (1w median {m1} ns, 8w median {m8} ns)",
        m1 / m8
    );

    // Report, stamped like every other bench.
    let seed = std::env::var("LLMDM_BENCH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(SEED);
    let meta = llmdm_obs::run_meta(Some(seed));
    let path = llmdm_rt::bench::report_dir().join("BENCH_serve.json");
    match c.write_json_with_meta(&path, "serve", &meta) {
        Ok(_) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
