//! Entity-resolution blocking and matching throughput.

use llmdm_rt::bench::{criterion_group, Criterion};
use llmdm_integrate::er::{block, evaluate, ErDataset, SimilarityMatcher};

fn bench_er(c: &mut Criterion) {
    let dataset = ErDataset::generate(120, 0.4, 7);
    let mut group = c.benchmark_group("entity_resolution");
    group.bench_function("blocking_180_records", |b| b.iter(|| block(&dataset.records)));
    let matcher = SimilarityMatcher::new(7, 0.72);
    group.bench_function("block_and_match", |b| b.iter(|| evaluate(&dataset, &matcher)));
    group.finish();
}

criterion_group!(benches, bench_er);
llmdm_obs::bench_main!(benches);
