//! Pattern mining and operator-program discovery throughput.

use llmdm_rt::bench::{criterion_group, Criterion};
use llmdm_transform::{discover_program, mine_pattern, Grid};

fn bench_transform(c: &mut Criterion) {
    let dates: Vec<String> =
        (0..200).map(|i| format!("{} {:02} 2023", ["Jan", "Feb", "Aug", "Dec"][i % 4], 1 + i % 28)).collect();
    let refs: Vec<&str> = dates.iter().map(|s| s.as_str()).collect();

    let mut grid: Grid = vec![
        vec!["Quarterly Report".into(), "".into(), "".into()],
        vec!["".into(), "".into(), "".into()],
        vec!["name".into(), "year".into(), "sales".into()],
    ];
    for i in 0..100 {
        grid.push(vec![format!("item{i}"), format!("{}", 2014 + i % 3), format!("{}", i * 7)]);
    }

    let mut group = c.benchmark_group("transform");
    group.bench_function("mine_pattern_200_values", |b| b.iter(|| mine_pattern(&refs)));
    group.bench_function("discover_program_100_rows", |b| b.iter(|| discover_program(&grid, 3, 8)));
    group.finish();
}

criterion_group!(benches, bench_transform);
llmdm_obs::bench_main!(benches);
