//! Vector index search: flat (exact) vs IVF vs HNSW — the recall/latency
//! engine room behind every vector-database use in the paper.

use llmdm_rt::bench::{criterion_group, BenchmarkId, Criterion};
use llmdm_vecdb::{FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Metric, VectorIndex};
use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::{Rng, SeedableRng};

const DIM: usize = 64;

fn random_vecs(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| (0..DIM).map(|_| rng.gen_range(-1.0..1.0f32)).collect()).collect()
}

fn bench_search(c: &mut Criterion) {
    let n = 10_000;
    let vecs = random_vecs(n, 1);
    let queries = random_vecs(64, 2);

    let mut flat = FlatIndex::new(DIM, Metric::Cosine);
    let mut ivf = IvfIndex::new(
        DIM,
        Metric::Cosine,
        IvfConfig { nlist: 64, nprobe: 8, ..Default::default() },
    )
    .expect("valid config");
    let mut hnsw = HnswIndex::new(DIM, Metric::Cosine, HnswConfig::default()).expect("valid config");
    for (i, v) in vecs.iter().enumerate() {
        flat.insert(i as u64, v.clone()).expect("insert");
        ivf.insert(i as u64, v.clone()).expect("insert");
        hnsw.insert(i as u64, v.clone()).expect("insert");
    }

    let mut group = c.benchmark_group("vecdb_search_10k");
    let mut qi = 0usize;
    group.bench_function(BenchmarkId::new("flat", "k10"), |b| {
        b.iter(|| {
            qi = (qi + 1) % queries.len();
            flat.search(&queries[qi], 10).expect("search")
        })
    });
    group.bench_function(BenchmarkId::new("ivf_nprobe8", "k10"), |b| {
        b.iter(|| {
            qi = (qi + 1) % queries.len();
            ivf.search(&queries[qi], 10).expect("search")
        })
    });
    group.bench_function(BenchmarkId::new("hnsw_ef64", "k10"), |b| {
        b.iter(|| {
            qi = (qi + 1) % queries.len();
            hnsw.search(&queries[qi], 10).expect("search")
        })
    });
    group.finish();

    // Report recall alongside latency (printed once).
    let mut overlap_ivf = 0usize;
    let mut overlap_hnsw = 0usize;
    let mut total = 0usize;
    for q in &queries {
        let gold: Vec<u64> =
            flat.search(q, 10).expect("search").iter().map(|h| h.id).collect();
        let ivf_ids: Vec<u64> =
            ivf.search(q, 10).expect("search").iter().map(|h| h.id).collect();
        let hnsw_ids: Vec<u64> =
            hnsw.search(q, 10).expect("search").iter().map(|h| h.id).collect();
        overlap_ivf += ivf_ids.iter().filter(|i| gold.contains(i)).count();
        overlap_hnsw += hnsw_ids.iter().filter(|i| gold.contains(i)).count();
        total += gold.len();
    }
    println!(
        "recall@10 vs flat: ivf={:.3} hnsw={:.3}",
        overlap_ivf as f64 / total as f64,
        overlap_hnsw as f64 / total as f64
    );
}

criterion_group!(benches, bench_search);
llmdm_obs::bench_main!(benches);
