//! Hybrid filtered search: pre-filter vs post-filter vs adaptive ordering
//! as selectivity varies (§III-B2's "order of filtering" question).

use llmdm_rt::bench::{criterion_group, BenchmarkId, Criterion};
use llmdm_vecdb::{AttrValue, Collection, Filter, HybridStrategy, Metric};
use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::{Rng, SeedableRng};

fn build(n: usize, rare_fraction: f64) -> Collection {
    let mut rng = SmallRng::seed_from_u64(3);
    let mut coll = Collection::new(32, Metric::Cosine);
    for id in 0..n as u64 {
        let v: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let tag = if rng.gen_bool(rare_fraction) { "rare" } else { "common" };
        coll.insert(id, v, [("tag", AttrValue::from(tag))]).expect("insert");
    }
    coll
}

fn bench_hybrid(c: &mut Criterion) {
    let n = 5_000;
    let mut rng = SmallRng::seed_from_u64(9);
    let queries: Vec<Vec<f32>> =
        (0..32).map(|_| (0..32).map(|_| rng.gen_range(-1.0..1.0f32)).collect()).collect();

    for (label, frac) in [("sel_2pct", 0.02), ("sel_50pct", 0.5)] {
        let coll = build(n, frac);
        let filter = Filter::eq("tag", "rare");
        let mut group = c.benchmark_group(format!("vecdb_hybrid_{label}"));
        let mut qi = 0usize;
        for (name, strat) in [
            ("prefilter", HybridStrategy::PreFilter),
            ("postfilter", HybridStrategy::PostFilter { expansion: 4 }),
            ("adaptive", HybridStrategy::default()),
        ] {
            group.bench_function(BenchmarkId::new(name, "k10"), |b| {
                b.iter(|| {
                    qi = (qi + 1) % queries.len();
                    coll.search_filtered_with(&queries[qi], 10, &filter, strat).expect("search")
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_hybrid);
llmdm_obs::bench_main!(benches);
