//! The cost of instrumentation, pinned.
//!
//! Two claims from DESIGN.md §8 are enforced here, not just stated:
//!
//! 1. A *disabled* recorder's entry points cost roughly one relaxed
//!    atomic load. Measured as 100-call batches (amortizing the timer
//!    overhead that would otherwise swamp a nanosecond-scale call) and
//!    asserted against `LLMDM_OBS_DISABLED_NS_MAX` ns/call (default 50).
//! 2. Wrapping the tokenizer hot loop with disabled instrumentation adds
//!    less than 5% (asserted on `min_ns`, the least noisy statistic,
//!    with `LLMDM_OBS_TOKENIZER_SLACK` percent slack, default 5).
//!
//! Enabled-recorder costs are measured for the report but not asserted —
//! they are allowed to cost what real recording costs.
//!
//! `scripts/verify.sh` runs this with `LLMDM_BENCH_FAST=1`; a regression
//! that makes the disabled path allocate or take a lock fails the build.

use llmdm_model::Tokenizer;
use llmdm_rt::bench::{black_box, Criterion};

const BATCH: usize = 100;

fn bench_disabled(c: &mut Criterion) {
    llmdm_obs::disable();
    let mut group = c.benchmark_group("obs_disabled");
    group.bench_function("counter_add_x100", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                llmdm_obs::counter_add(black_box("bench.noop"), 1.0);
            }
        })
    });
    group.bench_function("span_x100", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                let _guard = llmdm_obs::span(black_box("bench.noop"));
            }
        })
    });
    group.bench_function("observe_x100", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                llmdm_obs::observe(black_box("bench.noop"), 1.0);
            }
        })
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    llmdm_obs::enable();
    llmdm_obs::reset();
    let mut group = c.benchmark_group("obs_enabled");
    group.bench_function("counter_add_x100", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                llmdm_obs::counter_add(black_box("bench.enabled_counter"), 1.0);
            }
        })
    });
    group.bench_function("span_x100", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                let _guard = llmdm_obs::span(black_box("bench.enabled_span"));
            }
        })
    });
    group.finish();
    llmdm_obs::disable();
    llmdm_obs::reset();
}

fn bench_tokenizer_overhead(c: &mut Criterion) {
    llmdm_obs::disable();
    let tok = Tokenizer::new();
    let prompt = include_str!("obs_overhead.rs").repeat(4);
    let mut group = c.benchmark_group("tokenizer_obs");
    group.bench_function("plain", |b| b.iter(|| tok.count(black_box(&prompt))));
    group.bench_function("with_disabled_obs", |b| {
        b.iter(|| {
            // The exact instrumentation shape used on hot paths: a span
            // guard plus a counter bump, recorder disabled.
            let _span = llmdm_obs::span("bench.tokenize");
            let n = tok.count(black_box(&prompt));
            llmdm_obs::counter_add("bench.tokens", n as f64);
            n
        })
    });
    group.finish();
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn stat<'a>(c: &'a Criterion, id: &str) -> &'a llmdm_rt::bench::BenchStats {
    c.results()
        .iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("no stats for `{id}`"))
}

fn main() {
    let mut c = Criterion::default();
    bench_disabled(&mut c);
    bench_enabled(&mut c);
    bench_tokenizer_overhead(&mut c);

    // Pin claim 1: disabled entry points stay ~an atomic load per call.
    let max_per_call_ns = env_f64("LLMDM_OBS_DISABLED_NS_MAX", 50.0);
    for id in
        ["obs_disabled/counter_add_x100", "obs_disabled/span_x100", "obs_disabled/observe_x100"]
    {
        let s = stat(&c, id);
        let per_call = s.median_ns as f64 / BATCH as f64;
        assert!(
            per_call <= max_per_call_ns,
            "{id}: {per_call:.1} ns/call exceeds the disabled-path budget of {max_per_call_ns} ns \
             (median {} ns per {BATCH}-call batch)",
            s.median_ns
        );
        println!("{id}: {per_call:.2} ns/call (budget {max_per_call_ns})");
    }

    // Pin claim 2: <5% overhead on the tokenizer hot loop.
    let slack = 1.0 + env_f64("LLMDM_OBS_TOKENIZER_SLACK", 5.0) / 100.0;
    let plain = stat(&c, "tokenizer_obs/plain").min_ns as f64;
    let with_obs = stat(&c, "tokenizer_obs/with_disabled_obs").min_ns as f64;
    assert!(
        with_obs <= plain * slack,
        "disabled obs adds {:.1}% to the tokenizer loop (plain {plain} ns, with obs {with_obs} ns, \
         budget {:.0}%)",
        (with_obs / plain - 1.0) * 100.0,
        (slack - 1.0) * 100.0
    );
    println!(
        "tokenizer overhead: {:+.2}% (plain {plain} ns, with disabled obs {with_obs} ns)",
        (with_obs / plain - 1.0) * 100.0
    );

    // Report, stamped like every other bench.
    let seed = std::env::var("LLMDM_BENCH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42);
    let meta = llmdm_obs::run_meta(Some(seed));
    let path = llmdm_rt::bench::report_dir().join("BENCH_obs_overhead.json");
    match c.write_json_with_meta(&path, "obs_overhead", &meta) {
        Ok(_) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
