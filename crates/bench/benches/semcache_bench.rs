//! Semantic-cache lookup/insert throughput and eviction-policy overhead.

use llmdm_rt::bench::{criterion_group, BenchmarkId, Criterion};
use llmdm_semcache::{CacheConfig, EntryKind, EvictionPolicy, SemanticCache};

fn filled_cache(n: usize, policy: EvictionPolicy) -> SemanticCache {
    let mut c = SemanticCache::new(CacheConfig { capacity: n, policy, ..Default::default() });
    for i in 0..n {
        c.insert(
            &format!("historical analytical query number {i} about topic {}", i % 17),
            "SELECT cached",
            EntryKind::Original,
        );
    }
    c
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("semcache");
    for n in [256usize, 1024] {
        let mut cache = filled_cache(n, EvictionPolicy::default());
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("lookup_hit", n), |b| {
            b.iter(|| {
                i = (i + 1) % n;
                cache.lookup(&format!(
                    "historical analytical query number {i} about topic {}",
                    i % 17
                ))
            })
        });
        group.bench_function(BenchmarkId::new("lookup_miss", n), |b| {
            b.iter(|| {
                i += 1;
                cache.lookup(&format!("zzqx unrelated nonsense {i} kwyjibo"))
            })
        });
    }
    for (name, policy) in [
        ("lru", EvictionPolicy::Lru),
        ("weighted", EvictionPolicy::Weighted { reuse_weight: 4.0, augment_weight: 1.0 }),
    ] {
        let mut cache = filled_cache(256, policy);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("insert_with_eviction", name), |b| {
            b.iter(|| {
                i += 1;
                cache.insert(&format!("fresh query {i} forcing an eviction"), "sql", EntryKind::Original)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache);
llmdm_obs::bench_main!(benches);
