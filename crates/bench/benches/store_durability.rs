//! Durable-storage costs, pinned (DESIGN.md §13).
//!
//! Two claims worth numbers:
//!
//! * **the buffer pool earns its keep** — a scan whose pages are
//!   resident (warm) must beat a scan that faults every page in from
//!   the VFS and re-verifies its checksum (cold) by at least
//!   `LLMDM_STORE_MIN_SPEEDUP` (default 2×). Cold scans run against
//!   real files (`DirVfs` in a temp dir) so the fault-in path includes
//!   genuine `read`s, not just map lookups;
//! * **recovery cost scales with WAL length** — with checkpointing
//!   disabled, re-opening a store replays every committed frame; the
//!   bench times recovery against a short and a long WAL so regressions
//!   in the replay loop are visible. Reported, not pinned: absolute
//!   recovery time is machine-dependent, but both images are
//!   correctness-gated before timing.
//!
//! `scripts/verify.sh` runs this with `LLMDM_BENCH_FAST=1`; results
//! land in `BENCH_store.json`.

use llmdm_rt::bench::Criterion;
use llmdm_store::{DirVfs, MemVfs, SharedVfs, Store, StoreConfig};

const SPACE: &str = "bench";
// Page-sized records, one per page: the scan's per-record copy cost is
// then proportional to the page count, and the cold/warm delta isolates
// the fault-in path (file open + read + checksum verify) we're pinning.
const RECORDS: usize = 150;
const RECORD_LEN: usize = 3800;

/// Pool large enough to hold the whole fixture, so the warm scan never
/// evicts.
fn scan_config() -> StoreConfig {
    StoreConfig { pool_pages: 256, ..StoreConfig::default() }
}

fn record(i: usize) -> Vec<u8> {
    let mut r = vec![0u8; RECORD_LEN];
    r[..8].copy_from_slice(&(i as u64).to_le_bytes());
    for (j, b) in r.iter_mut().enumerate().skip(8) {
        *b = ((i * 31 + j * 7) % 251) as u8;
    }
    r
}

/// Populate a store on `vfs` with the scan fixture and close it.
fn populate(vfs: SharedVfs) {
    let mut store = Store::open(vfs, scan_config()).expect("open for populate");
    store
        .with_txn(|s| {
            s.create_space(SPACE)?;
            for i in 0..RECORDS {
                s.append(SPACE, &record(i))?;
            }
            Ok(())
        })
        .expect("populate commits");
}

/// A crashed image whose WAL holds `commits` committed transactions
/// (checkpointing disabled, so every re-open replays all of them).
fn wal_image(commits: usize) -> SharedVfs {
    let vfs = MemVfs::shared();
    let cfg = StoreConfig { checkpoint_bytes: None, ..StoreConfig::default() };
    let mut store = Store::open(vfs.clone(), cfg).expect("open for wal image");
    store
        .with_txn(|s| s.create_space(SPACE))
        .expect("create space");
    for c in 0..commits {
        store
            .with_txn(|s| {
                for i in 0..8 {
                    s.append(SPACE, &record(c * 8 + i))?;
                }
                Ok(())
            })
            .expect("commit");
    }
    drop(store);
    vfs
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn stat<'a>(c: &'a Criterion, id: &str) -> &'a llmdm_rt::bench::BenchStats {
    c.results().iter().find(|s| s.id == id).unwrap_or_else(|| panic!("no stats for `{id}`"))
}

fn main() {
    llmdm_obs::disable();

    // ---- Scan fixture on real files. --------------------------------
    let dir = std::env::temp_dir().join(format!("llmdm_store_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let vfs = DirVfs::shared(&dir).expect("dir vfs");
    populate(vfs.clone());
    let mut store = Store::open(vfs, scan_config()).expect("re-open");

    // Correctness gate: the fixture reads back exactly, cold and warm.
    store.clear_pool().expect("clear pool");
    let misses_before = store.pool_stats().misses;
    let cold = store.scan(SPACE).expect("cold scan");
    let faulted = store.pool_stats().misses - misses_before;
    let warm = store.scan(SPACE).expect("warm scan");
    assert_eq!(cold.len(), RECORDS);
    assert_eq!(cold, warm, "cold and warm scans must agree");
    for (i, r) in cold.iter().enumerate() {
        assert_eq!(*r, record(i), "record {i} corrupted");
    }
    assert!(faulted > 10, "fixture too small to exercise the pool ({faulted} pages)");

    // ---- Recovery fixtures, gated. ----------------------------------
    let short_wal = wal_image(8);
    let long_wal = wal_image(64);
    for (vfs, commits) in [(&short_wal, 8), (&long_wal, 64)] {
        let mut s = Store::open(vfs.clone(), StoreConfig { checkpoint_bytes: None, ..StoreConfig::default() })
            .expect("recovery open");
        assert_eq!(s.recovery().committed_txns, commits + 1, "wal image lost commits");
        assert_eq!(s.scan(SPACE).expect("post-recovery scan").len(), commits * 8);
    }

    // ---- Timing. ----------------------------------------------------
    let mut c = Criterion::default();
    {
        let mut group = c.benchmark_group("store");
        group.bench_function("scan/cold", |b| {
            b.iter(|| {
                store.clear_pool().expect("clear pool");
                store.scan(SPACE).expect("scan")
            })
        });
        group.bench_function("scan/warm", |b| {
            b.iter(|| store.scan(SPACE).expect("scan"))
        });
        let recovery_cfg =
            || StoreConfig { checkpoint_bytes: None, ..StoreConfig::default() };
        group.bench_function("recovery/wal_8_commits", |b| {
            b.iter(|| Store::open(short_wal.clone(), recovery_cfg()).expect("recover"))
        });
        group.bench_function("recovery/wal_64_commits", |b| {
            b.iter(|| Store::open(long_wal.clone(), recovery_cfg()).expect("recover"))
        });
        group.finish();
    }

    // ---- The pin: a warm pool beats re-faulting every page. ---------
    let cold_ns = stat(&c, "store/scan/cold").median_ns as f64;
    let warm_ns = stat(&c, "store/scan/warm").median_ns as f64;
    let min_speedup = env_f64("LLMDM_STORE_MIN_SPEEDUP", 2.0);
    println!(
        "scan: warm speedup {:.2}x over cold (cold {cold_ns} ns, warm {warm_ns} ns, {faulted} pages)",
        cold_ns / warm_ns
    );
    assert!(
        cold_ns / warm_ns >= min_speedup,
        "warm scan speedup {:.2}x below the {min_speedup:.1}x floor \
         (cold median {cold_ns} ns, warm median {warm_ns} ns)",
        cold_ns / warm_ns
    );
    let rec8 = stat(&c, "store/recovery/wal_8_commits").median_ns;
    let rec64 = stat(&c, "store/recovery/wal_64_commits").median_ns;
    println!("recovery: 8-commit WAL {rec8} ns, 64-commit WAL {rec64} ns");

    let seed = std::env::var("LLMDM_BENCH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
    let meta = llmdm_obs::run_meta(Some(seed));
    let path = llmdm_rt::bench::report_dir().join("BENCH_store.json");
    match c.write_json_with_meta(&path, "store", &meta) {
        Ok(_) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
