//! Query-planner wins, pinned.
//!
//! DESIGN.md §11 claims the Volcano planner beats the direct executor on
//! two workload shapes, for concrete mechanical reasons:
//!
//! * **filtered scan** — fused scan predicates evaluate against the
//!   *borrowed* stored row and only clone matches, while the direct path
//!   clones the entire table before filtering;
//! * **top-k** — `LIMIT k` pushes a `fetch` into the sort, so the
//!   planner keeps a k-row sorted prefix instead of sorting everything.
//!
//! Before any timing, every benched query is asserted **bit-identical**
//! across the two paths ([`llmdm_sqlengine::ResultSet::bit_eq`]). After
//! timing, the filtered-scan and top-k speedups (direct median ns /
//! planner median ns) must each clear `LLMDM_SQLPLAN_MIN_SPEEDUP`
//! (default 1.2×). `join_group` is reported unpinned — both paths share
//! the same join and aggregation code, so parity is the expectation.
//!
//! `scripts/verify.sh` runs this with `LLMDM_BENCH_FAST=1`; results land
//! in `BENCH_sqlplan.json`.

use llmdm_rt::bench::Criterion;
use llmdm_sqlengine::exec::{execute_select, execute_select_direct};
use llmdm_sqlengine::{parse_statement, Database, SelectStmt, Statement, Value};

const EVENT_ROWS: i64 = 8000;
const VENUES: i64 = 25;

/// A deterministic two-table fixture big enough that per-row costs
/// dominate: `events` (8000 rows, ~3% selective filters) plus a small
/// `venues` dimension table.
fn fixture() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE venues (venue_id INT, vname TEXT, capacity INT); \
         CREATE TABLE events (event_id INT, venue_id INT, year INT, attendance INT, score FLOAT)",
    )
    .expect("ddl");
    for v in 0..VENUES {
        db.table_mut("venues")
            .unwrap()
            .push_row(vec![
                Value::Int(v),
                Value::Str(format!("venue-{v}")),
                Value::Int(10_000 + (v * 3127) % 50_000),
            ])
            .expect("venue row");
    }
    for i in 0..EVENT_ROWS {
        // Cheap deterministic hash scatter; no RNG needed.
        let h = i.wrapping_mul(2654435761) % 100_000;
        db.table_mut("events")
            .unwrap()
            .push_row(vec![
                Value::Int(i),
                Value::Int(i % VENUES),
                Value::Int(2000 + (h % 25)),
                Value::Int(h % 90_000),
                Value::Float((h % 1000) as f64 / 10.0),
            ])
            .expect("event row");
    }
    db
}

fn select_stmt(sql: &str) -> SelectStmt {
    match parse_statement(sql).expect("parses") {
        Statement::Select(s) => s,
        _ => unreachable!("bench queries are SELECTs"),
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn stat<'a>(c: &'a Criterion, id: &str) -> &'a llmdm_rt::bench::BenchStats {
    c.results().iter().find(|s| s.id == id).unwrap_or_else(|| panic!("no stats for `{id}`"))
}

fn main() {
    llmdm_obs::disable();
    let db = fixture();

    let cases: Vec<(&str, SelectStmt)> = vec![
        (
            // ~3% of 8000 rows survive: the fused-scan clone savings case.
            "filtered_scan",
            select_stmt(
                "SELECT event_id, attendance FROM events \
                 WHERE year = 2014 AND attendance > 20000",
            ),
        ),
        (
            "join_group",
            select_stmt(
                "SELECT v.vname, COUNT(*), MAX(e.attendance) FROM venues v \
                 JOIN events e ON v.venue_id = e.venue_id \
                 WHERE e.year >= 2020 GROUP BY v.vname",
            ),
        ),
        (
            // Full 8000-row sort vs a 10-row top-k prefix.
            "topk",
            select_stmt(
                "SELECT event_id, score FROM events ORDER BY score DESC, event_id LIMIT 10",
            ),
        ),
    ];

    // ---- Correctness gate: planner ≡ direct, bit for bit. -----------
    for (name, stmt) in &cases {
        let planned = execute_select(&db, stmt).expect("planner executes");
        let direct = execute_select_direct(&db, stmt).expect("direct executes");
        assert!(
            planned.bit_eq(&direct),
            "{name}: planner and direct paths disagree\n planner: {planned:?}\n direct:  {direct:?}"
        );
        assert!(!planned.rows.is_empty(), "{name}: degenerate empty result");
    }

    // ---- Timing: each case on both paths. ---------------------------
    let mut c = Criterion::default();
    {
        let mut group = c.benchmark_group("sqlplan");
        for (name, stmt) in &cases {
            group.bench_function(format!("{name}/direct"), |b| {
                b.iter(|| execute_select_direct(&db, stmt).expect("executes"))
            });
            group.bench_function(format!("{name}/plan"), |b| {
                b.iter(|| execute_select(&db, stmt).expect("executes"))
            });
        }
        group.finish();
    }

    // ---- The speedup pins. ------------------------------------------
    let min_speedup = env_f64("LLMDM_SQLPLAN_MIN_SPEEDUP", 1.2);
    for name in ["filtered_scan", "join_group", "topk"] {
        let d = stat(&c, &format!("sqlplan/{name}/direct")).median_ns as f64;
        let p = stat(&c, &format!("sqlplan/{name}/plan")).median_ns as f64;
        println!("{name}: planner speedup {:.2}x (direct {d} ns, plan {p} ns)", d / p);
    }
    for name in ["filtered_scan", "topk"] {
        let d = stat(&c, &format!("sqlplan/{name}/direct")).median_ns as f64;
        let p = stat(&c, &format!("sqlplan/{name}/plan")).median_ns as f64;
        assert!(
            d / p >= min_speedup,
            "{name}: planner speedup {:.2}x below the {min_speedup:.1}x floor \
             (direct median {d} ns, plan median {p} ns)",
            d / p
        );
    }

    let seed = std::env::var("LLMDM_BENCH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
    let meta = llmdm_obs::run_meta(Some(seed));
    let path = llmdm_rt::bench::report_dir().join("BENCH_sqlplan.json");
    match c.write_json_with_meta(&path, "sqlplan", &meta) {
        Ok(_) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
