//! Reproduce **Table II** (query decomposition and combination on NL2SQL).
//!
//! Paper: Origin 79% / $0.435 → Decomposition 91% / $0.289 →
//! Decomposition+Combination 91% / $0.129.
//!
//! Usage: `repro_table2 [--seed N] [--sweep]` (`--sweep` varies the
//! sub-query sharing factor via the atom pool size).

use llmdm_bench::{dollars, has_flag, pct, render_table, seed_arg};
use llmdm_nlq::pipeline::{run_table2, run_table2_with};
use llmdm_nlq::workload::WorkloadConfig;

fn main() {
    let base_seed = seed_arg();
    let seeds: Vec<u64> = (0..10).map(|i| base_seed.wrapping_add(i)).collect();
    let mut acc = [0.0f64; 3];
    let mut cost = [0.0f64; 3];
    let mut calls = [0.0f64; 3];
    for &s in &seeds {
        let r = run_table2(s);
        for (i, p) in [r.origin, r.decomposition, r.combination].iter().enumerate() {
            acc[i] += p.accuracy;
            cost[i] += p.cost;
            calls[i] += p.calls as f64;
        }
    }
    let n = seeds.len() as f64;
    let labels = ["Origin", "Decomposition", "Decomposition+Combination"];
    let paper = ["79% / $0.435", "91% / $0.289", "91% / $0.129"];
    let rows: Vec<Vec<String>> = (0..3)
        .map(|i| {
            vec![
                labels[i].to_string(),
                pct(acc[i] / n),
                dollars(cost[i] / n),
                format!("{:.1}", calls[i] / n),
                paper[i].to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Table II — NL2SQL query decomposition & combination \
                 (20-query workload, mean of {} seeds from {base_seed})",
                seeds.len()
            ),
            &["pipeline", "accuracy", "api cost", "model calls", "paper"],
            &rows,
        )
    );

    if has_flag("--sweep") {
        let mut rows = Vec::new();
        for pool in [4usize, 6, 8, 10, 12] {
            let mut saved = 0.0;
            for &s in &seeds {
                let r = run_table2_with(
                    s,
                    WorkloadConfig { atom_pool: pool, seed: s, ..Default::default() },
                );
                saved += 1.0 - r.combination.cost / r.origin.cost.max(1e-12);
            }
            rows.push(vec![format!("{pool}"), pct(saved / n)]);
        }
        println!(
            "{}",
            render_table(
                "Sharing-factor sweep: cost saved by decomposition+combination \
                 vs origin as the atom pool grows (less sharing)",
                &["atom pool size", "cost saved"],
                &rows,
            )
        );
    }
}
