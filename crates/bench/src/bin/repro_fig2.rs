//! Reproduce **Figure 2** — SQL generation with LLMs: "the table
//! information and SQL constraints are input … and output multiple SQL
//! queries that meet the constraints", covering the figure's simple,
//! multi-join, and sub-query kinds, plus the logic-bug-testing use via
//! semantic-equivalence pairs.
//!
//! Usage: `repro_fig2 [--seed N]`

use llmdm_bench::{pct, render_table, seed_arg};
use llmdm_datagen::{
    check_equivalence, equivalent_variants, tlp_partition, QueryKind, SqlGenConstraints,
    SqlGenerator,
};
use llmdm_nlq::concert_domain;

fn main() {
    let seed = seed_arg();
    let db = concert_domain(seed);
    let mut generator = SqlGenerator::new(seed);
    let constraints = SqlGenConstraints { n: 40, require_nonempty: true, ..Default::default() };
    let generated = generator.generate(&db, &constraints);

    let mut rows = Vec::new();
    for kind in QueryKind::ALL {
        let of_kind: Vec<_> = generated.iter().filter(|g| g.kind == kind).collect();
        let mut scratch = db.clone();
        let executable =
            of_kind.iter().filter(|g| scratch.query(&g.sql).is_ok()).count();
        let nonempty = of_kind
            .iter()
            .filter(|g| scratch.query(&g.sql).map(|rs| !rs.is_empty()).unwrap_or(false))
            .count();
        let example = of_kind.first().map(|g| g.sql.clone()).unwrap_or_default();
        rows.push(vec![
            format!("{kind:?}"),
            format!("{}", of_kind.len()),
            pct(executable as f64 / of_kind.len().max(1) as f64),
            pct(nonempty as f64 / of_kind.len().max(1) as f64),
            example.chars().take(70).collect(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Figure 2 — constraint-aware SQL generation over the concert schema \
                 (n=40, executable + non-empty required, seed {seed})"
            ),
            &["kind", "count", "executable", "non-empty", "example"],
            &rows,
        )
    );

    // Logic-bug testing: every generated simple query yields equivalence
    // pairs; a correct engine passes all of them.
    let mut checked = 0usize;
    let mut passed = 0usize;
    let mut tlp_checked = 0usize;
    let mut tlp_passed = 0usize;
    for g in generated.iter().filter(|g| g.kind == QueryKind::Simple) {
        if let Ok(variants) = equivalent_variants(&g.sql) {
            for v in variants {
                checked += 1;
                if check_equivalence(&db, &g.sql, &v).unwrap_or(false) {
                    passed += 1;
                }
            }
        }
        if let Ok((unfiltered, partitioned)) = tlp_partition(&g.sql) {
            tlp_checked += 1;
            if check_equivalence(&db, &unfiltered, &partitioned).unwrap_or(false) {
                tlp_passed += 1;
            }
        }
    }
    println!(
        "{}",
        render_table(
            "Semantic-equivalence pairs for DBMS logic-bug testing",
            &["oracle", "pairs checked", "pairs equivalent"],
            &[
                vec![
                    "tautology rewrites".into(),
                    format!("{checked}"),
                    format!("{passed} ({})", pct(passed as f64 / checked.max(1) as f64)),
                ],
                vec![
                    "TLP partitioning".into(),
                    format!("{tlp_checked}"),
                    format!(
                        "{tlp_passed} ({})",
                        pct(tlp_passed as f64 / tlp_checked.max(1) as f64)
                    ),
                ],
            ],
        )
    );
}
