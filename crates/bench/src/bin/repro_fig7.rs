//! Reproduce **Figure 7** — decomposition of the paper's exact five
//! stadium queries: shared sub-queries (Q11 = Q21) are called once.
//!
//! Usage: `repro_fig7 [--seed N]`

use std::collections::BTreeMap;
use std::sync::Arc;

use llmdm_bench::{dollars, render_table, seed_arg};
use llmdm_model::{CompletionRequest, LanguageModel, ModelZoo};
use llmdm_nlq::decompose::{decompose, recompose, unique_atoms};
use llmdm_nlq::prompt::{ExamplePool, PromptBuilder};
use llmdm_nlq::workload::fig7_queries;
use llmdm_nlq::{concert_domain, Nl2SqlSolver};

fn main() {
    let seed = seed_arg();
    let queries = fig7_queries();
    let db = concert_domain(seed);

    // The decomposition structure.
    let mut rows = Vec::new();
    for q in &queries {
        let d = decompose(q);
        rows.push(vec![
            format!("Q{}", q.id),
            q.text.clone(),
            d.atom_keys.join("  +  "),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Figure 7 — the five queries and their sub-queries (shared keys = shared sub-queries)",
            &["id", "question", "sub-query keys"],
            &rows,
        )
    );

    let atoms = unique_atoms(&queries);
    println!(
        "{} atom references across Q1–Q5 collapse to {} unique sub-queries → {} model calls saved\n",
        queries.iter().map(|q| q.shape.atoms().len()).sum::<usize>(),
        atoms.len(),
        queries.iter().map(|q| q.shape.atoms().len()).sum::<usize>() - atoms.len(),
    );

    // Run both pipelines over exactly these five queries.
    let zoo = ModelZoo::standard(seed);
    zoo.register_solver(Arc::new(Nl2SqlSolver));
    let model = zoo.large();
    let builder = PromptBuilder::new(ExamplePool::generate(seed), db.schema_summary());

    let gold: Vec<_> = queries
        .iter()
        .map(|q| {
            match llmdm_sqlengine::parse_statement(&q.gold_sql).expect("gold parses") {
                llmdm_sqlengine::Statement::Select(s) => {
                    llmdm_sqlengine::exec::execute_select(&db, &s).expect("gold executes")
                }
                _ => unreachable!(),
            }
        })
        .collect();

    // Origin.
    zoo.meter().reset();
    let mut origin_ok = 0;
    for (q, g) in queries.iter().zip(&gold) {
        if let Ok(c) = model.complete(&CompletionRequest::new(builder.single(&q.text))) {
            if let Ok(llmdm_sqlengine::Statement::Select(s)) =
                llmdm_sqlengine::parse_statement(c.text.trim())
            {
                if let Ok(rs) = llmdm_sqlengine::exec::execute_select(&db, &s) {
                    if rs.bag_eq(g) {
                        origin_ok += 1;
                    }
                }
            }
        }
    }
    let origin_cost = zoo.meter().snapshot().total_dollars();

    // Decomposed with sub-query sharing.
    zoo.meter().reset();
    let mut answers: BTreeMap<String, String> = BTreeMap::new();
    for (key, atom) in &atoms {
        if let Ok(c) = model.complete(&CompletionRequest::new(builder.single(&atom.sub_question()))) {
            answers.insert(key.clone(), c.text.trim().to_string());
        }
    }
    let mut decomp_ok = 0;
    for (q, g) in queries.iter().zip(&gold) {
        if let Ok(rs) = recompose(&db, &decompose(q), &answers) {
            if rs.bag_eq(g) {
                decomp_ok += 1;
            }
        }
    }
    let decomp_cost = zoo.meter().snapshot().total_dollars();

    println!(
        "{}",
        render_table(
            "Running Q1–Q5 both ways",
            &["pipeline", "model calls", "correct of 5", "api cost"],
            &[
                vec!["origin (one call per query)".into(), "5".into(), format!("{origin_ok}"), dollars(origin_cost)],
                vec![
                    "decomposed (unique sub-queries)".into(),
                    format!("{}", atoms.len()),
                    format!("{decomp_ok}"),
                    dollars(decomp_cost),
                ],
            ],
        )
    );
}
