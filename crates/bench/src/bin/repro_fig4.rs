//! Reproduce **Figure 4** — transformation for tables: semi-structured
//! data (XML/JSON) and non-relational spreadsheets become structured
//! tables that SQL can query.
//!
//! Usage: `repro_fig4 [--seed N]`

use llmdm_bench::render_table;
use llmdm_transform::synthesize::apply_program;
use llmdm_transform::{discover_program, json_to_tables, relationality, xml_to_table, Grid, JsonValue, XmlNode};

fn main() {
    let mut rows = Vec::new();

    // Left path: JSON documents → relational tables.
    let json = JsonValue::parse(
        r#"{"hospital": "BIT General", "patients": [
            {"name": "alice", "age": 34, "labs": [{"test": "hb", "value": 1.2}, {"test": "glu", "value": 5.4}]},
            {"name": "bob", "age": 40, "labs": [{"test": "hb", "value": 0.9}]},
            {"name": "chen", "age": 28}]}"#,
    )
    .expect("valid JSON");
    let tables = json_to_tables("patients", &json).expect("relationalizes");
    rows.push(vec![
        "JSON document".into(),
        format!(
            "{} tables: {}",
            tables.len(),
            tables.iter().map(|t| format!("{}({} rows)", t.name, t.rows.len())).collect::<Vec<_>>().join(", ")
        ),
    ]);

    // Left path: XML → relational table.
    let xml = XmlNode::parse(
        r#"<lab_reports>
             <report id="1"><patient>alice</patient><result>normal</result></report>
             <report id="2"><patient>bob</patient><result>elevated</result></report>
           </lab_reports>"#,
    )
    .expect("valid XML");
    let xml_table = xml_to_table(&xml).expect("relationalizes");
    rows.push(vec![
        "XML document".into(),
        format!("table {}({} rows, {} cols)", xml_table.name, xml_table.rows.len(), xml_table.schema.len()),
    ]);

    // Right path: non-relational spreadsheet → operator program.
    let grid: Grid = vec![
        vec!["Regional Sales 2015".into(), "".into(), "".into(), "".into()],
        vec!["".into(), "".into(), "".into(), "".into()],
        vec!["region".into(), "q1".into(), "q2".into(), "q3".into()],
        vec!["east".into(), "10".into(), "12".into(), "9".into()],
        vec!["west".into(), "20".into(), "18".into(), "25".into()],
    ];
    let before = relationality(&grid);
    let (program, after) = discover_program(&grid, 3, 8);
    let reshaped = apply_program(&grid, &program);
    rows.push(vec![
        "spreadsheet (report header)".into(),
        format!(
            "program {program:?}; relationality {before:.2} → {after:.2}; \
             header row now {:?}",
            reshaped.first().map(|r| r.join(",")).unwrap_or_default()
        ),
    ]);

    // The queryability payoff: SQL over the produced tables.
    let mut db = llmdm_sqlengine::Database::new();
    for t in tables {
        db.create_table(t).expect("fresh names");
    }
    let rs = db
        .query("SELECT name FROM patients WHERE age > 30")
        .expect("relationalized table is queryable");
    rows.push(vec![
        "SQL over the output".into(),
        format!("SELECT name FROM patients WHERE age > 30 → {} rows", rs.rows.len()),
    ]);

    println!(
        "{}",
        render_table(
            "Figure 4 — transformation for tables (semi-structured and spreadsheets → relational)",
            &["input", "outcome"],
            &rows,
        )
    );
}
