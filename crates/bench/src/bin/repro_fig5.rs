//! Reproduce **Figure 5** — the challenges-and-opportunities overview:
//! one headline measurement per challenge area, produced by the actual
//! mechanism each section envisions.
//!
//! Usage: `repro_fig5 [--seed N]`

use llmdm_bench::{pct, render_table, seed_arg};

fn main() {
    let seed = seed_arg();
    let mut rows = Vec::new();

    // §III-A prompt optimization: performance-aware selection beats
    // similarity-only on a store with a similar-but-bad prompt.
    {
        use llmdm_promptopt::{PerformanceAware, PromptSelector, PromptStore, SimilarityTopK};
        let mut store = PromptStore::new(seed);
        let bad = store
            .insert("translate stadium concert questions into SQL queries quickly", "nl2sql")
            .expect("insert");
        let good =
            store.insert("translate stadium concert questions into SQL", "nl2sql").expect("insert");
        for _ in 0..10 {
            store.record_reward(bad, 0.0);
            store.record_reward(good, 1.0);
        }
        let q = "translate stadium concert questions into SQL queries quickly please";
        let sim_pick = SimilarityTopK.select(&store, q, 1).expect("select")[0];
        let perf_pick = PerformanceAware::default().select(&store, q, 1).expect("select")[0];
        rows.push(vec![
            "prompt optimization (§III-A)".into(),
            format!(
                "similarity-only picks the failing prompt ({}), performance-aware \
                 recovers the useful one ({})",
                sim_pick == bad,
                perf_pick == good
            ),
        ]);
    }

    // §III-B query optimization: cascade + decomposition headline numbers.
    {
        let t1 = llmdm_cascade::run_table1(seed);
        rows.push(vec![
            "query optimization: cascade (§III-B1)".into(),
            format!(
                "cascade {} at {:.0}% of the large tier's cost",
                pct(t1.cascade.accuracy),
                100.0 * t1.cascade.cost / t1.tiers[2].cost
            ),
        ]);
        // Mean of three seeds: the 20-query workload is small and
        // sub-query reuse correlates errors, so single-seed accuracy is
        // noisy.
        let (mut o_acc, mut c_acc, mut o_cost, mut c_cost) = (0.0, 0.0, 0.0, 0.0);
        for s in 0..3 {
            let t2 = llmdm_nlq::run_table2(seed.wrapping_add(s));
            o_acc += t2.origin.accuracy;
            c_acc += t2.combination.accuracy;
            o_cost += t2.origin.cost;
            c_cost += t2.combination.cost;
        }
        rows.push(vec![
            "query optimization: decompose+combine (§III-B1)".into(),
            format!(
                "accuracy {} → {}, cost {:.0}% of origin",
                pct(o_acc / 3.0),
                pct(c_acc / 3.0),
                100.0 * c_cost / o_cost
            ),
        ]);
    }

    // §III-B2 multi-modal hybrid search: adaptive ordering.
    {
        use llmdm_vecdb::{AttrValue, Collection, Filter, HybridStrategy, Metric};
        use llmdm_rt::rand::rngs::SmallRng;
        use llmdm_rt::rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coll = Collection::new(16, Metric::Cosine);
        for id in 0..2000u64 {
            let v: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let tag = if id % 50 == 0 { "rare" } else { "common" };
            coll.insert(id, v, [("tag", AttrValue::from(tag))]).expect("insert");
        }
        let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let (_, stats_rare) = coll
            .search_filtered_with(&q, 10, &Filter::eq("tag", "rare"), HybridStrategy::default())
            .expect("search");
        let (_, stats_common) = coll
            .search_filtered_with(&q, 10, &Filter::eq("tag", "common"), HybridStrategy::default())
            .expect("search");
        rows.push(vec![
            "multi-modal hybrid search (§III-B2)".into(),
            format!(
                "adaptive ordering: 2% selectivity → prefilter={}, 98% → prefilter={}",
                stats_rare.used_prefilter, stats_common.used_prefilter
            ),
        ]);
    }

    // §III-C cache: Table III headline.
    {
        let t3 = llmdm::run_table3(seed);
        rows.push(vec![
            "cache optimization (§III-C)".into(),
            format!(
                "w/o {} / Cache(O) {} / Cache(A) {} at {:.0}% of uncached cost",
                pct(t3.without.accuracy),
                pct(t3.cache_o.accuracy),
                pct(t3.cache_a.accuracy),
                100.0 * t3.cache_a.cost / t3.without.cost
            ),
        ]);
    }

    // §III-D privacy: DP vs membership inference.
    {
        use llmdm_privacy::dp::PrivacyAccountant;
        use llmdm_privacy::logreg::synthetic;
        use llmdm_privacy::{membership_attack, train_dpsgd, DpSgdConfig, LogisticRegression};
        let data = synthetic(100, 30, 0.8, seed);
        let (train, holdout) = data.split(0.5);
        let mut overfit = LogisticRegression::new(30);
        overfit.fit(&train, 4000, 1.0);
        let leaky = membership_attack(&overfit, &train, &holdout);
        let mut acct = PrivacyAccountant::new();
        let private = train_dpsgd(
            &train,
            DpSgdConfig { noise_multiplier: 4.0, epochs: 20, ..Default::default() },
            &mut acct,
        );
        let protected = membership_attack(&private, &train, &holdout);
        rows.push(vec![
            "security & privacy (§III-D)".into(),
            format!(
                "membership-inference advantage {:.2} → {:.2} under DP-SGD (ε≈{:.1} adv. comp.)",
                leaky.advantage,
                protected.advantage,
                acct.advanced_composition(1e-5).0
            ),
        ]);
    }

    // §III-E validation: self-consistency + crowd review uplift.
    {
        use llmdm_model::{CompletionRequest, LanguageModel, ModelZoo, PromptEnvelope};
        use llmdm_validate::{CrowdPool, ReviewLoop};
        let zoo = ModelZoo::standard(seed);
        let model = zoo.medium();
        let crowd = CrowdPool::heterogeneous(7, 0.8, 0.95, seed);
        let (mut raw_ok, mut reviewed_ok) = (0, 0);
        let n = 60;
        for tag in 0..n {
            let prompt = PromptEnvelope::builder("oracle")
                .header("gold", "gold")
                .header("difficulty", 0.8)
                .header("tag", tag)
                .header("alt", format!("wrong-{tag}"))
                .body("question")
                .build();
            if model.complete(&CompletionRequest::new(prompt.clone())).expect("completes").text
                == "gold"
            {
                raw_ok += 1;
            }
            let rl = ReviewLoop::new(model.clone(), crowd.clone());
            if rl.answer(&prompt, |a| a == "gold").expect("reviews").text == "gold" {
                reviewed_ok += 1;
            }
        }
        rows.push(vec![
            "output validation (§III-E)".into(),
            format!(
                "raw model {} → human-in-the-loop {} on hard queries",
                pct(raw_ok as f64 / n as f64),
                pct(reviewed_ok as f64 / n as f64)
            ),
        ]);
    }

    println!(
        "{}",
        render_table(
            &format!("Figure 5 — challenges & opportunities, one working headline each (seed {seed})"),
            &["challenge", "measured outcome"],
            &rows,
        )
    );
}
