//! Reproduce **Table III** (LLM cache optimization).
//!
//! Paper: w/o cache 77.5% / $1.123; Cache(O) 77.5% / $0.842; Cache(A)
//! 85% / $0.887 — caching cuts cost; caching sub-queries additionally
//! lifts accuracy.
//!
//! Usage: `repro_table3 [--seed N] [--policy]` (`--policy` runs the
//! eviction-policy ablation from DESIGN.md §5.1).

use llmdm_bench::{dollars, has_flag, pct, render_table, seed_arg};
use llmdm::run_table3;
use llmdm_semcache::{CacheConfig, EntryKind, EvictionPolicy, Lookup, SemanticCache};

fn main() {
    let base_seed = seed_arg();
    let seeds: Vec<u64> = (0..10).map(|i| base_seed.wrapping_add(i)).collect();
    let mut acc = [0.0f64; 3];
    let mut cost = [0.0f64; 3];
    let mut hits = [0.0f64; 3];
    for &s in &seeds {
        let r = run_table3(s);
        for (i, p) in [r.without, r.cache_o, r.cache_a].iter().enumerate() {
            acc[i] += p.accuracy;
            cost[i] += p.cost;
            hits[i] += p.reuse_hits as f64;
        }
    }
    let n = seeds.len() as f64;
    let labels = ["w/o Cache", "Cache(O)", "Cache(A)"];
    let paper = ["77.5% / $1.123", "77.5% / $0.842", "85% / $0.887"];
    let rows: Vec<Vec<String>> = (0..3)
        .map(|i| {
            vec![
                labels[i].to_string(),
                pct(acc[i] / n),
                dollars(cost[i] / n),
                format!("{:.1}", hits[i] / n),
                paper[i].to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Table III — semantic LLM cache, 10 queries asked twice \
                 (mean of {} seeds from {base_seed})",
                seeds.len()
            ),
            &["configuration", "accuracy", "api cost", "reuse hits", "paper"],
            &rows,
        )
    );

    if has_flag("--policy") {
        policy_ablation(base_seed);
    }
}

/// Eviction ablation — the paper's §III-C design point: reuse hits and
/// augment hits "should have different weights when considering eviction".
///
/// Setup: a capacity-2 cache holds two established entries —
/// * **hot**: re-asked verbatim 5 times (5 *reuse* hits, each worth a whole
///   saved model call),
/// * **decoy**: touched by 15 similar-but-different queries (15 *augment*
///   hits, each worth only a few prompt tokens).
///
/// Then a newcomer is inserted and one of them must go. Afterwards the
/// workload continues: 10 hot re-asks and 30 decoy-variant lookups. LRU
/// (hot was touched longer ago) and LFU (5 < 15 touches) both sacrifice
/// the hot entry and lose all 10 whole-call savings; the weighted policy
/// (reuse 4 : augment 1 → 20 > 15) keeps it.
fn policy_ablation(seed: u64) {
    let policies = [
        ("LRU", EvictionPolicy::Lru),
        ("LFU", EvictionPolicy::Lfu),
        ("Weighted(4:1)", EvictionPolicy::Weighted { reuse_weight: 4.0, augment_weight: 1.0 }),
    ];
    let hot = "hot recurring analytical query about monthly revenue";
    let decoy = "decoy template about inventory restock levels";
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let mut cache = SemanticCache::new(CacheConfig {
            capacity: 2,
            policy,
            seed,
            ..Default::default()
        });
        // Establish both entries with their hit profiles.
        cache.insert(hot, "SELECT revenue ...", EntryKind::Original);
        cache.insert(decoy, "SELECT restock ...", EntryKind::Original);
        for _ in 0..5 {
            let _ = cache.lookup(hot); // reuse hits
        }
        for v in 0..15 {
            let _ = cache.lookup(&format!("{decoy} variant {v}")); // augment hits
        }
        // Pressure: a newcomer forces one eviction.
        cache.insert("brand new unrelated reporting query", "SELECT ...", EntryKind::Original);
        // The workload continues; count what each retention decision earns.
        let mut saved_calls = 0u64;
        for _ in 0..10 {
            if matches!(
                cache.lookup(hot),
                Lookup::Hit { kind: llmdm_semcache::HitKind::Reuse, .. }
            ) {
                saved_calls += 1;
            }
        }
        let mut token_savers = 0u64;
        for v in 15..45 {
            if matches!(cache.lookup(&format!("{decoy} variant {v}")), Lookup::Hit { .. }) {
                token_savers += 1;
            }
        }
        rows.push(vec![
            name.to_string(),
            format!("{saved_calls}/10 whole calls saved"),
            format!("{token_savers}/30 example-token savings"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Eviction-policy ablation: after pressure evicts one established entry, \
             what does the retention decision earn?",
            &["policy", "hot re-asks (reuse)", "decoy variants (augment)"],
            &rows,
        )
    );
}
