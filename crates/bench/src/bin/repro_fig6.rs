//! Reproduce **Figure 6** — the LLM cascade procedure: per-query
//! escalation traces through the small→medium→large sequence with the
//! decision model's scores.
//!
//! Usage: `repro_fig6 [--seed N]`

use std::sync::Arc;

use llmdm_bench::{render_table, seed_arg};
use llmdm_cascade::{CascadeRouter, DecisionModel, HotpotConfig, HotpotWorkload, QaSolver};
use llmdm_model::ModelZoo;

fn main() {
    let seed = seed_arg();
    let zoo = ModelZoo::standard(seed);
    zoo.register_solver(Arc::new(QaSolver));
    let workload = HotpotWorkload::generate(HotpotConfig { n: 12, seed, ..Default::default() });

    // Train the decision model on a calibration set (as Fig. 6's "decision
    // model is required" box).
    let calibration =
        HotpotWorkload::generate(HotpotConfig { n: 120, seed: seed ^ 0xf16, ..Default::default() });
    let pairs: Vec<(String, String)> =
        calibration.items.iter().map(|i| (i.prompt(), i.gold.clone())).collect();
    let data = CascadeRouter::collect_training_data(&zoo.cascade_order(), &pairs);
    let mut dm = DecisionModel::new();
    dm.train(&data, 400, 0.8);
    let router = CascadeRouter::new(zoo.cascade_order(), dm, 0.6);

    let mut rows = Vec::new();
    for item in &workload.items {
        let answer = router.answer(&item.prompt()).expect("cascade answers");
        let trace: Vec<String> = answer
            .trace
            .iter()
            .map(|t| {
                format!(
                    "{}[{:.2}{}]",
                    t.model.trim_start_matches("sim-"),
                    t.decision_score,
                    if t.accepted { "✓" } else { "→" }
                )
            })
            .collect();
        rows.push(vec![
            format!("{} ({} hops)", item.question.chars().take(46).collect::<String>(), item.hops),
            trace.join(" "),
            if answer.text == item.gold { "correct" } else { "wrong" }.to_string(),
            format!("${:.4}", answer.total_cost),
            format!("{}ms", answer.total_latency.as_millis()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Figure 6 — cascade escalation traces (threshold {:.1}, seed {seed}); \
                 [score✓]=accepted, [score→]=escalated",
                router.threshold()
            ),
            &["query", "trace", "outcome", "cost", "latency"],
            &rows,
        )
    );
}
