//! Baseline benchmark snapshot: one representative measurement per hot
//! subsystem, written to `BENCH_seed.json` so later perf PRs have a
//! committed reference to diff against.
//!
//! Run with `cargo run --release --offline -p llmdm-bench --bin
//! bench_baseline` (set `LLMDM_BENCH_FAST=1` for a smoke pass, or
//! `LLMDM_BENCH_DIR` to redirect the report).

use llmdm_model::Tokenizer;
use llmdm_rt::bench::{report_dir, BenchmarkId, Criterion, Throughput};
use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::{Rng, SeedableRng};
use llmdm_semcache::{CacheConfig, EntryKind, SemanticCache};
use llmdm_sqlengine::parse_statement;
use llmdm_vecdb::{FlatIndex, HnswConfig, HnswIndex, Metric, VectorIndex};

const DIM: usize = 64;

fn random_vecs(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

fn bench_vecdb(c: &mut Criterion) {
    let vecs = random_vecs(4096, 1);
    let queries = random_vecs(64, 2);
    let mut flat = FlatIndex::new(DIM, Metric::Cosine);
    let mut hnsw = HnswIndex::new(DIM, Metric::Cosine, HnswConfig::default()).expect("config");
    for (i, v) in vecs.iter().enumerate() {
        flat.insert(i as u64, v.clone()).expect("insert");
        hnsw.insert(i as u64, v.clone()).expect("insert");
    }
    let mut group = c.benchmark_group("vecdb");
    let mut qi = 0usize;
    group.bench_function(BenchmarkId::new("flat_search", "4k"), |b| {
        b.iter(|| {
            qi = (qi + 1) % queries.len();
            flat.search(&queries[qi], 10).expect("search")
        })
    });
    group.bench_function(BenchmarkId::new("hnsw_search", "4k"), |b| {
        b.iter(|| {
            qi = (qi + 1) % queries.len();
            hnsw.search(&queries[qi], 10).expect("search")
        })
    });
    group.finish();
}

fn bench_tokenizer(c: &mut Criterion) {
    let tok = Tokenizer::new();
    let prompt = include_str!("bench_baseline.rs").repeat(4);
    let mut group = c.benchmark_group("tokenizer");
    group.throughput(Throughput::Bytes(prompt.len() as u64));
    group.bench_function("count", |b| b.iter(|| tok.count(&prompt)));
    group.finish();
}

fn bench_sql(c: &mut Criterion) {
    let db = llmdm_nlq::concert_domain(1);
    let complex = "SELECT name FROM stadium WHERE stadium_id IN \
         (SELECT stadium_id FROM concert WHERE year = 2014) \
         AND stadium_id NOT IN (SELECT stadium_id FROM sports_meeting WHERE year = 2015)";
    let mut group = c.benchmark_group("sqlengine");
    group.bench_function("parse_complex", |b| b.iter(|| parse_statement(complex).expect("parses")));
    let stmt = parse_statement(complex).expect("parses");
    let select = match stmt {
        llmdm_sqlengine::Statement::Select(s) => s,
        _ => unreachable!(),
    };
    group.bench_function("exec_setops", |b| {
        b.iter(|| llmdm_sqlengine::exec::execute_select(&db, &select).expect("executes"))
    });
    group.finish();
}

fn bench_semcache(c: &mut Criterion) {
    let n = 512usize;
    let mut cache = SemanticCache::new(CacheConfig { capacity: n, ..Default::default() });
    for i in 0..n {
        cache.insert(
            &format!("historical analytical query number {i} about topic {}", i % 17),
            "SELECT cached",
            EntryKind::Original,
        );
    }
    let mut group = c.benchmark_group("semcache");
    let mut i = 0usize;
    group.bench_function(BenchmarkId::new("lookup_hit", n), |b| {
        b.iter(|| {
            i = (i + 1) % n;
            cache.lookup(&format!("historical analytical query number {i} about topic {}", i % 17))
        })
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_vecdb(&mut c);
    bench_tokenizer(&mut c);
    bench_sql(&mut c);
    bench_semcache(&mut c);
    let path = report_dir().join("BENCH_seed.json");
    match c.write_json(&path, "seed") {
        Ok(_) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
