//! Reproduce **Table I** (LLM cascade on multi-hop QA).
//!
//! Paper: 40 HotpotQA queries; accuracy improves with model cost
//! (babbage-002 27.5% … gpt-4 92.5%); "LLM cascade achieves performance
//! similar to gpt-4 but with significantly lower costs".
//!
//! Usage: `repro_table1 [--seed N] [--sweep]`

use llmdm_bench::{dollars, has_flag, pct, render_table, seed_arg};
use llmdm_cascade::eval::{run_table1, run_table1_with};

fn main() {
    let base_seed = seed_arg();
    // Average over several seeds: the paper's 40-query sample is small.
    let seeds: Vec<u64> = (0..5).map(|i| base_seed.wrapping_add(i)).collect();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut acc = [0.0f64; 4];
    let mut cost = [0.0f64; 4];
    let mut names = vec![String::new(); 4];
    for &s in &seeds {
        let r = run_table1(s);
        for (i, t) in r.tiers.iter().enumerate() {
            acc[i] += t.accuracy;
            cost[i] += t.cost;
            names[i] = t.name.clone();
        }
        acc[3] += r.cascade.accuracy;
        cost[3] += r.cascade.cost;
        names[3] = "llm-cascade".to_string();
    }
    let n = seeds.len() as f64;
    let paper = ["27.5%", "(not reported)", "92.5%", "~gpt-4, much cheaper"];
    for i in 0..4 {
        rows.push(vec![
            names[i].clone(),
            pct(acc[i] / n),
            dollars(cost[i] / n),
            paper[i].to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Table I — LLM cascade on 40 multi-hop QA queries \
                 (mean of {} seeds from {base_seed})",
                seeds.len()
            ),
            &["model", "accuracy", "api cost", "paper reference"],
            &rows,
        )
    );

    if has_flag("--sweep") {
        let mut rows = Vec::new();
        for th in [0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9] {
            let mut a = 0.0;
            let mut c = 0.0;
            let mut tier = 0.0;
            for &s in &seeds {
                let r = run_table1_with(s, th);
                a += r.cascade.accuracy;
                c += r.cascade.cost;
                tier += r.mean_tier_used;
            }
            rows.push(vec![
                format!("{th:.1}"),
                pct(a / n),
                dollars(c / n),
                format!("{:.2}", tier / n),
            ]);
        }
        println!(
            "{}",
            render_table(
                "Decision-threshold sweep (accuracy/cost frontier)",
                &["threshold", "accuracy", "api cost", "mean tier used"],
                &rows,
            )
        );
    }
}
