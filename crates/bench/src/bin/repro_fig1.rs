//! Reproduce **Figure 1** — the data-management application pipeline
//! (generation → transformation → integration → exploration) run end to
//! end over a synthetic retail scenario.
//!
//! Usage: `repro_fig1 [--seed N]`

use llmdm::DataManager;
use llmdm_bench::{pct, render_table, seed_arg};
use llmdm_transform::Grid;

fn main() {
    let seed = seed_arg();
    let mut dm = DataManager::new(seed);
    let mut rows: Vec<Vec<String>> = Vec::new();

    // 1. Transformation: JSON orders feed.
    let names = dm
        .ingest_json(
            "orders",
            r#"[{"id": 1, "customer": "alice", "city": "springfield", "total": 120},
                {"id": 2, "customer": "bob", "city": "rivertown", "total": 80},
                {"id": 3, "customer": "alice", "city": "springfield", "total": 95},
                {"id": 4, "customer": "chen", "city": "rivertown", "total": 200}]"#,
        )
        .expect("valid JSON feed");
    rows.push(vec![
        "transformation".into(),
        "JSON → relational".into(),
        format!("tables: {}", names.join(", ")),
    ]);

    // 2. Transformation: messy spreadsheet.
    let grid: Grid = vec![
        vec!["Inventory Export".into(), "".into(), "".into()],
        vec!["".into(), "".into(), "".into()],
        vec!["sku".into(), "category".into(), "stock".into()],
        vec!["101".into(), "tools".into(), "14".into()],
        vec!["102".into(), "garden".into(), "3".into()],
        vec!["103".into(), "tools".into(), "27".into()],
    ];
    let (program, table) = dm.ingest_spreadsheet("inventory", &grid).expect("reshapable grid");
    rows.push(vec![
        "transformation".into(),
        "spreadsheet → relational".into(),
        format!("program {program:?} → table {table}"),
    ]);

    // 3. Integration: cleaning.
    let report = dm.clean_table("orders", &[("city", "city")]).expect("table exists");
    rows.push(vec![
        "integration".into(),
        "cleaning report".into(),
        format!(
            "nulls: {}, outliers: {}, duplicates: {}, error rate {}",
            report.nulls.len(),
            report.outliers.len(),
            report.duplicates.len(),
            pct(report.error_rate)
        ),
    ]);

    // 4. Generation: SQL for testing / training data.
    let sql = dm.generate_sql(8);
    rows.push(vec![
        "generation".into(),
        "constraint-aware SQL".into(),
        format!("{} executable queries, e.g. {}", sql.len(), sql[0].sql),
    ]);

    // 5. Exploration: multi-modal lake + semantic search.
    let n = dm
        .build_lake(&[
            ("returns policy", "customers in springfield return tools most often"),
            ("ops log", "restock request for garden category at rivertown"),
        ])
        .expect("lake builds");
    let hits = dm.lake().search("which customers are in springfield", 2).expect("search");
    rows.push(vec![
        "exploration".into(),
        "lake semantic search".into(),
        format!("{n} items; top hit: {} (score {:.2})", hits[0].item.title, hits[0].score),
    ]);

    println!(
        "{}",
        render_table(
            &format!("Figure 1 — the four-stage pipeline, end to end (seed {seed})"),
            &["stage", "mechanism", "outcome"],
            &rows,
        )
    );
}
