//! Reproduce **Figure 3** — training-data generation with LLMs: feed
//! labelled `<query, execution_time>` pairs and database information to
//! the model; it predicts execution times for new queries.
//!
//! Usage: `repro_fig3 [--seed N]`

use llmdm_bench::{pct, render_table, seed_arg};
use llmdm_datagen::{CostModel, ExecTimeLabeler, SqlGenConstraints, SqlGenerator};
use llmdm_model::ModelZoo;
use llmdm_nlq::concert_domain;

fn main() {
    let seed = seed_arg();
    let db = concert_domain(seed);
    let cost_model = CostModel::default();

    // Labelled seed pairs (Fig. 3's "labeled training data" box).
    let mut generator = SqlGenerator::new(seed);
    let seed_queries: Vec<String> = generator
        .generate(&db, &SqlGenConstraints { n: 6, ..Default::default() })
        .into_iter()
        .map(|g| g.sql)
        .collect();
    let examples = cost_model.label_all(&db, &seed_queries).expect("seed queries label");

    // Targets: fresh queries to be labelled by the model.
    let targets: Vec<String> = generator
        .generate(&db, &SqlGenConstraints { n: 30, seed: seed ^ 1, ..Default::default() })
        .into_iter()
        .map(|g| g.sql)
        .collect();

    let zoo = ModelZoo::standard(seed);
    let mut rows = Vec::new();
    for (name, model) in
        [("sim-small", zoo.small()), ("sim-medium", zoo.medium()), ("sim-large", zoo.large())]
    {
        let labeler = ExecTimeLabeler::new(model, cost_model);
        let (_, report) = labeler.impute(&db, &examples, &targets).expect("imputation runs");
        rows.push(vec![
            name.to_string(),
            format!("{}", report.n),
            pct(report.within_30pct),
            pct(report.mean_rel_error),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Figure 3 — execution-time training-data generation \
                 ({} labelled seed pairs → {} imputed targets, seed {seed})",
                examples.len(),
                targets.len()
            ),
            &["labeling model", "queries labelled", "within 30% of gold", "mean relative error"],
            &rows,
        )
    );
    println!("example labelled pairs fed to the model:");
    for (q, t) in examples.iter().take(3) {
        println!("  {t:8.2} ms  <-  {q}");
    }
}
