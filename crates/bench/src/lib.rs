//! # llmdm-bench — benchmarks and paper reproduction binaries
//!
//! One `repro_*` binary per table and figure of the paper (see DESIGN.md
//! §4 for the experiment index), plus Criterion micro-benchmarks for the
//! substrates. This library crate only holds small shared formatting
//! helpers.

/// Render an ASCII table: header row + data rows, padded columns.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let sep = format!(
        "+{}+",
        widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+")
    );
    let mut out = String::new();
    out.push_str(&format!("\n{title}\n{sep}\n"));
    out.push_str(&line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>()));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

/// Format a dollar amount.
pub fn dollars(x: f64) -> String {
    format!("${x:.3}")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Parse `--seed N` from argv, defaulting to 42.
pub fn seed_arg() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Whether a flag is present in argv.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let out = render_table(
            "T",
            &["model", "acc"],
            &[vec!["small".into(), "27.5%".into()], vec!["large-model".into(), "92.5%".into()]],
        );
        assert!(out.contains("| model       | acc   |"));
        assert!(out.contains("| large-model | 92.5% |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(dollars(0.4355), "$0.435");
        assert_eq!(pct(0.925), "92.5%");
    }
}
