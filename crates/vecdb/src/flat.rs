//! Exhaustive (brute-force) index: exact results, O(n·d) per query.
//!
//! The recall baseline for the ANN indexes and the execution engine behind
//! pre-filtered hybrid search (scanning only the filter's survivors).

use std::collections::HashMap;

use crate::error::VecDbError;
use crate::index::{check_dim, push_topk, Neighbor, VectorIndex};
use crate::metric::Metric;

/// Exact nearest-neighbor index over a dense array.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    dim: usize,
    metric: Metric,
    ids: Vec<u64>,
    data: Vec<f32>, // row-major, len = ids.len() * dim
    pos: HashMap<u64, usize>,
}

impl FlatIndex {
    /// Create an empty flat index.
    pub fn new(dim: usize, metric: Metric) -> Self {
        FlatIndex { dim, metric, ids: Vec::new(), data: Vec::new(), pos: HashMap::new() }
    }

    /// The stored vector for `id`, if present.
    pub fn get(&self, id: u64) -> Option<&[f32]> {
        let pos = *self.pos.get(&id)?;
        Some(&self.data[pos * self.dim..(pos + 1) * self.dim])
    }

    /// Iterate `(id, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[f32])> {
        self.ids.iter().enumerate().map(move |(pos, &id)| {
            (id, &self.data[pos * self.dim..(pos + 1) * self.dim])
        })
    }

    /// Exact k-NN with the scan fanned out across `threads` OS threads
    /// (the serving layer's parallel path).
    ///
    /// **Bit-identical to [`VectorIndex::search`]**: rows are chunked in
    /// scan order, each chunk keeps a local top-k, and the partials are
    /// merged in chunk order — [`push_topk`]'s tie-break (equal scores
    /// keep the earlier insert first) then reproduces the sequential
    /// result exactly, ties included. Asserted by
    /// `par_search_matches_sequential` below.
    pub fn par_search(
        &self,
        query: &[f32],
        k: usize,
        threads: usize,
    ) -> Result<Vec<Neighbor>, VecDbError> {
        let n = self.ids.len();
        let t = threads.max(1).min(n.max(1));
        if t <= 1 {
            return self.search(query, k);
        }
        let mut span = llmdm_obs::span("vecdb.flat.par_search");
        check_dim(self.dim, query)?;
        let chunk = n.div_ceil(t);
        let mut partials: Vec<Vec<Neighbor>> = Vec::with_capacity(t);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..t)
                .map(|ti| {
                    let lo = (ti * chunk).min(n);
                    let hi = ((ti + 1) * chunk).min(n);
                    s.spawn(move || {
                        let mut best = Vec::with_capacity(k.min(hi - lo));
                        for pos in lo..hi {
                            let v = &self.data[pos * self.dim..(pos + 1) * self.dim];
                            push_topk(
                                &mut best,
                                k,
                                Neighbor { id: self.ids[pos], score: self.metric.score(query, v) },
                            );
                        }
                        best
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("search worker panicked"));
            }
        });
        let mut best = Vec::with_capacity(k);
        for partial in partials {
            for nb in partial {
                push_topk(&mut best, k, nb);
            }
        }
        if span.is_recording() {
            span.field("k", k);
            span.field("threads", t);
            span.field("candidates", n);
            span.field("distance_comps", n);
            llmdm_obs::counter_add("vecdb.search.queries", 1.0);
            llmdm_obs::counter_add("vecdb.search.candidates", n as f64);
            llmdm_obs::counter_add("vecdb.search.distance_comps", n as f64);
        }
        Ok(best)
    }

    /// Exact k-NN among an explicit candidate id set (pre-filtered search).
    pub fn search_among(
        &self,
        query: &[f32],
        k: usize,
        candidates: &[u64],
    ) -> Result<Vec<Neighbor>, VecDbError> {
        let mut span = llmdm_obs::span("vecdb.flat.search_among");
        check_dim(self.dim, query)?;
        let mut best = Vec::with_capacity(k.min(candidates.len()));
        let mut comps = 0usize;
        for &id in candidates {
            if let Some(v) = self.get(id) {
                comps += 1;
                push_topk(&mut best, k, Neighbor { id, score: self.metric.score(query, v) });
            }
        }
        if span.is_recording() {
            span.field("k", k);
            span.field("candidates", candidates.len());
            span.field("distance_comps", comps);
            llmdm_obs::counter_add("vecdb.search.queries", 1.0);
            llmdm_obs::counter_add("vecdb.search.candidates", candidates.len() as f64);
            llmdm_obs::counter_add("vecdb.search.distance_comps", comps as f64);
        }
        Ok(best)
    }
}

impl VectorIndex for FlatIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn insert(&mut self, id: u64, vector: Vec<f32>) -> Result<(), VecDbError> {
        check_dim(self.dim, &vector)?;
        if self.pos.contains_key(&id) {
            return Err(VecDbError::DuplicateId(id));
        }
        self.pos.insert(id, self.ids.len());
        self.ids.push(id);
        self.data.extend_from_slice(&vector);
        Ok(())
    }

    fn remove(&mut self, id: u64) -> Result<(), VecDbError> {
        let pos = self.pos.remove(&id).ok_or(VecDbError::NotFound(id))?;
        // Swap-remove the row to keep the array dense.
        let last = self.ids.len() - 1;
        self.ids.swap_remove(pos);
        if pos != last {
            let (head, tail) = self.data.split_at_mut(last * self.dim);
            head[pos * self.dim..(pos + 1) * self.dim].copy_from_slice(&tail[..self.dim]);
            self.pos.insert(self.ids[pos], pos);
        }
        self.data.truncate(last * self.dim);
        Ok(())
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, VecDbError> {
        let mut span = llmdm_obs::span("vecdb.flat.search");
        check_dim(self.dim, query)?;
        let mut best = Vec::with_capacity(k.min(self.ids.len()));
        for (pos, &id) in self.ids.iter().enumerate() {
            let v = &self.data[pos * self.dim..(pos + 1) * self.dim];
            push_topk(&mut best, k, Neighbor { id, score: self.metric.score(query, v) });
        }
        if span.is_recording() {
            // Brute force scans everything: candidates == distance comps.
            span.field("k", k);
            span.field("candidates", self.ids.len());
            span.field("distance_comps", self.ids.len());
            llmdm_obs::counter_add("vecdb.search.queries", 1.0);
            llmdm_obs::counter_add("vecdb.search.candidates", self.ids.len() as f64);
            llmdm_obs::counter_add("vecdb.search.distance_comps", self.ids.len() as f64);
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis(i: usize) -> Vec<f32> {
        let mut v = vec![0.0; 4];
        v[i] = 1.0;
        v
    }

    #[test]
    fn insert_search_exact() {
        let mut idx = FlatIndex::new(4, Metric::Cosine);
        for i in 0..4 {
            idx.insert(i as u64, basis(i)).unwrap();
        }
        let hits = idx.search(&basis(2), 2).unwrap();
        assert_eq!(hits[0].id, 2);
        assert!((hits[0].score - 1.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut idx = FlatIndex::new(4, Metric::Cosine);
        idx.insert(1, basis(0)).unwrap();
        assert_eq!(idx.insert(1, basis(1)), Err(VecDbError::DuplicateId(1)));
    }

    #[test]
    fn remove_swaps_correctly() {
        let mut idx = FlatIndex::new(4, Metric::Cosine);
        for i in 0..4 {
            idx.insert(i as u64, basis(i)).unwrap();
        }
        idx.remove(1).unwrap();
        assert_eq!(idx.len(), 3);
        assert!(idx.get(1).is_none());
        // Remaining vectors still retrievable and correct.
        assert_eq!(idx.get(3).unwrap(), basis(3).as_slice());
        let hits = idx.search(&basis(3), 1).unwrap();
        assert_eq!(hits[0].id, 3);
    }

    #[test]
    fn remove_missing_errors() {
        let mut idx = FlatIndex::new(4, Metric::Cosine);
        assert_eq!(idx.remove(9), Err(VecDbError::NotFound(9)));
    }

    #[test]
    fn dimension_checked() {
        let mut idx = FlatIndex::new(4, Metric::Cosine);
        assert!(idx.insert(1, vec![1.0]).is_err());
        assert!(idx.search(&[1.0], 1).is_err());
    }

    #[test]
    fn search_among_restricts() {
        let mut idx = FlatIndex::new(4, Metric::Cosine);
        for i in 0..4 {
            idx.insert(i as u64, basis(i)).unwrap();
        }
        let hits = idx.search_among(&basis(0), 2, &[2, 3]).unwrap();
        assert!(hits.iter().all(|h| h.id == 2 || h.id == 3));
    }

    #[test]
    fn k_larger_than_n() {
        let mut idx = FlatIndex::new(4, Metric::Cosine);
        idx.insert(1, basis(0)).unwrap();
        assert_eq!(idx.search(&basis(0), 10).unwrap().len(), 1);
    }

    #[test]
    fn par_search_matches_sequential() {
        use llmdm_rt::rand::rngs::SmallRng;
        use llmdm_rt::rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        let mut idx = FlatIndex::new(8, Metric::Cosine);
        for i in 0..500u64 {
            let v: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            idx.insert(i, v).unwrap();
        }
        // Deliberate score ties: duplicate a stored vector under new ids.
        let dup = idx.get(3).unwrap().to_vec();
        idx.insert(1000, dup.clone()).unwrap();
        idx.insert(1001, dup.clone()).unwrap();
        for _ in 0..20 {
            let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let seq = idx.search(&q, 10).unwrap();
            for threads in [1, 2, 3, 8, 64] {
                assert_eq!(idx.par_search(&q, 10, threads).unwrap(), seq, "threads={threads}");
            }
        }
        // Ties at the cutoff resolve identically too.
        let seq = idx.search(&dup, 2).unwrap();
        assert_eq!(idx.par_search(&dup, 2, 4).unwrap(), seq);
    }

    #[test]
    fn remove_last_element() {
        let mut idx = FlatIndex::new(4, Metric::L2);
        idx.insert(1, basis(0)).unwrap();
        idx.remove(1).unwrap();
        assert!(idx.is_empty());
        assert!(idx.search(&basis(0), 1).unwrap().is_empty());
    }
}
