//! Similarity metrics.
//!
//! All indexes rank by a *score* where **higher is better**, so L2 distance
//! is negated. This keeps heap logic identical across metrics.


/// Supported similarity metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Cosine similarity in `[-1, 1]`.
    Cosine,
    /// Negative Euclidean distance (0 is a perfect match).
    L2,
    /// Inner product.
    Dot,
}

impl Metric {
    /// Score of `b` against query `a`; higher is better.
    #[inline]
    pub fn score(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Cosine => {
                let (mut dot, mut na, mut nb) = (0f32, 0f32, 0f32);
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    dot / (na.sqrt() * nb.sqrt())
                }
            }
            Metric::L2 => {
                let mut d = 0f32;
                for (x, y) in a.iter().zip(b) {
                    let t = x - y;
                    d += t * t;
                }
                -d.sqrt()
            }
            Metric::Dot => a.iter().zip(b).map(|(x, y)| x * y).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_identical_is_one() {
        let v = [0.3f32, 0.4, 0.5];
        assert!((Metric::Cosine.score(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_is_zero() {
        assert!(Metric::Cosine.score(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
    }

    #[test]
    fn l2_higher_is_closer() {
        let q = [0.0f32, 0.0];
        assert!(Metric::L2.score(&q, &[0.1, 0.0]) > Metric::L2.score(&q, &[5.0, 0.0]));
    }

    #[test]
    fn l2_self_is_zero() {
        let v = [1.0f32, 2.0];
        assert_eq!(Metric::L2.score(&v, &v), 0.0);
    }

    #[test]
    fn dot_product() {
        assert_eq!(Metric::Dot.score(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(Metric::Cosine.score(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }
}
