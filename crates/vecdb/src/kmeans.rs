//! Seeded Lloyd's k-means, used as the IVF coarse quantizer.

use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centroids, row-major (`k * dim`).
    pub centroids: Vec<f32>,
    /// Dimensionality.
    pub dim: usize,
    /// Number of clusters.
    pub k: usize,
}

impl KMeans {
    /// Train `k` centroids on `data` (row-major `n * dim`) with `iters`
    /// Lloyd iterations, k-means++-style seeding from `seed`.
    ///
    /// `k` is clamped to the number of points. Panics if `data` is empty or
    /// not a multiple of `dim` (programmer error).
    pub fn train(data: &[f32], dim: usize, k: usize, iters: usize, seed: u64) -> KMeans {
        assert!(dim > 0 && !data.is_empty() && data.len().is_multiple_of(dim));
        let n = data.len() / dim;
        let k = k.max(1).min(n);
        let mut rng = SmallRng::seed_from_u64(seed);

        // k-means++ seeding: first centroid uniform, rest ∝ squared distance.
        let mut centroids = Vec::with_capacity(k * dim);
        let first = rng.gen_range(0..n);
        centroids.extend_from_slice(&data[first * dim..(first + 1) * dim]);
        let mut d2: Vec<f32> = (0..n).map(|i| sqdist(&data[i * dim..(i + 1) * dim], &centroids[..dim])).collect();
        while centroids.len() < k * dim {
            let total: f32 = d2.iter().sum();
            let pick = if total <= f32::EPSILON {
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = n - 1;
                for (i, &w) in d2.iter().enumerate() {
                    if target < w {
                        chosen = i;
                        break;
                    }
                    target -= w;
                }
                chosen
            };
            let c0 = centroids.len();
            centroids.extend_from_slice(&data[pick * dim..(pick + 1) * dim]);
            let new_c = centroids[c0..].to_vec();
            for (i, slot) in d2.iter_mut().enumerate() {
                let nd = sqdist(&data[i * dim..(i + 1) * dim], &new_c);
                if nd < *slot {
                    *slot = nd;
                }
            }
        }

        let mut km = KMeans { centroids, dim, k };
        let mut assign = vec![0usize; n];
        for _ in 0..iters {
            let mut changed = false;
            for i in 0..n {
                let a = km.nearest(&data[i * dim..(i + 1) * dim]).0;
                if assign[i] != a {
                    assign[i] = a;
                    changed = true;
                }
            }
            // Recompute centroids.
            let mut sums = vec![0f32; k * dim];
            let mut counts = vec![0usize; k];
            for i in 0..n {
                let c = assign[i];
                counts[c] += 1;
                for j in 0..dim {
                    sums[c * dim + j] += data[i * dim + j];
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for j in 0..dim {
                        km.centroids[c * dim + j] = sums[c * dim + j] / counts[c] as f32;
                    }
                } else {
                    // Re-seed an empty cluster at a random point.
                    let p = rng.gen_range(0..n);
                    km.centroids[c * dim..(c + 1) * dim]
                        .copy_from_slice(&data[p * dim..(p + 1) * dim]);
                }
            }
            if !changed {
                break;
            }
        }
        km
    }

    /// Index and squared distance of the nearest centroid to `v`.
    pub fn nearest(&self, v: &[f32]) -> (usize, f32) {
        let mut best = (0usize, f32::INFINITY);
        for c in 0..self.k {
            let d = sqdist(v, &self.centroids[c * self.dim..(c + 1) * self.dim]);
            if d < best.1 {
                best = (c, d);
            }
        }
        best
    }

    /// Centroid indexes sorted by distance to `v`, nearest first.
    pub fn nearest_n(&self, v: &[f32], n: usize) -> Vec<usize> {
        let mut scored: Vec<(usize, f32)> = (0..self.k)
            .map(|c| (c, sqdist(v, &self.centroids[c * self.dim..(c + 1) * self.dim])))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(n);
        scored.into_iter().map(|(c, _)| c).collect()
    }
}

#[inline]
fn sqdist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs in 2-D.
    fn blobs() -> Vec<f32> {
        let mut data = Vec::new();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            data.push(0.0 + rng.gen_range(-0.1..0.1f32));
            data.push(0.0 + rng.gen_range(-0.1..0.1f32));
        }
        for _ in 0..50 {
            data.push(10.0 + rng.gen_range(-0.1..0.1f32));
            data.push(10.0 + rng.gen_range(-0.1..0.1f32));
        }
        data
    }

    #[test]
    fn separates_two_blobs() {
        let km = KMeans::train(&blobs(), 2, 2, 20, 1);
        let a = km.nearest(&[0.0, 0.0]).0;
        let b = km.nearest(&[10.0, 10.0]).0;
        assert_ne!(a, b);
        // Centroids close to blob centers.
        let c_near_origin =
            (0..2).any(|c| sqdist(&km.centroids[c * 2..c * 2 + 2], &[0.0, 0.0]) < 1.0);
        assert!(c_near_origin);
    }

    #[test]
    fn k_clamped_to_n() {
        let km = KMeans::train(&[1.0, 2.0], 2, 8, 5, 0);
        assert_eq!(km.k, 1);
    }

    #[test]
    fn deterministic() {
        let a = KMeans::train(&blobs(), 2, 3, 10, 42);
        let b = KMeans::train(&blobs(), 2, 3, 10, 42);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn nearest_n_sorted() {
        let km = KMeans::train(&blobs(), 2, 2, 20, 1);
        let order = km.nearest_n(&[0.0, 0.0], 2);
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], km.nearest(&[0.0, 0.0]).0);
    }

    #[test]
    fn identical_points_ok() {
        let data = vec![1.0f32, 1.0, 1.0, 1.0, 1.0, 1.0];
        let km = KMeans::train(&data, 3, 2, 5, 9);
        assert_eq!(km.nearest(&[1.0, 1.0, 1.0]).1, 0.0);
    }
}
