//! Attribute metadata, filters, and hybrid-search strategy selection.
//!
//! §III-B2 of the paper: "for this hybrid search that involves both vector
//! and non-vector data, one key consideration is the order of filtering" —
//! pre-filter when attributes are selective, post-filter otherwise, with an
//! adaptive mechanism choosing per query. The paper also calls out the
//! "vector search first" pathology: all `k` ANN results may fail the
//! attribute constraint, so production systems over-fetch with a large
//! fixed `k`, degrading efficiency; it envisions ML models that "predict an
//! appropriate k value for each query". [`KPredictor`] is that model: an
//! online selectivity-bucketed regressor for the over-fetch factor.

use std::collections::BTreeMap;


/// An attribute value attached to a stored vector.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// UTF-8 string.
    Str(String),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl AttrValue {
    /// Numeric view (ints widen to float) for cross-type comparison.
    fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Ordering used by range predicates; `None` when incomparable.
    fn compare(&self, other: &AttrValue) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (AttrValue::Str(a), AttrValue::Str(b)) => Some(a.cmp(b)),
            (AttrValue::Bool(a), AttrValue::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}
impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}
impl From<f64> for AttrValue {
    fn from(f: f64) -> Self {
        AttrValue::Float(f)
    }
}
impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

/// Attribute map attached to each vector.
pub type Metadata = BTreeMap<String, AttrValue>;

/// A single attribute predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `key == value`
    Eq(String, AttrValue),
    /// `key != value`
    Ne(String, AttrValue),
    /// `key < value`
    Lt(String, AttrValue),
    /// `key <= value`
    Le(String, AttrValue),
    /// `key > value`
    Gt(String, AttrValue),
    /// `key >= value`
    Ge(String, AttrValue),
    /// `key ∈ values`
    In(String, Vec<AttrValue>),
    /// string attribute contains the substring
    Contains(String, String),
    /// the key is present
    Exists(String),
}

impl Predicate {
    /// Does `meta` satisfy this predicate? Missing keys fail everything
    /// except an `Exists` on another key.
    pub fn matches(&self, meta: &Metadata) -> bool {
        use std::cmp::Ordering::*;
        let get = |k: &str| meta.get(k);
        match self {
            Predicate::Eq(k, v) => get(k).is_some_and(|a| a.compare(v) == Some(Equal)),
            Predicate::Ne(k, v) => get(k).is_some_and(|a| a.compare(v) != Some(Equal)),
            Predicate::Lt(k, v) => get(k).is_some_and(|a| a.compare(v) == Some(Less)),
            Predicate::Le(k, v) => {
                get(k).is_some_and(|a| matches!(a.compare(v), Some(Less | Equal)))
            }
            Predicate::Gt(k, v) => get(k).is_some_and(|a| a.compare(v) == Some(Greater)),
            Predicate::Ge(k, v) => {
                get(k).is_some_and(|a| matches!(a.compare(v), Some(Greater | Equal)))
            }
            Predicate::In(k, vs) => {
                get(k).is_some_and(|a| vs.iter().any(|v| a.compare(v) == Some(Equal)))
            }
            Predicate::Contains(k, needle) => match get(k) {
                Some(AttrValue::Str(s)) => s.contains(needle.as_str()),
                _ => false,
            },
            Predicate::Exists(k) => get(k).is_some(),
        }
    }
}

/// A conjunction of predicates. The empty filter matches everything.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Filter {
    predicates: Vec<Predicate>,
}

impl Filter {
    /// The filter that matches everything.
    pub fn all() -> Self {
        Filter::default()
    }

    /// Shorthand for a single equality filter.
    pub fn eq(key: &str, value: impl Into<AttrValue>) -> Self {
        Filter::all().and(Predicate::Eq(key.to_string(), value.into()))
    }

    /// Add a predicate (conjunction).
    pub fn and(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// Whether `meta` satisfies every predicate.
    pub fn matches(&self, meta: &Metadata) -> bool {
        self.predicates.iter().all(|p| p.matches(meta))
    }

    /// Whether this filter is the match-all filter.
    pub fn is_trivial(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Whether the filter has no predicates.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }
}

/// How to order attribute filtering vs vector search (§III-B2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HybridStrategy {
    /// Scan attributes first, then exact-rank the survivors. Best when the
    /// filter is selective.
    PreFilter,
    /// ANN-search first with `expansion × k` over-fetch, then filter. Best
    /// when most items pass the filter.
    PostFilter {
        /// Initial over-fetch factor (k' = expansion × k), doubled on
        /// under-delivery.
        expansion: usize,
    },
    /// Estimate selectivity on a metadata sample and pick pre- vs
    /// post-filtering per query — the adaptive mechanism the paper
    /// envisions.
    Adaptive {
        /// Use pre-filtering when estimated selectivity is below this.
        selectivity_threshold: f64,
        /// Metadata sample size for the estimate.
        sample: usize,
    },
}

impl Default for HybridStrategy {
    fn default() -> Self {
        HybridStrategy::Adaptive { selectivity_threshold: 0.15, sample: 256 }
    }
}

/// Online predictor of the post-filter over-fetch factor.
///
/// Observes `(selectivity, expansion that was actually needed)` pairs and
/// predicts the expansion for future queries by selectivity bucket, with a
/// 25% safety margin. Falls back to `1/selectivity` before enough
/// observations exist.
#[derive(Debug, Clone)]
pub struct KPredictor {
    /// Ten selectivity buckets of width 0.1: (sum of needed expansions, n).
    buckets: [(f64, u32); 10],
    /// Safety margin multiplier applied to the learned mean.
    margin: f64,
}

impl Default for KPredictor {
    fn default() -> Self {
        KPredictor { buckets: [(0.0, 0); 10], margin: 1.25 }
    }
}

impl KPredictor {
    /// New predictor with the default safety margin.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(selectivity: f64) -> usize {
        ((selectivity.clamp(0.0, 0.999_999) * 10.0) as usize).min(9)
    }

    /// Record that a query with `selectivity` needed `needed_expansion` to
    /// deliver its k results.
    pub fn observe(&mut self, selectivity: f64, needed_expansion: f64) {
        let b = Self::bucket(selectivity);
        self.buckets[b].0 += needed_expansion.max(1.0);
        self.buckets[b].1 += 1;
    }

    /// Predicted over-fetch factor for a query with `selectivity`.
    pub fn predict(&self, selectivity: f64) -> usize {
        let b = Self::bucket(selectivity);
        let (sum, n) = self.buckets[b];
        let base = if n >= 3 {
            (sum / n as f64) * self.margin
        } else {
            // Cold start: the analytic estimate. If a fraction `s` of items
            // pass, expect to fetch ~1/s × k to surface k survivors.
            (1.0 / selectivity.max(0.01)).min(64.0)
        };
        base.ceil().max(1.0) as usize
    }

    /// Total number of observations.
    pub fn observations(&self) -> u32 {
        self.buckets.iter().map(|(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(pairs: &[(&str, AttrValue)]) -> Metadata {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    #[test]
    fn eq_and_ne() {
        let m = meta(&[("kind", "doc".into())]);
        assert!(Filter::eq("kind", "doc").matches(&m));
        assert!(!Filter::eq("kind", "table").matches(&m));
        assert!(Filter::all().and(Predicate::Ne("kind".into(), "table".into())).matches(&m));
    }

    #[test]
    fn missing_key_fails() {
        let m = meta(&[]);
        assert!(!Filter::eq("kind", "doc").matches(&m));
        assert!(!Filter::all().and(Predicate::Ne("kind".into(), "doc".into())).matches(&m));
    }

    #[test]
    fn numeric_cross_type_comparison() {
        let m = meta(&[("year", AttrValue::Int(2014))]);
        assert!(Filter::all().and(Predicate::Ge("year".into(), AttrValue::Float(2013.5))).matches(&m));
        assert!(Filter::all().and(Predicate::Lt("year".into(), AttrValue::Int(2015))).matches(&m));
        assert!(Filter::eq("year", AttrValue::Float(2014.0)).matches(&m));
    }

    #[test]
    fn in_and_contains() {
        let m = meta(&[("city", "Beijing".into())]);
        assert!(Filter::all()
            .and(Predicate::In("city".into(), vec!["Shanghai".into(), "Beijing".into()]))
            .matches(&m));
        assert!(Filter::all().and(Predicate::Contains("city".into(), "jing".into())).matches(&m));
        assert!(!Filter::all().and(Predicate::Contains("city".into(), "york".into())).matches(&m));
    }

    #[test]
    fn exists() {
        let m = meta(&[("a", AttrValue::Bool(true))]);
        assert!(Filter::all().and(Predicate::Exists("a".into())).matches(&m));
        assert!(!Filter::all().and(Predicate::Exists("b".into())).matches(&m));
    }

    #[test]
    fn conjunction_all_must_match() {
        let m = meta(&[("kind", "doc".into()), ("year", AttrValue::Int(2020))]);
        let f = Filter::eq("kind", "doc").and(Predicate::Gt("year".into(), AttrValue::Int(2019)));
        assert!(f.matches(&m));
        let f2 = Filter::eq("kind", "doc").and(Predicate::Gt("year".into(), AttrValue::Int(2021)));
        assert!(!f2.matches(&m));
    }

    #[test]
    fn trivial_filter_matches_everything() {
        assert!(Filter::all().matches(&meta(&[])));
        assert!(Filter::all().is_trivial());
    }

    #[test]
    fn incomparable_types_fail() {
        let m = meta(&[("x", AttrValue::Bool(true))]);
        assert!(!Filter::all().and(Predicate::Lt("x".into(), AttrValue::Int(3))).matches(&m));
    }

    #[test]
    fn kpredictor_cold_start_uses_analytic() {
        let p = KPredictor::new();
        assert!(p.predict(0.5) <= 3);
        assert!(p.predict(0.05) >= 15);
    }

    #[test]
    fn kpredictor_learns_bucket_mean() {
        let mut p = KPredictor::new();
        for _ in 0..5 {
            p.observe(0.55, 4.0);
        }
        // mean 4.0 * margin 1.25 = 5
        assert_eq!(p.predict(0.55), 5);
        // Other buckets untouched.
        assert!(p.predict(0.95) <= 2);
    }

    #[test]
    fn kpredictor_bucket_edges() {
        assert_eq!(KPredictor::bucket(0.0), 0);
        assert_eq!(KPredictor::bucket(1.0), 9);
        assert_eq!(KPredictor::bucket(0.999), 9);
        assert_eq!(KPredictor::bucket(0.1), 1);
    }
}
