//! Heap ordering wrappers and deterministic level hashing for HNSW.

use std::cmp::Ordering;

/// Max-heap entry: larger score pops first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct MaxScore {
    pub score: f32,
    pub node: u32,
}

impl Eq for MaxScore {}

impl PartialOrd for MaxScore {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MaxScore {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score.total_cmp(&other.score).then_with(|| self.node.cmp(&other.node))
    }
}

/// Min-heap entry: *smaller* score pops first (for evicting the worst
/// result). Implemented by reversing the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct MinScore {
    pub score: f32,
    pub node: u32,
}

impl Eq for MinScore {}

impl PartialOrd for MinScore {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinScore {
    fn cmp(&self, other: &Self) -> Ordering {
        other.score.total_cmp(&self.score).then_with(|| other.node.cmp(&self.node))
    }
}

// Deterministic hashing for level assignment (duplicated from llmdm-model's
// hash module to keep this substrate dependency-free).

#[inline]
pub(crate) fn next(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[inline]
pub(crate) fn level_hash(seed: u64, counter: u64) -> u64 {
    next(seed ^ counter.wrapping_mul(0x2545_f491_4f6c_dd1d))
}

#[inline]
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn max_heap_pops_largest() {
        let mut h = BinaryHeap::new();
        h.push(MaxScore { score: 0.1, node: 1 });
        h.push(MaxScore { score: 0.9, node: 2 });
        h.push(MaxScore { score: 0.5, node: 3 });
        assert_eq!(h.pop().unwrap().node, 2);
    }

    #[test]
    fn min_heap_pops_smallest() {
        let mut h = BinaryHeap::new();
        h.push(MinScore { score: 0.1, node: 1 });
        h.push(MinScore { score: 0.9, node: 2 });
        h.push(MinScore { score: 0.5, node: 3 });
        assert_eq!(h.pop().unwrap().node, 1);
    }

    #[test]
    fn unit_in_range() {
        for i in 0..1000 {
            let u = unit(level_hash(3, i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn nan_safe_ordering() {
        // total_cmp makes NaN orderable; heap must not panic.
        let mut h = BinaryHeap::new();
        h.push(MaxScore { score: f32::NAN, node: 1 });
        h.push(MaxScore { score: 0.5, node: 2 });
        let _ = h.pop();
        let _ = h.pop();
    }
}
