//! The collection API: vectors + attribute metadata + hybrid search.
//!
//! A [`Collection`] keeps every vector twice, as production vector stores
//! do: raw rows in a [`FlatIndex`] (ground truth, pre-filtered scans) and a
//! [`HnswIndex`] accelerator (unfiltered and post-filtered ANN search).

use std::collections::HashMap;

use crate::error::VecDbError;
use crate::filter::{Filter, HybridStrategy, KPredictor, Metadata};
use crate::flat::FlatIndex;
use crate::hnsw::{HnswConfig, HnswIndex};
use crate::index::VectorIndex;
use crate::metric::Metric;

/// A stored document: id, vector, and attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Caller-assigned id.
    pub id: u64,
    /// The embedding vector.
    pub vector: Vec<f32>,
    /// Attribute metadata.
    pub metadata: Metadata,
}

/// A search result with its attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The matching document's id.
    pub id: u64,
    /// Similarity score (higher is better).
    pub score: f32,
    /// The document's attributes (cloned for convenience).
    pub metadata: Metadata,
}

/// Statistics from one hybrid search, for strategy evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HybridStats {
    /// Vectors scored during the search.
    pub vectors_scored: usize,
    /// Metadata entries inspected.
    pub metadata_checked: usize,
    /// ANN over-fetch rounds (post-filter only).
    pub rounds: usize,
    /// Whether pre-filtering was chosen.
    pub used_prefilter: bool,
}

/// An in-memory vector collection with metadata and hybrid search.
#[derive(Debug)]
pub struct Collection {
    flat: FlatIndex,
    ann: HnswIndex,
    meta: HashMap<u64, Metadata>,
    predictor: KPredictor,
}

impl Collection {
    /// Create a collection for `dim`-dimensional vectors.
    pub fn new(dim: usize, metric: Metric) -> Self {
        Collection {
            flat: FlatIndex::new(dim, metric),
            ann: HnswIndex::new(dim, metric, HnswConfig::default())
                .expect("default HNSW config is valid"),
            meta: HashMap::new(),
            predictor: KPredictor::new(),
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.flat.dim()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.flat.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a document.
    pub fn insert<K, I>(&mut self, id: u64, vector: Vec<f32>, metadata: I) -> Result<(), VecDbError>
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, crate::filter::AttrValue)>,
    {
        self.flat.insert(id, vector.clone())?;
        if let Err(e) = self.ann.insert(id, vector) {
            // Keep flat and ANN in sync on failure.
            let _ = self.flat.remove(id);
            return Err(e);
        }
        self.meta.insert(id, metadata.into_iter().map(|(k, v)| (k.into(), v)).collect());
        Ok(())
    }

    /// Remove a document.
    pub fn remove(&mut self, id: u64) -> Result<(), VecDbError> {
        self.flat.remove(id)?;
        self.ann.remove(id)?;
        self.meta.remove(&id);
        // Rebuild the graph when tombstones dominate.
        if self.ann.tombstone_ratio() > 0.5 {
            self.ann.compact();
        }
        Ok(())
    }

    /// Fetch a document.
    pub fn get(&self, id: u64) -> Option<Document> {
        let vector = self.flat.get(id)?.to_vec();
        let metadata = self.meta.get(&id).cloned().unwrap_or_default();
        Some(Document { id, vector, metadata })
    }

    /// Unfiltered ANN search.
    pub fn search(&self, query: &[f32], k: usize) -> Result<Vec<SearchHit>, VecDbError> {
        let hits = self.ann.search(query, k)?;
        Ok(hits.into_iter().map(|n| self.hit(n.id, n.score)).collect())
    }

    /// Unfiltered exact search (flat scan).
    pub fn search_exact(&self, query: &[f32], k: usize) -> Result<Vec<SearchHit>, VecDbError> {
        let hits = self.flat.search(query, k)?;
        Ok(hits.into_iter().map(|n| self.hit(n.id, n.score)).collect())
    }

    /// Hybrid search with the default adaptive strategy.
    pub fn search_filtered(
        &self,
        query: &[f32],
        k: usize,
        filter: &Filter,
    ) -> Result<Vec<SearchHit>, VecDbError> {
        self.search_filtered_with(query, k, filter, HybridStrategy::default()).map(|(h, _)| h)
    }

    /// Hybrid search with an explicit strategy; returns execution stats.
    pub fn search_filtered_with(
        &self,
        query: &[f32],
        k: usize,
        filter: &Filter,
        strategy: HybridStrategy,
    ) -> Result<(Vec<SearchHit>, HybridStats), VecDbError> {
        if filter.is_trivial() {
            let hits = self.search(query, k)?;
            return Ok((hits, HybridStats::default()));
        }
        match strategy {
            HybridStrategy::PreFilter => self.prefilter_search(query, k, filter),
            HybridStrategy::PostFilter { expansion } => {
                self.postfilter_search(query, k, filter, expansion)
            }
            HybridStrategy::Adaptive { selectivity_threshold, sample } => {
                let (sel, checked) = self.estimate_selectivity(filter, sample);
                if sel < selectivity_threshold {
                    let (hits, mut stats) = self.prefilter_search(query, k, filter)?;
                    stats.metadata_checked += checked;
                    Ok((hits, stats))
                } else {
                    let expansion = self.predictor.predict(sel);
                    let (hits, mut stats) = self.postfilter_search(query, k, filter, expansion)?;
                    stats.metadata_checked += checked;
                    Ok((hits, stats))
                }
            }
        }
    }

    /// Hybrid search that also *trains* the k-predictor from what this
    /// query actually needed.
    pub fn search_filtered_learning(
        &mut self,
        query: &[f32],
        k: usize,
        filter: &Filter,
    ) -> Result<Vec<SearchHit>, VecDbError> {
        let (sel, _) = self.estimate_selectivity(filter, 256);
        let expansion = self.predictor.predict(sel);
        let (hits, stats) = self.postfilter_search(query, k, filter, expansion)?;
        // The expansion that would have sufficed: the final round's factor.
        let needed = expansion as f64 * 2f64.powi(stats.rounds.saturating_sub(1) as i32);
        self.predictor.observe(sel, needed);
        Ok(hits)
    }

    /// Exact fraction of documents matching `filter` (full metadata scan).
    pub fn selectivity(&self, filter: &Filter) -> f64 {
        if self.meta.is_empty() {
            return 0.0;
        }
        let n = self.meta.values().filter(|m| filter.matches(m)).count();
        n as f64 / self.meta.len() as f64
    }

    /// The learned k-predictor.
    pub fn predictor(&self) -> &KPredictor {
        &self.predictor
    }

    fn hit(&self, id: u64, score: f32) -> SearchHit {
        SearchHit { id, score, metadata: self.meta.get(&id).cloned().unwrap_or_default() }
    }

    /// Estimate selectivity on a deterministic metadata sample.
    ///
    /// Sampling iterates ids in sorted order — HashMap iteration order is
    /// process-random and would break the workspace's bit-for-bit
    /// determinism guarantee for collections larger than the sample.
    fn estimate_selectivity(&self, filter: &Filter, sample: usize) -> (f64, usize) {
        if self.meta.is_empty() {
            return (0.0, 0);
        }
        let mut ids: Vec<u64> = self.meta.keys().copied().collect();
        ids.sort_unstable();
        let step = (ids.len() / sample.max(1)).max(1);
        let mut checked = 0usize;
        let mut matched = 0usize;
        for &id in ids.iter().step_by(step) {
            let m = &self.meta[&id];
            checked += 1;
            if filter.matches(m) {
                matched += 1;
            }
        }
        if checked == 0 {
            (0.0, 0)
        } else {
            (matched as f64 / checked as f64, checked)
        }
    }

    fn prefilter_search(
        &self,
        query: &[f32],
        k: usize,
        filter: &Filter,
    ) -> Result<(Vec<SearchHit>, HybridStats), VecDbError> {
        let candidates: Vec<u64> = self
            .meta
            .iter()
            .filter(|(_, m)| filter.matches(m))
            .map(|(&id, _)| id)
            .collect();
        let stats = HybridStats {
            vectors_scored: candidates.len(),
            metadata_checked: self.meta.len(),
            rounds: 0,
            used_prefilter: true,
        };
        let hits = self.flat.search_among(query, k, &candidates)?;
        Ok((hits.into_iter().map(|n| self.hit(n.id, n.score)).collect(), stats))
    }

    fn postfilter_search(
        &self,
        query: &[f32],
        k: usize,
        filter: &Filter,
        expansion: usize,
    ) -> Result<(Vec<SearchHit>, HybridStats), VecDbError> {
        let mut stats = HybridStats::default();
        let mut fetch = (k * expansion.max(1)).max(k);
        loop {
            stats.rounds += 1;
            let raw = self.ann.search(query, fetch)?;
            stats.vectors_scored += raw.len();
            let filtered: Vec<SearchHit> = raw
                .iter()
                .filter(|n| {
                    self.meta.get(&n.id).is_some_and(|m| filter.matches(m))
                })
                .take(k)
                .map(|n| self.hit(n.id, n.score))
                .collect();
            stats.metadata_checked += raw.len();
            // Done when we have k results, or we already fetched everything.
            if filtered.len() >= k || fetch >= self.len() {
                return Ok((filtered, stats));
            }
            fetch = (fetch * 2).min(self.len().max(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{AttrValue, Predicate};
    use llmdm_rt::rand::rngs::SmallRng;
    use llmdm_rt::rand::{Rng, SeedableRng};

    /// 200 random unit-ish vectors; even ids are "doc", odd are "table";
    /// ids < 20 additionally get rare=true.
    fn sample_collection() -> Collection {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut coll = Collection::new(8, Metric::Cosine);
        for id in 0..200u64 {
            let v: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let kind = if id % 2 == 0 { "doc" } else { "table" };
            let mut md: Vec<(String, AttrValue)> =
                vec![("kind".to_string(), kind.into()), ("id".to_string(), AttrValue::Int(id as i64))];
            if id < 20 {
                md.push(("rare".to_string(), AttrValue::Bool(true)));
            }
            coll.insert(id, v, md).unwrap();
        }
        coll
    }

    #[test]
    fn insert_get_remove() {
        let mut coll = sample_collection();
        let doc = coll.get(5).unwrap();
        assert_eq!(doc.metadata.get("kind"), Some(&AttrValue::Str("table".into())));
        coll.remove(5).unwrap();
        assert!(coll.get(5).is_none());
        assert_eq!(coll.len(), 199);
    }

    #[test]
    fn unfiltered_search_finds_self() {
        let coll = sample_collection();
        let doc = coll.get(7).unwrap();
        let hits = coll.search(&doc.vector, 1).unwrap();
        assert_eq!(hits[0].id, 7);
    }

    #[test]
    fn filtered_results_all_satisfy_filter() {
        let coll = sample_collection();
        let q = coll.get(0).unwrap().vector;
        let f = Filter::eq("kind", "table");
        for strategy in [
            HybridStrategy::PreFilter,
            HybridStrategy::PostFilter { expansion: 2 },
            HybridStrategy::default(),
        ] {
            let (hits, _) = coll.search_filtered_with(&q, 10, &f, strategy).unwrap();
            assert_eq!(hits.len(), 10);
            assert!(hits.iter().all(|h| h.metadata.get("kind")
                == Some(&AttrValue::Str("table".into()))));
        }
    }

    #[test]
    fn pre_and_post_agree_on_top_result() {
        let coll = sample_collection();
        let q = coll.get(33).unwrap().vector; // id 33 is a "table"
        let f = Filter::eq("kind", "table");
        let (pre, _) = coll.search_filtered_with(&q, 1, &f, HybridStrategy::PreFilter).unwrap();
        let (post, _) = coll
            .search_filtered_with(&q, 1, &f, HybridStrategy::PostFilter { expansion: 4 })
            .unwrap();
        assert_eq!(pre[0].id, 33);
        assert_eq!(post[0].id, 33);
    }

    #[test]
    fn adaptive_uses_prefilter_for_selective_filters() {
        let coll = sample_collection();
        let q = coll.get(0).unwrap().vector;
        let rare = Filter::all().and(Predicate::Exists("rare".into()));
        let (_, stats) = coll
            .search_filtered_with(&q, 5, &rare, HybridStrategy::default())
            .unwrap();
        assert!(stats.used_prefilter, "rare filter (10% sel) should prefilter");
        let common = Filter::eq("kind", "doc");
        let (_, stats) = coll
            .search_filtered_with(&q, 5, &common, HybridStrategy::default())
            .unwrap();
        assert!(!stats.used_prefilter, "50% selectivity should postfilter");
    }

    #[test]
    fn postfilter_pathology_recovers_by_expansion() {
        // All k nearest fail the filter at expansion 1 → rounds > 1 but the
        // search still delivers (the paper's "null value returned" problem).
        let coll = sample_collection();
        let q = coll.get(1).unwrap().vector;
        let rare = Filter::all().and(Predicate::Exists("rare".into()));
        let (hits, stats) = coll
            .search_filtered_with(&q, 8, &rare, HybridStrategy::PostFilter { expansion: 1 })
            .unwrap();
        assert_eq!(hits.len(), 8);
        assert!(stats.rounds >= 2, "expected multiple over-fetch rounds, got {}", stats.rounds);
    }

    #[test]
    fn learning_predictor_observes() {
        let mut coll = sample_collection();
        let q = coll.get(1).unwrap().vector.clone();
        let f = Filter::eq("kind", "doc");
        assert_eq!(coll.predictor().observations(), 0);
        coll.search_filtered_learning(&q, 5, &f).unwrap();
        assert_eq!(coll.predictor().observations(), 1);
    }

    #[test]
    fn selectivity_exact() {
        let coll = sample_collection();
        assert!((coll.selectivity(&Filter::eq("kind", "doc")) - 0.5).abs() < 1e-9);
        let rare = Filter::all().and(Predicate::Exists("rare".into()));
        assert!((coll.selectivity(&rare) - 0.1).abs() < 1e-9);
        assert_eq!(coll.selectivity(&Filter::eq("kind", "nothing")), 0.0);
    }

    #[test]
    fn trivial_filter_falls_back_to_ann() {
        let coll = sample_collection();
        let q = coll.get(9).unwrap().vector;
        let hits = coll.search_filtered(&q, 3, &Filter::all()).unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].id, 9);
    }

    #[test]
    fn impossible_filter_returns_empty() {
        let coll = sample_collection();
        let q = coll.get(0).unwrap().vector;
        let f = Filter::eq("kind", "nonexistent");
        for strategy in [HybridStrategy::PreFilter, HybridStrategy::PostFilter { expansion: 2 }] {
            let (hits, _) = coll.search_filtered_with(&q, 5, &f, strategy).unwrap();
            assert!(hits.is_empty());
        }
    }

    #[test]
    fn duplicate_insert_keeps_consistency() {
        let mut coll = sample_collection();
        let err = coll.insert(0, vec![0.0; 8], Vec::<(String, AttrValue)>::new());
        assert!(err.is_err());
        assert_eq!(coll.len(), 200);
    }

    #[test]
    fn heavy_removal_triggers_compaction() {
        let mut coll = sample_collection();
        for id in 0..150u64 {
            coll.remove(id).unwrap();
        }
        assert_eq!(coll.len(), 50);
        let doc = coll.get(180).unwrap();
        let hits = coll.search(&doc.vector, 1).unwrap();
        assert_eq!(hits[0].id, 180);
    }
}
