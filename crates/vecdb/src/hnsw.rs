//! HNSW (Hierarchical Navigable Small World) graph index.
//!
//! The workhorse ANN structure of production vector databases (§I of the
//! paper: vector databases "accelerate the query processing with efficient
//! indexing mechanisms"). This is a from-scratch implementation of the
//! Malkov–Yashunin construction: nodes get a geometric random level; upper
//! layers are sparse express lanes for greedy descent; layer 0 holds the
//! dense neighborhood graph searched with a bounded best-first frontier of
//! width `ef`.
//!
//! Deletions are tombstoned: removed ids stay as graph waypoints (keeping
//! connectivity) but are filtered from results; `compact()` rebuilds.

use std::collections::{BinaryHeap, HashMap, HashSet};

use crate::error::VecDbError;
use crate::hash_ord::{MaxScore, MinScore};
use crate::index::{check_dim, Neighbor, VectorIndex};
use crate::metric::Metric;

/// HNSW construction/search parameters.
#[derive(Debug, Clone, Copy)]
pub struct HnswConfig {
    /// Max neighbors per node per layer (layer 0 uses `2 * m`).
    pub m: usize,
    /// Frontier width during construction.
    pub ef_construction: usize,
    /// Frontier width during search (≥ k for good recall).
    pub ef_search: usize,
    /// Seed for level assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig { m: 16, ef_construction: 100, ef_search: 64, seed: 0 }
    }
}

#[derive(Debug, Clone)]
struct Node {
    id: u64,
    vector: Vec<f32>,
    /// Adjacency per layer; `neighbors[l]` are internal node indexes.
    neighbors: Vec<Vec<u32>>,
    deleted: bool,
}

/// Hierarchical navigable small-world index.
#[derive(Debug)]
pub struct HnswIndex {
    dim: usize,
    metric: Metric,
    config: HnswConfig,
    nodes: Vec<Node>,
    by_id: HashMap<u64, u32>,
    entry: Option<u32>,
    max_level: usize,
    live: usize,
    insert_count: u64,
}

impl HnswIndex {
    /// Create an empty index.
    pub fn new(dim: usize, metric: Metric, config: HnswConfig) -> Result<Self, VecDbError> {
        if config.m == 0 || config.ef_construction == 0 || config.ef_search == 0 {
            return Err(VecDbError::InvalidConfig("m and ef parameters must be positive".into()));
        }
        Ok(HnswIndex {
            dim,
            metric,
            config,
            nodes: Vec::new(),
            by_id: HashMap::new(),
            entry: None,
            max_level: 0,
            live: 0,
            insert_count: 0,
        })
    }

    /// Adjust the search frontier width (`ef`): the recall/latency dial.
    pub fn set_ef_search(&mut self, ef: usize) {
        self.config.ef_search = ef.max(1);
    }

    /// Current search `ef`.
    pub fn ef_search(&self) -> usize {
        self.config.ef_search
    }

    /// Fraction of stored nodes that are tombstones.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            (self.nodes.len() - self.live) as f64 / self.nodes.len() as f64
        }
    }

    /// Rebuild the graph without tombstones.
    pub fn compact(&mut self) {
        let live: Vec<(u64, Vec<f32>)> = self
            .nodes
            .iter()
            .filter(|n| !n.deleted)
            .map(|n| (n.id, n.vector.clone()))
            .collect();
        let config = self.config;
        *self = HnswIndex::new(self.dim, self.metric, config).expect("config was valid");
        for (id, v) in live {
            self.insert(id, v).expect("reinsert of valid vector");
        }
    }

    /// Geometric level assignment with p = 1/e, deterministic per insert.
    fn draw_level(&mut self) -> usize {
        let h = crate::hash_ord::level_hash(self.config.seed, self.insert_count);
        self.insert_count += 1;
        let mut level = 0usize;
        let mut x = h;
        // Each "success" with probability 1/e ≈ 0.3679 bumps the level.
        loop {
            let u = crate::hash_ord::unit(x);
            if u < std::f64::consts::E.recip() && level < 16 {
                level += 1;
                x = crate::hash_ord::next(x);
            } else {
                return level;
            }
        }
    }

    #[inline]
    fn score(&self, q: &[f32], node: u32) -> f32 {
        self.metric.score(q, &self.nodes[node as usize].vector)
    }

    /// Greedy descent on one layer: move to the best neighbor until no
    /// neighbor improves.
    fn greedy_step(&self, q: &[f32], start: u32, layer: usize) -> u32 {
        let mut cur = start;
        let mut cur_score = self.score(q, cur);
        loop {
            let mut improved = false;
            for &nb in &self.nodes[cur as usize].neighbors[layer] {
                let s = self.score(q, nb);
                if s > cur_score {
                    cur = nb;
                    cur_score = s;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Best-first search on `layer` with frontier width `ef`. Returns up to
    /// `ef` candidates, best first, including tombstoned nodes (callers
    /// filter).
    fn search_layer(&self, q: &[f32], entry: u32, ef: usize, layer: usize) -> Vec<(f32, u32)> {
        let mut visited: HashSet<u32> = HashSet::new();
        visited.insert(entry);
        let entry_score = self.score(q, entry);
        // Frontier: max-heap on score. Results: min-heap to evict worst.
        let mut frontier: BinaryHeap<MaxScore> = BinaryHeap::new();
        frontier.push(MaxScore { score: entry_score, node: entry });
        let mut results: BinaryHeap<MinScore> = BinaryHeap::new();
        results.push(MinScore { score: entry_score, node: entry });

        while let Some(MaxScore { score, node }) = frontier.pop() {
            let worst = results.peek().map(|m| m.score).unwrap_or(f32::NEG_INFINITY);
            if results.len() >= ef && score < worst {
                break;
            }
            for &nb in &self.nodes[node as usize].neighbors[layer] {
                if !visited.insert(nb) {
                    continue;
                }
                let s = self.score(q, nb);
                let worst = results.peek().map(|m| m.score).unwrap_or(f32::NEG_INFINITY);
                if results.len() < ef || s > worst {
                    frontier.push(MaxScore { score: s, node: nb });
                    results.push(MinScore { score: s, node: nb });
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<(f32, u32)> =
            results.into_iter().map(|m| (m.score, m.node)).collect();
        out.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Connect `node` to the best `m` candidates on `layer`, and prune
    /// neighbors that exceed their degree bound.
    fn connect(&mut self, node: u32, mut candidates: Vec<(f32, u32)>, layer: usize) {
        let m_max = if layer == 0 { self.config.m * 2 } else { self.config.m };
        candidates.retain(|&(_, c)| c != node);
        candidates.truncate(m_max);
        for &(_, c) in &candidates {
            self.nodes[node as usize].neighbors[layer].push(c);
            self.nodes[c as usize].neighbors[layer].push(node);
            // Prune an over-full neighbor to its best m_max links.
            if self.nodes[c as usize].neighbors[layer].len() > m_max {
                let cv = self.nodes[c as usize].vector.clone();
                let mut links: Vec<(f32, u32)> = self.nodes[c as usize].neighbors[layer]
                    .iter()
                    .map(|&l| (self.score(&cv, l), l))
                    .collect();
                links.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
                links.truncate(m_max);
                self.nodes[c as usize].neighbors[layer] = links.into_iter().map(|(_, l)| l).collect();
            }
        }
    }
}

/// Result of an adaptively-terminated search.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveSearch {
    /// The neighbors found, best first.
    pub neighbors: Vec<Neighbor>,
    /// Distance computations performed.
    pub scored: usize,
    /// Whether the search stopped early (patience exhausted) rather than
    /// by the frontier draining.
    pub terminated_early: bool,
}

impl HnswIndex {
    /// Search with **learned-style adaptive early termination** (§III-B2's
    /// pointer to Li et al.'s adaptive early termination): instead of a
    /// fixed `ef`, best-first search continues until `patience`
    /// consecutive frontier expansions fail to improve the current k-th
    /// best score. Easy queries (whose neighbors cluster near the entry
    /// point) stop after a handful of expansions; hard queries keep
    /// searching — so the average cost drops at equal recall compared to
    /// a fixed `ef` sized for the hard tail.
    pub fn search_adaptive(
        &self,
        query: &[f32],
        k: usize,
        patience: usize,
    ) -> Result<AdaptiveSearch, VecDbError> {
        crate::index::check_dim(self.dim, query)?;
        let Some(mut entry) = self.entry else {
            return Ok(AdaptiveSearch {
                neighbors: Vec::new(),
                scored: 0,
                terminated_early: false,
            });
        };
        for layer in (1..=self.max_level).rev() {
            entry = self.greedy_step(query, entry, layer);
        }

        // Best-first on layer 0 with patience-based stopping.
        let mut visited: HashSet<u32> = HashSet::new();
        visited.insert(entry);
        let mut scored = 1usize;
        let entry_score = self.score(query, entry);
        let mut frontier: BinaryHeap<MaxScore> = BinaryHeap::new();
        frontier.push(MaxScore { score: entry_score, node: entry });
        // Live best-k (tombstones excluded).
        let mut best: Vec<Neighbor> = Vec::new();
        if !self.nodes[entry as usize].deleted {
            best.push(Neighbor { id: self.nodes[entry as usize].id, score: entry_score });
        }
        let mut stale = 0usize;
        let mut terminated_early = false;

        while let Some(MaxScore { node, .. }) = frontier.pop() {
            let mut improved = false;
            for &nb in &self.nodes[node as usize].neighbors[0] {
                if !visited.insert(nb) {
                    continue;
                }
                let s = self.score(query, nb);
                scored += 1;
                frontier.push(MaxScore { score: s, node: nb });
                if !self.nodes[nb as usize].deleted {
                    let kth = if best.len() >= k {
                        best[k - 1].score
                    } else {
                        f32::NEG_INFINITY
                    };
                    if s > kth {
                        crate::index::push_topk(
                            &mut best,
                            k,
                            Neighbor { id: self.nodes[nb as usize].id, score: s },
                        );
                        improved = true;
                    }
                }
            }
            if improved {
                stale = 0;
            } else {
                stale += 1;
                if stale >= patience && best.len() >= k.min(self.live) {
                    terminated_early = true;
                    break;
                }
            }
        }
        Ok(AdaptiveSearch { neighbors: best, scored, terminated_early })
    }
}

impl VectorIndex for HnswIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.live
    }

    fn insert(&mut self, id: u64, vector: Vec<f32>) -> Result<(), VecDbError> {
        check_dim(self.dim, &vector)?;
        if self.by_id.contains_key(&id) {
            return Err(VecDbError::DuplicateId(id));
        }
        let level = self.draw_level();
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            id,
            vector,
            neighbors: vec![Vec::new(); level + 1],
            deleted: false,
        });
        self.by_id.insert(id, idx);
        self.live += 1;

        let Some(mut entry) = self.entry else {
            self.entry = Some(idx);
            self.max_level = level;
            return Ok(());
        };

        let q = self.nodes[idx as usize].vector.clone();
        // Greedy descent through layers above the new node's level.
        let top = self.max_level;
        for layer in ((level + 1)..=top).rev() {
            entry = self.greedy_step(&q, entry, layer);
        }
        // Insert with ef_construction search on each shared layer.
        for layer in (0..=level.min(top)).rev() {
            let candidates = self.search_layer(&q, entry, self.config.ef_construction, layer);
            entry = candidates.first().map(|&(_, n)| n).unwrap_or(entry);
            self.connect(idx, candidates, layer);
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(idx);
        }
        Ok(())
    }

    fn remove(&mut self, id: u64) -> Result<(), VecDbError> {
        let &idx = self.by_id.get(&id).ok_or(VecDbError::NotFound(id))?;
        if self.nodes[idx as usize].deleted {
            return Err(VecDbError::NotFound(id));
        }
        self.nodes[idx as usize].deleted = true;
        self.by_id.remove(&id);
        self.live -= 1;
        Ok(())
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, VecDbError> {
        let mut span = llmdm_obs::span("vecdb.hnsw.search");
        check_dim(self.dim, query)?;
        let Some(mut entry) = self.entry else {
            return Ok(Vec::new());
        };
        for layer in (1..=self.max_level).rev() {
            entry = self.greedy_step(query, entry, layer);
        }
        let ef = self.config.ef_search.max(k);
        let found = self.search_layer(query, entry, ef, 0);
        if span.is_recording() {
            // `found` is the beam the base layer actually scored — the
            // candidates-scanned figure that separates ANN from brute force.
            span.field("k", k);
            span.field("ef", ef);
            span.field("candidates", found.len());
            llmdm_obs::counter_add("vecdb.search.queries", 1.0);
            llmdm_obs::counter_add("vecdb.search.candidates", found.len() as f64);
        }
        Ok(found
            .into_iter()
            .filter(|&(_, n)| !self.nodes[n as usize].deleted)
            .take(k)
            .map(|(score, n)| Neighbor { id: self.nodes[n as usize].id, score })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use llmdm_rt::rand::rngs::SmallRng;
    use llmdm_rt::rand::{Rng, SeedableRng};

    fn random_vecs(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect()).collect()
    }

    fn build(n: usize, seed: u64) -> (HnswIndex, Vec<Vec<f32>>) {
        let vecs = random_vecs(n, 16, seed);
        let mut idx = HnswIndex::new(16, Metric::Cosine, HnswConfig::default()).unwrap();
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(i as u64, v.clone()).unwrap();
        }
        (idx, vecs)
    }

    #[test]
    fn finds_inserted_vectors() {
        let (idx, vecs) = build(300, 11);
        for probe in [0usize, 123, 299] {
            let hits = idx.search(&vecs[probe], 1).unwrap();
            assert_eq!(hits[0].id, probe as u64, "probe {probe}");
        }
    }

    #[test]
    fn recall_vs_flat_above_90_percent() {
        let (idx, vecs) = build(1000, 7);
        let mut flat = FlatIndex::new(16, Metric::Cosine);
        for (i, v) in vecs.iter().enumerate() {
            flat.insert(i as u64, v.clone()).unwrap();
        }
        let queries = random_vecs(50, 16, 555);
        let mut overlap = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let gold: HashSet<u64> = flat.search(q, 10).unwrap().iter().map(|n| n.id).collect();
            let got = idx.search(q, 10).unwrap();
            overlap += got.iter().filter(|n| gold.contains(&n.id)).count();
            total += gold.len();
        }
        let recall = overlap as f64 / total as f64;
        assert!(recall > 0.9, "recall@10 = {recall}");
    }

    #[test]
    fn results_sorted_best_first() {
        let (idx, vecs) = build(200, 3);
        let hits = idx.search(&vecs[0], 10).unwrap();
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn tombstoned_ids_not_returned() {
        let (mut idx, vecs) = build(200, 9);
        idx.remove(42).unwrap();
        assert_eq!(idx.len(), 199);
        let hits = idx.search(&vecs[42], 5).unwrap();
        assert!(hits.iter().all(|h| h.id != 42));
        assert!(idx.remove(42).is_err());
    }

    #[test]
    fn compact_removes_tombstones() {
        let (mut idx, vecs) = build(200, 13);
        for id in 0..100u64 {
            idx.remove(id).unwrap();
        }
        assert!(idx.tombstone_ratio() > 0.4);
        idx.compact();
        assert_eq!(idx.tombstone_ratio(), 0.0);
        assert_eq!(idx.len(), 100);
        let hits = idx.search(&vecs[150], 1).unwrap();
        assert_eq!(hits[0].id, 150);
    }

    #[test]
    fn duplicate_rejected() {
        let mut idx = HnswIndex::new(4, Metric::Cosine, HnswConfig::default()).unwrap();
        idx.insert(1, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(idx.insert(1, vec![0.0, 1.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn empty_search_is_empty() {
        let idx = HnswIndex::new(4, Metric::Cosine, HnswConfig::default()).unwrap();
        assert!(idx.search(&[1.0, 0.0, 0.0, 0.0], 3).unwrap().is_empty());
    }

    #[test]
    fn higher_ef_no_worse_recall() {
        let (mut idx, vecs) = build(800, 21);
        let mut flat = FlatIndex::new(16, Metric::Cosine);
        for (i, v) in vecs.iter().enumerate() {
            flat.insert(i as u64, v.clone()).unwrap();
        }
        let queries = random_vecs(30, 16, 77);
        let recall = |idx: &HnswIndex| {
            let mut overlap = 0;
            for q in &queries {
                let gold: HashSet<u64> =
                    flat.search(q, 5).unwrap().iter().map(|n| n.id).collect();
                overlap +=
                    idx.search(q, 5).unwrap().iter().filter(|n| gold.contains(&n.id)).count();
            }
            overlap
        };
        idx.set_ef_search(8);
        let low = recall(&idx);
        idx.set_ef_search(128);
        let high = recall(&idx);
        assert!(high >= low, "low={low} high={high}");
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(HnswIndex::new(4, Metric::L2, HnswConfig { m: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn adaptive_search_matches_fixed_ef_recall_at_lower_cost() {
        let (idx, vecs) = build(1200, 31);
        let mut flat = FlatIndex::new(16, Metric::Cosine);
        for (i, v) in vecs.iter().enumerate() {
            flat.insert(i as u64, v.clone()).unwrap();
        }
        let queries = random_vecs(40, 16, 777);
        let mut fixed_recall = 0usize;
        let mut adaptive_recall = 0usize;
        let mut adaptive_scored = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let gold: HashSet<u64> = flat.search(q, 10).unwrap().iter().map(|n| n.id).collect();
            let fixed = idx.search(q, 10).unwrap();
            let adaptive = idx.search_adaptive(q, 10, 24).unwrap();
            fixed_recall += fixed.iter().filter(|n| gold.contains(&n.id)).count();
            adaptive_recall += adaptive.neighbors.iter().filter(|n| gold.contains(&n.id)).count();
            adaptive_scored += adaptive.scored;
            total += gold.len();
        }
        let fr = fixed_recall as f64 / total as f64;
        let ar = adaptive_recall as f64 / total as f64;
        assert!(ar > fr - 0.05, "adaptive recall {ar} vs fixed {fr}");
        assert!(ar > 0.85, "adaptive recall {ar}");
        // Cost should stay well below exhaustive.
        assert!(
            adaptive_scored / queries.len() < 1200 / 2,
            "mean scored {}",
            adaptive_scored / queries.len()
        );
    }

    #[test]
    fn adaptive_patience_trades_cost_for_recall() {
        let (idx, _) = build(800, 33);
        let queries = random_vecs(20, 16, 91);
        let cost_at = |patience: usize| {
            queries
                .iter()
                .map(|q| idx.search_adaptive(q, 10, patience).unwrap().scored)
                .sum::<usize>()
        };
        assert!(cost_at(4) <= cost_at(64), "more patience must not cost less");
    }

    #[test]
    fn adaptive_search_respects_tombstones() {
        let (mut idx, vecs) = build(300, 35);
        idx.remove(17).unwrap();
        let out = idx.search_adaptive(&vecs[17], 5, 16).unwrap();
        assert!(out.neighbors.iter().all(|n| n.id != 17));
        assert_eq!(out.neighbors.len(), 5);
    }

    #[test]
    fn adaptive_search_empty_index() {
        let idx = HnswIndex::new(4, Metric::Cosine, HnswConfig::default()).unwrap();
        let out = idx.search_adaptive(&[1.0, 0.0, 0.0, 0.0], 3, 8).unwrap();
        assert!(out.neighbors.is_empty());
        assert_eq!(out.scored, 0);
    }
}
