//! # llmdm-vecdb — the vector database substrate
//!
//! The paper positions vector databases as the companion system to LLMs for
//! data management: they store embedding vectors for multi-modal data
//! (§II-D1), historical prompts (§III-A), and cached queries (§III-C), and
//! they must answer *hybrid* queries that mix vector similarity with
//! attribute predicates (§III-B2, "attribute filtering"). This crate is a
//! from-scratch, in-memory vector database implementing exactly those
//! requirements:
//!
//! * three index structures — exhaustive [`flat::FlatIndex`], inverted-file
//!   [`ivf::IvfIndex`] (k-means coarse quantizer + `nprobe` search), and
//!   graph-based [`hnsw::HnswIndex`] — behind one [`index::VectorIndex`]
//!   trait;
//! * a [`collection::Collection`] API pairing each vector with attribute
//!   metadata;
//! * hybrid filtered search with **pre-filter**, **post-filter**, and
//!   **adaptive** orderings ([`filter::HybridStrategy`]), including the
//!   paper's "vector search first" pathology where all `k` returned items
//!   fail the attribute constraint, and a **learned k-predictor**
//!   ([`filter::KPredictor`]) that sizes the over-fetch from observed
//!   selectivities — the learning-based fix the paper envisions.
//!
//! ```
//! use llmdm_vecdb::{Collection, Metric, AttrValue, Filter};
//!
//! let mut coll = Collection::new(4, Metric::Cosine);
//! coll.insert(1, vec![1.0, 0.0, 0.0, 0.0], [("kind", AttrValue::from("doc"))]).unwrap();
//! coll.insert(2, vec![0.9, 0.1, 0.0, 0.0], [("kind", AttrValue::from("table"))]).unwrap();
//! let hits = coll.search(&[1.0, 0.0, 0.0, 0.0], 1).unwrap();
//! assert_eq!(hits[0].id, 1);
//! let filtered = coll
//!     .search_filtered(&[1.0, 0.0, 0.0, 0.0], 1, &Filter::eq("kind", "table"))
//!     .unwrap();
//! assert_eq!(filtered[0].id, 2);
//! ```

#![warn(missing_docs)]

mod hash_ord;
pub mod collection;
pub mod error;
pub mod filter;
pub mod flat;
pub mod hnsw;
pub mod index;
pub mod ivf;
pub mod kmeans;
pub mod metric;

pub use collection::{Collection, Document, SearchHit};
pub use error::VecDbError;
pub use filter::{AttrValue, Filter, HybridStrategy, KPredictor, Predicate};
pub use flat::FlatIndex;
pub use hnsw::{AdaptiveSearch, HnswConfig, HnswIndex};
pub use index::VectorIndex;
pub use ivf::{IvfConfig, IvfIndex};
pub use metric::Metric;
