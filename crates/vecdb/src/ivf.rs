//! IVF (inverted-file) index: k-means coarse quantizer + per-cluster
//! inverted lists, probing the `nprobe` nearest lists at query time.
//!
//! The classic recall/latency dial for vector search: larger `nprobe`
//! approaches exhaustive accuracy at proportional cost. Benchmarked against
//! flat and HNSW in `llmdm-bench/benches/vecdb_search.rs`.

use std::collections::HashSet;

use crate::error::VecDbError;
use crate::index::{check_dim, push_topk, Neighbor, VectorIndex};
use crate::kmeans::KMeans;
use crate::metric::Metric;

/// IVF build/search parameters.
#[derive(Debug, Clone, Copy)]
pub struct IvfConfig {
    /// Number of inverted lists (k-means clusters).
    pub nlist: usize,
    /// Lists probed per query.
    pub nprobe: usize,
    /// Lloyd iterations when (re)training the quantizer.
    pub train_iters: usize,
    /// Retrain after this many inserts since the last training.
    pub retrain_threshold: usize,
    /// Seed for quantizer training.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig { nlist: 32, nprobe: 4, train_iters: 10, retrain_threshold: 1024, seed: 0 }
    }
}

/// Inverted-file approximate index.
#[derive(Debug)]
pub struct IvfIndex {
    dim: usize,
    metric: Metric,
    config: IvfConfig,
    quantizer: Option<KMeans>,
    lists: Vec<Vec<(u64, Vec<f32>)>>,
    ids: HashSet<u64>,
    len: usize,
    inserts_since_train: usize,
}

impl IvfIndex {
    /// Create an empty IVF index.
    pub fn new(dim: usize, metric: Metric, config: IvfConfig) -> Result<Self, VecDbError> {
        if config.nlist == 0 || config.nprobe == 0 {
            return Err(VecDbError::InvalidConfig("nlist and nprobe must be positive".into()));
        }
        Ok(IvfIndex {
            dim,
            metric,
            config,
            quantizer: None,
            lists: Vec::new(),
            ids: HashSet::new(),
            len: 0,
            inserts_since_train: 0,
        })
    }

    /// Current `nprobe`.
    pub fn nprobe(&self) -> usize {
        self.config.nprobe
    }

    /// Adjust `nprobe` (the recall/latency dial).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.config.nprobe = nprobe.max(1);
    }

    /// Probed search with the list scans fanned out across `threads` OS
    /// threads (the serving layer's parallel path).
    ///
    /// **Bit-identical to [`VectorIndex::search`]**: the quantizer picks
    /// the same probe lists in the same order, the lists are chunked in
    /// that order across threads, and per-chunk top-k partials merge in
    /// chunk order — [`push_topk`]'s tie-break then reproduces the
    /// sequential result exactly.
    pub fn par_search(
        &self,
        query: &[f32],
        k: usize,
        threads: usize,
    ) -> Result<Vec<Neighbor>, VecDbError> {
        let probed: Vec<usize> = match &self.quantizer {
            Some(km) => km.nearest_n(query, self.config.nprobe),
            None => (0..self.lists.len()).collect(),
        };
        let t = threads.max(1).min(probed.len().max(1));
        if t <= 1 {
            return self.search(query, k);
        }
        let mut span = llmdm_obs::span("vecdb.ivf.par_search");
        check_dim(self.dim, query)?;
        let chunk = probed.len().div_ceil(t);
        let mut partials: Vec<(Vec<Neighbor>, usize)> = Vec::with_capacity(t);
        std::thread::scope(|s| {
            let handles: Vec<_> = probed
                .chunks(chunk)
                .map(|lists| {
                    s.spawn(move || {
                        let mut best = Vec::with_capacity(k);
                        let mut scanned = 0usize;
                        for &c in lists {
                            scanned += self.lists[c].len();
                            for (id, v) in &self.lists[c] {
                                push_topk(
                                    &mut best,
                                    k,
                                    Neighbor { id: *id, score: self.metric.score(query, v) },
                                );
                            }
                        }
                        (best, scanned)
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("search worker panicked"));
            }
        });
        let mut best = Vec::with_capacity(k);
        let mut scanned = 0usize;
        for (partial, part_scanned) in partials {
            scanned += part_scanned;
            for nb in partial {
                push_topk(&mut best, k, nb);
            }
        }
        if span.is_recording() {
            span.field("k", k);
            span.field("threads", t);
            span.field("nprobe", self.config.nprobe);
            span.field("candidates", scanned);
            span.field("distance_comps", scanned);
            llmdm_obs::counter_add("vecdb.search.queries", 1.0);
            llmdm_obs::counter_add("vecdb.search.candidates", scanned as f64);
            llmdm_obs::counter_add("vecdb.search.distance_comps", scanned as f64);
        }
        Ok(best)
    }

    /// Retrain the quantizer on the currently stored vectors and
    /// redistribute the lists.
    pub fn retrain(&mut self) {
        let all: Vec<(u64, Vec<f32>)> =
            self.lists.drain(..).flatten().collect();
        if all.is_empty() {
            self.quantizer = None;
            self.inserts_since_train = 0;
            return;
        }
        let mut flat = Vec::with_capacity(all.len() * self.dim);
        for (_, v) in &all {
            flat.extend_from_slice(v);
        }
        let km = KMeans::train(
            &flat,
            self.dim,
            self.config.nlist,
            self.config.train_iters,
            self.config.seed,
        );
        self.lists = vec![Vec::new(); km.k];
        for (id, v) in all {
            let c = km.nearest(&v).0;
            self.lists[c].push((id, v));
        }
        self.quantizer = Some(km);
        self.inserts_since_train = 0;
    }

}

impl VectorIndex for IvfIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, id: u64, vector: Vec<f32>) -> Result<(), VecDbError> {
        check_dim(self.dim, &vector)?;
        if !self.ids.insert(id) {
            return Err(VecDbError::DuplicateId(id));
        }
        match &self.quantizer {
            Some(km) => {
                let c = km.nearest(&vector).0;
                self.lists[c].push((id, vector));
            }
            None => {
                if self.lists.is_empty() {
                    self.lists.push(Vec::new());
                }
                self.lists[0].push((id, vector));
            }
        }
        self.len += 1;
        self.inserts_since_train += 1;
        if self.inserts_since_train >= self.config.retrain_threshold
            || (self.quantizer.is_none() && self.len >= self.config.nlist * 4)
        {
            self.retrain();
        }
        Ok(())
    }

    fn remove(&mut self, id: u64) -> Result<(), VecDbError> {
        if !self.ids.remove(&id) {
            return Err(VecDbError::NotFound(id));
        }
        for list in &mut self.lists {
            if let Some(pos) = list.iter().position(|(i, _)| *i == id) {
                list.swap_remove(pos);
                self.len -= 1;
                return Ok(());
            }
        }
        Err(VecDbError::NotFound(id))
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, VecDbError> {
        let mut span = llmdm_obs::span("vecdb.ivf.search");
        check_dim(self.dim, query)?;
        let mut best = Vec::with_capacity(k);
        let mut scanned = 0usize;
        match &self.quantizer {
            Some(km) => {
                for c in km.nearest_n(query, self.config.nprobe) {
                    scanned += self.lists[c].len();
                    for (id, v) in &self.lists[c] {
                        push_topk(
                            &mut best,
                            k,
                            Neighbor { id: *id, score: self.metric.score(query, v) },
                        );
                    }
                }
            }
            None => {
                for list in &self.lists {
                    scanned += list.len();
                    for (id, v) in list {
                        push_topk(
                            &mut best,
                            k,
                            Neighbor { id: *id, score: self.metric.score(query, v) },
                        );
                    }
                }
            }
        }
        if span.is_recording() {
            span.field("k", k);
            span.field("nprobe", self.config.nprobe);
            span.field("candidates", scanned);
            span.field("distance_comps", scanned);
            llmdm_obs::counter_add("vecdb.search.queries", 1.0);
            llmdm_obs::counter_add("vecdb.search.candidates", scanned as f64);
            llmdm_obs::counter_add("vecdb.search.distance_comps", scanned as f64);
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_rt::rand::rngs::SmallRng;
    use llmdm_rt::rand::{Rng, SeedableRng};

    fn random_vecs(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect()).collect()
    }

    fn build(n: usize) -> (IvfIndex, Vec<Vec<f32>>) {
        let vecs = random_vecs(n, 8, 3);
        let mut idx = IvfIndex::new(
            8,
            Metric::Cosine,
            IvfConfig { nlist: 8, nprobe: 2, train_iters: 8, retrain_threshold: 64, seed: 1 },
        )
        .unwrap();
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(i as u64, v.clone()).unwrap();
        }
        (idx, vecs)
    }

    #[test]
    fn finds_exact_match_with_full_probe() {
        let (mut idx, vecs) = build(200);
        idx.set_nprobe(8); // probe everything → exact
        for probe in [0usize, 57, 199] {
            let hits = idx.search(&vecs[probe], 1).unwrap();
            assert_eq!(hits[0].id, probe as u64);
        }
    }

    #[test]
    fn recall_improves_with_nprobe() {
        let (mut idx, _vecs) = build(400);
        let queries = random_vecs(30, 8, 99);
        let exact: Vec<u64> = {
            idx.set_nprobe(idx.lists.len().max(8));
            queries.iter().map(|q| idx.search(q, 1).unwrap()[0].id).collect()
        };
        let recall_at = |idx: &mut IvfIndex, np: usize| {
            idx.set_nprobe(np);
            let mut hit = 0;
            for (q, gold) in queries.iter().zip(&exact) {
                if idx.search(q, 1).unwrap().first().map(|n| n.id) == Some(*gold) {
                    hit += 1;
                }
            }
            hit as f64 / queries.len() as f64
        };
        let r1 = recall_at(&mut idx, 1);
        let r8 = recall_at(&mut idx, 8);
        assert!(r8 >= r1, "r1={r1} r8={r8}");
        assert!(r8 > 0.95, "r8={r8}");
    }

    #[test]
    fn duplicate_rejected() {
        let (mut idx, vecs) = build(50);
        assert!(matches!(idx.insert(0, vecs[0].clone()), Err(VecDbError::DuplicateId(0))));
    }

    #[test]
    fn remove_works_across_lists() {
        let (mut idx, vecs) = build(100);
        idx.set_nprobe(16);
        idx.remove(5).unwrap();
        assert_eq!(idx.len(), 99);
        let hits = idx.search(&vecs[5], 1).unwrap();
        assert_ne!(hits[0].id, 5);
        assert!(idx.remove(5).is_err());
    }

    #[test]
    fn works_before_training() {
        let mut idx = IvfIndex::new(4, Metric::L2, IvfConfig::default()).unwrap();
        idx.insert(1, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        idx.insert(2, vec![0.0, 1.0, 0.0, 0.0]).unwrap();
        let hits = idx.search(&[1.0, 0.0, 0.0, 0.0], 1).unwrap();
        assert_eq!(hits[0].id, 1);
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(IvfIndex::new(4, Metric::L2, IvfConfig { nlist: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn par_search_matches_sequential() {
        let (mut idx, _) = build(400);
        let queries = random_vecs(20, 8, 123);
        for nprobe in [1, 2, 8] {
            idx.set_nprobe(nprobe);
            for q in &queries {
                let seq = idx.search(q, 10).unwrap();
                for threads in [1, 2, 3, 8] {
                    assert_eq!(
                        idx.par_search(q, 10, threads).unwrap(),
                        seq,
                        "nprobe={nprobe} threads={threads}"
                    );
                }
            }
        }
        // Also exact before training (single default list).
        let mut fresh = IvfIndex::new(4, Metric::L2, IvfConfig::default()).unwrap();
        fresh.insert(1, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        fresh.insert(2, vec![0.0, 1.0, 0.0, 0.0]).unwrap();
        let q = [1.0, 0.0, 0.0, 0.0];
        assert_eq!(fresh.par_search(&q, 2, 4).unwrap(), fresh.search(&q, 2).unwrap());
    }

    #[test]
    fn retrain_preserves_contents() {
        let (mut idx, vecs) = build(150);
        idx.retrain();
        assert_eq!(idx.len(), 150);
        idx.set_nprobe(8);
        let hits = idx.search(&vecs[7], 1).unwrap();
        assert_eq!(hits[0].id, 7);
    }
}
