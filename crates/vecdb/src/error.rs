//! Error type for the vector database.

use std::fmt;

/// Errors produced by vector-database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VecDbError {
    /// A vector's dimensionality did not match the index's.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Dimensionality of the offending vector.
        got: usize,
    },
    /// An id was inserted twice.
    DuplicateId(u64),
    /// An id was not found.
    NotFound(u64),
    /// The requested operation needs a non-empty index or training set.
    Empty(&'static str),
    /// Invalid configuration parameter.
    InvalidConfig(String),
}

impl fmt::Display for VecDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VecDbError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            VecDbError::DuplicateId(id) => write!(f, "duplicate id {id}"),
            VecDbError::NotFound(id) => write!(f, "id {id} not found"),
            VecDbError::Empty(what) => write!(f, "{what} is empty"),
            VecDbError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for VecDbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(VecDbError::DimensionMismatch { expected: 4, got: 3 }.to_string().contains('4'));
        assert!(VecDbError::DuplicateId(9).to_string().contains('9'));
        assert!(VecDbError::NotFound(2).to_string().contains('2'));
        assert!(VecDbError::Empty("index").to_string().contains("index"));
    }
}
