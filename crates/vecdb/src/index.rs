//! The common index interface.

use crate::error::VecDbError;
use crate::metric::Metric;

/// A scored search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The stored vector's id.
    pub id: u64,
    /// Similarity score (higher is better, per the index's [`Metric`]).
    pub score: f32,
}

/// Common interface over flat, IVF, and HNSW indexes.
pub trait VectorIndex: Send + Sync {
    /// Dimensionality of stored vectors.
    fn dim(&self) -> usize;
    /// The ranking metric.
    fn metric(&self) -> Metric;
    /// Number of live (non-deleted) vectors.
    fn len(&self) -> usize;
    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Insert a vector under `id`.
    fn insert(&mut self, id: u64, vector: Vec<f32>) -> Result<(), VecDbError>;
    /// Remove the vector stored under `id`.
    fn remove(&mut self, id: u64) -> Result<(), VecDbError>;
    /// `k` nearest neighbors of `query`, best first.
    fn search(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, VecDbError>;
}

/// Validate that `v` has dimensionality `dim`.
pub(crate) fn check_dim(dim: usize, v: &[f32]) -> Result<(), VecDbError> {
    if v.len() != dim {
        Err(VecDbError::DimensionMismatch { expected: dim, got: v.len() })
    } else {
        Ok(())
    }
}

/// Push `(id, score)` into a bounded best-k buffer kept sorted descending.
///
/// Small-k insertion sort — the hot loop in every index — avoids heap
/// allocation churn for the typical k ≤ 100.
pub(crate) fn push_topk(buf: &mut Vec<Neighbor>, k: usize, n: Neighbor) {
    if k == 0 {
        return;
    }
    if buf.len() == k && n.score <= buf[k - 1].score {
        return;
    }
    let pos = buf.partition_point(|x| x.score >= n.score);
    buf.insert(pos, n);
    if buf.len() > k {
        buf.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_keeps_best() {
        let mut buf = Vec::new();
        for (id, score) in [(1, 0.1), (2, 0.9), (3, 0.5), (4, 0.7)] {
            push_topk(&mut buf, 2, Neighbor { id, score });
        }
        assert_eq!(buf.iter().map(|n| n.id).collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn topk_zero_k() {
        let mut buf = Vec::new();
        push_topk(&mut buf, 0, Neighbor { id: 1, score: 1.0 });
        assert!(buf.is_empty());
    }

    #[test]
    fn topk_sorted_descending() {
        let mut buf = Vec::new();
        for i in 0..50 {
            push_topk(&mut buf, 10, Neighbor { id: i, score: (i as f32 * 37.0) % 11.0 });
        }
        assert!(buf.windows(2).all(|w| w[0].score >= w[1].score));
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn check_dim_rejects() {
        assert!(check_dim(3, &[1.0, 2.0]).is_err());
        assert!(check_dim(2, &[1.0, 2.0]).is_ok());
    }
}
