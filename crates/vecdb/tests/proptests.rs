//! Property-based tests for vector-database invariants.

use llmdm_vecdb::{
    AttrValue, Collection, Filter, FlatIndex, HybridStrategy, KPredictor, Metric, Predicate,
    VectorIndex,
};
use llmdm_rt::proptest;
use llmdm_rt::proptest::prelude::*;

const DIM: usize = 6;

fn vec_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1.0f32..1.0, DIM)
}

proptest! {
    /// Flat search top-1 equals the naive argmax for any data set.
    #[test]
    fn flat_top1_is_argmax(
        vecs in proptest::collection::vec(vec_strategy(), 1..40),
        query in vec_strategy(),
    ) {
        let mut idx = FlatIndex::new(DIM, Metric::Cosine);
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(i as u64, v.clone()).unwrap();
        }
        let got = idx.search(&query, 1).unwrap()[0];
        let naive = vecs
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u64, Metric::Cosine.score(&query, v)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        prop_assert!((got.score - naive.1).abs() < 1e-6);
    }

    /// Search results are sorted best-first and contain no duplicates.
    #[test]
    fn flat_results_sorted_unique(
        vecs in proptest::collection::vec(vec_strategy(), 1..40),
        query in vec_strategy(),
        k in 1usize..10,
    ) {
        let mut idx = FlatIndex::new(DIM, Metric::L2);
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(i as u64, v.clone()).unwrap();
        }
        let hits = idx.search(&query, k).unwrap();
        prop_assert!(hits.len() <= k.min(vecs.len()));
        prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        let mut ids: Vec<u64> = hits.iter().map(|h| h.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), hits.len());
    }

    /// Insert-then-remove round-trips to the original state for random
    /// interleavings.
    #[test]
    fn flat_insert_remove_consistency(
        ops in proptest::collection::vec((any::<bool>(), 0u64..20), 1..60)
    ) {
        let mut idx = FlatIndex::new(DIM, Metric::Cosine);
        let mut live: Vec<u64> = Vec::new();
        for (insert, id) in ops {
            if insert {
                let v = vec![((id % 7) as f32) / 7.0; DIM];
                if live.contains(&id) {
                    prop_assert!(idx.insert(id, v).is_err());
                } else {
                    idx.insert(id, v).unwrap();
                    live.push(id);
                }
            } else if let Some(pos) = live.iter().position(|&x| x == id) {
                idx.remove(id).unwrap();
                live.remove(pos);
            } else {
                prop_assert!(idx.remove(id).is_err());
            }
            prop_assert_eq!(idx.len(), live.len());
            for &l in &live {
                prop_assert!(idx.get(l).is_some());
            }
        }
    }

    /// Hybrid pre-filter and post-filter agree on which items *qualify*:
    /// every hit satisfies the filter, and pre-filter (exact) returns at
    /// least as many results as requested when enough items qualify.
    #[test]
    fn hybrid_hits_always_satisfy_filter(
        tags in proptest::collection::vec(0i64..3, 8..60),
        query in vec_strategy(),
        k in 1usize..6,
        wanted in 0i64..3,
    ) {
        let mut coll = Collection::new(DIM, Metric::Cosine);
        for (i, &tag) in tags.iter().enumerate() {
            let v: Vec<f32> = (0..DIM).map(|d| ((i + d) % 5) as f32 / 5.0 - 0.4).collect();
            coll.insert(i as u64, v, [("tag", AttrValue::Int(tag))]).unwrap();
        }
        let filter = Filter::all().and(Predicate::Eq("tag".into(), AttrValue::Int(wanted)));
        let qualifying = tags.iter().filter(|&&t| t == wanted).count();
        for strategy in [
            HybridStrategy::PreFilter,
            HybridStrategy::PostFilter { expansion: 2 },
            HybridStrategy::default(),
        ] {
            let (hits, _) = coll.search_filtered_with(&query, k, &filter, strategy).unwrap();
            prop_assert!(hits.len() <= k);
            for h in &hits {
                prop_assert_eq!(h.metadata.get("tag"), Some(&AttrValue::Int(wanted)));
            }
            if matches!(strategy, HybridStrategy::PreFilter) {
                prop_assert_eq!(hits.len(), k.min(qualifying));
            }
        }
    }

    /// The k-predictor always returns a positive expansion and learns
    /// means within the observed range (+ margin).
    #[test]
    fn kpredictor_bounds(
        observations in proptest::collection::vec((0.0f64..1.0, 1.0f64..32.0), 0..50),
        probe in 0.0f64..1.0,
    ) {
        let mut p = KPredictor::new();
        for (sel, need) in &observations {
            p.observe(*sel, *need);
        }
        let predicted = p.predict(probe);
        prop_assert!(predicted >= 1);
        prop_assert!(predicted <= 104, "predicted {}", predicted); // 64 cold cap, 32*1.25*2 learned cap
    }

    /// Filters compose monotonically: adding a predicate never grows the
    /// match set.
    #[test]
    fn filter_conjunction_shrinks(
        tags in proptest::collection::vec((0i64..4, 0i64..4), 1..40),
    ) {
        let metas: Vec<llmdm_vecdb::filter::Metadata> = tags
            .iter()
            .map(|(a, b)| {
                [
                    ("a".to_string(), AttrValue::Int(*a)),
                    ("b".to_string(), AttrValue::Int(*b)),
                ]
                .into_iter()
                .collect()
            })
            .collect();
        let f1 = Filter::all().and(Predicate::Eq("a".into(), AttrValue::Int(1)));
        let f2 = f1.clone().and(Predicate::Eq("b".into(), AttrValue::Int(2)));
        let n1 = metas.iter().filter(|m| f1.matches(m)).count();
        let n2 = metas.iter().filter(|m| f2.matches(m)).count();
        prop_assert!(n2 <= n1);
    }
}
