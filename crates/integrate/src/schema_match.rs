//! Schema matching: find corresponding columns across two tables whose
//! schemas name things differently (§II-C1).

use llmdm_model::embed::cosine;
use llmdm_model::Embedder;
use llmdm_sqlengine::{Table, Value};

/// One proposed column correspondence.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMatch {
    /// Column name in the left table.
    pub left: String,
    /// Column name in the right table.
    pub right: String,
    /// Blended confidence in `[0, 1]`.
    pub score: f64,
}

/// Match columns of `left` to columns of `right`.
///
/// Score = 0.4·name-embedding similarity + 0.4·value overlap (Jaccard of
/// rendered values) + 0.2·type agreement; greedy one-to-one assignment,
/// matches below `threshold` dropped.
pub fn match_schemas(left: &Table, right: &Table, seed: u64, threshold: f64) -> Vec<ColumnMatch> {
    let embedder = Embedder::standard(seed);
    let mut scored: Vec<(f64, usize, usize)> = Vec::new();
    for (i, lc) in left.schema.columns().iter().enumerate() {
        for (j, rc) in right.schema.columns().iter().enumerate() {
            let name_sim = match (embedder.embed(&lc.name), embedder.embed(&rc.name)) {
                (Ok(a), Ok(b)) => cosine(&a, &b) as f64,
                _ => 0.0,
            };
            let overlap = value_overlap(left, i, right, j);
            let type_ok = if lc.dtype == rc.dtype { 1.0 } else { 0.0 };
            scored.push((0.4 * name_sim.max(0.0) + 0.4 * overlap + 0.2 * type_ok, i, j));
        }
    }
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut used_l = vec![false; left.schema.len()];
    let mut used_r = vec![false; right.schema.len()];
    let mut out = Vec::new();
    for (score, i, j) in scored {
        if score < threshold || used_l[i] || used_r[j] {
            continue;
        }
        used_l[i] = true;
        used_r[j] = true;
        out.push(ColumnMatch {
            left: left.schema.columns()[i].name.clone(),
            right: right.schema.columns()[j].name.clone(),
            score,
        });
    }
    out
}

/// Jaccard overlap of the distinct rendered values of two columns.
fn value_overlap(left: &Table, i: usize, right: &Table, j: usize) -> f64 {
    let distinct = |t: &Table, c: usize| -> Vec<String> {
        let mut v: Vec<String> = t
            .rows
            .iter()
            .filter_map(|r| match &r[c] {
                Value::Null => None,
                v => Some(v.to_string().to_lowercase()),
            })
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let (a, b) = (distinct(left, i), distinct(right, j));
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.iter().filter(|x| b.contains(x)).count();
    inter as f64 / (a.len() + b.len() - inter).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_sqlengine::{Column, DataType, Schema};

    fn crm() -> Table {
        let schema = Schema::new(vec![
            Column::new("customer_name", DataType::Text),
            Column::new("customer_city", DataType::Text),
            Column::new("total_spend", DataType::Int),
        ]);
        let mut t = Table::new("crm", schema);
        for (n, c, s) in [("alice", "beijing", 100i64), ("bob", "singapore", 200), ("chen", "beijing", 50)] {
            t.push_row(vec![Value::Str(n.into()), Value::Str(c.into()), Value::Int(s)]).unwrap();
        }
        t
    }

    fn billing() -> Table {
        let schema = Schema::new(vec![
            Column::new("spend_total", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("city", DataType::Text),
        ]);
        let mut t = Table::new("billing", schema);
        for (s, n, c) in [(100i64, "alice", "beijing"), (200, "bob", "singapore")] {
            t.push_row(vec![Value::Int(s), Value::Str(n.into()), Value::Str(c.into())]).unwrap();
        }
        t
    }

    #[test]
    fn matches_renamed_columns() {
        let matches = match_schemas(&crm(), &billing(), 1, 0.3);
        assert_eq!(matches.len(), 3);
        let find = |l: &str| matches.iter().find(|m| m.left == l).map(|m| m.right.clone());
        assert_eq!(find("customer_name").as_deref(), Some("name"));
        assert_eq!(find("customer_city").as_deref(), Some("city"));
        assert_eq!(find("total_spend").as_deref(), Some("spend_total"));
    }

    #[test]
    fn one_to_one_assignment() {
        let matches = match_schemas(&crm(), &billing(), 1, 0.0);
        let mut rights: Vec<&str> = matches.iter().map(|m| m.right.as_str()).collect();
        rights.sort_unstable();
        rights.dedup();
        assert_eq!(rights.len(), matches.len());
    }

    #[test]
    fn threshold_filters_weak_matches() {
        let schema = Schema::new(vec![Column::new("zzz", DataType::Bool)]);
        let mut odd = Table::new("odd", schema);
        odd.push_row(vec![Value::Bool(true)]).unwrap();
        let matches = match_schemas(&crm(), &odd, 1, 0.5);
        assert!(matches.is_empty(), "{matches:?}");
    }

    #[test]
    fn value_overlap_drives_ambiguous_names() {
        // Two candidate columns with equally generic names; values decide.
        let schema_l = Schema::new(vec![Column::new("field_a", DataType::Text)]);
        let mut l = Table::new("l", schema_l);
        l.push_row(vec![Value::Str("beijing".into())]).unwrap();
        l.push_row(vec![Value::Str("singapore".into())]).unwrap();
        let schema_r = Schema::new(vec![
            Column::new("col_one", DataType::Text),
            Column::new("col_two", DataType::Text),
        ]);
        let mut r = Table::new("r", schema_r);
        r.push_row(vec![Value::Str("beijing".into()), Value::Str("alice".into())]).unwrap();
        r.push_row(vec![Value::Str("singapore".into()), Value::Str("bob".into())]).unwrap();
        let matches = match_schemas(&l, &r, 1, 0.1);
        assert_eq!(matches[0].right, "col_one");
    }
}
