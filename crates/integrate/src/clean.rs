//! Data cleaning (§II-C1): NULLs, numeric outliers, duplicate rows, and
//! functional-dependency violations, with majority repair. "An error will
//! make the data less usable … even 10% error may make the data
//! meaningless for real-world applications like healthcare analytics."

use llmdm_sqlengine::{DataType, Table, Value};

/// A functional-dependency violation: rows agreeing on the determinant but
/// disagreeing on the dependent.
#[derive(Debug, Clone, PartialEq)]
pub struct FdViolation {
    /// Determinant value (rendered).
    pub determinant: String,
    /// The conflicting dependent values (rendered) with their counts.
    pub dependents: Vec<(String, usize)>,
}

/// A cleaning report.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanReport {
    /// NULL cells per column (name, count).
    pub nulls: Vec<(String, usize)>,
    /// Outlier row indexes per numeric column (robust modified z-score
    /// |0.6745·(v − median)/MAD| > 3.5).
    pub outliers: Vec<(String, Vec<usize>)>,
    /// Exact duplicate row index pairs.
    pub duplicates: Vec<(usize, usize)>,
    /// Violations of the checked FDs.
    pub fd_violations: Vec<(String, String, Vec<FdViolation>)>,
    /// Overall error-cell rate estimate.
    pub error_rate: f64,
}

/// Analyze a table. `fds` lists `(determinant, dependent)` column pairs to
/// check.
pub fn clean_report(table: &Table, fds: &[(&str, &str)]) -> CleanReport {
    let n = table.rows.len();
    let mut nulls = Vec::new();
    let mut outliers = Vec::new();
    let mut error_cells = 0usize;

    for (i, c) in table.schema.columns().iter().enumerate() {
        let null_count = table.rows.iter().filter(|r| r[i].is_null()).count();
        if null_count > 0 {
            nulls.push((c.name.clone(), null_count));
            error_cells += null_count;
        }
        if matches!(c.dtype, DataType::Int | DataType::Float) {
            let vals: Vec<(usize, f64)> = table
                .rows
                .iter()
                .enumerate()
                .filter_map(|(r, row)| row[i].as_f64().map(|v| (r, v)))
                .collect();
            if vals.len() >= 4 {
                // Median/MAD: robust to the outlier inflating the scale
                // estimate (the masking problem of mean/sigma z-scores).
                let mut sorted: Vec<f64> = vals.iter().map(|(_, v)| *v).collect();
                sorted.sort_by(f64::total_cmp);
                let median = sorted[sorted.len() / 2];
                let mut dev: Vec<f64> = sorted.iter().map(|v| (v - median).abs()).collect();
                dev.sort_by(f64::total_cmp);
                let mad = dev[dev.len() / 2];
                if mad > 0.0 {
                    let out: Vec<usize> = vals
                        .iter()
                        .filter(|(_, v)| (0.6745 * (v - median) / mad).abs() > 3.5)
                        .map(|(r, _)| *r)
                        .collect();
                    if !out.is_empty() {
                        error_cells += out.len();
                        outliers.push((c.name.clone(), out));
                    }
                }
            }
        }
    }

    // Exact duplicates.
    let mut duplicates = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if table.rows[i] == table.rows[j] {
                duplicates.push((i, j));
            }
        }
    }
    error_cells += duplicates.len();

    // FD checks.
    let mut fd_violations = Vec::new();
    for (det, dep) in fds {
        let (Some(di), Some(pi)) = (table.schema.index_of(det), table.schema.index_of(dep))
        else {
            continue;
        };
        let mut groups: Vec<(String, Vec<(String, usize)>)> = Vec::new();
        for row in &table.rows {
            if row[di].is_null() {
                continue;
            }
            let d = row[di].to_string();
            let p = row[pi].to_string();
            let group = match groups.iter_mut().find(|(k, _)| *k == d) {
                Some((_, g)) => g,
                None => {
                    groups.push((d.clone(), Vec::new()));
                    &mut groups.last_mut().expect("just pushed").1
                }
            };
            match group.iter_mut().find(|(v, _)| *v == p) {
                Some((_, c)) => *c += 1,
                None => group.push((p, 1)),
            }
        }
        let violations: Vec<FdViolation> = groups
            .into_iter()
            .filter(|(_, deps)| deps.len() > 1)
            .map(|(determinant, dependents)| {
                error_cells += dependents.iter().map(|(_, c)| c).sum::<usize>()
                    - dependents.iter().map(|(_, c)| c).max().copied().unwrap_or(0);
                FdViolation { determinant, dependents }
            })
            .collect();
        if !violations.is_empty() {
            fd_violations.push((det.to_string(), dep.to_string(), violations));
        }
    }

    let total_cells = (n * table.schema.len()).max(1);
    CleanReport {
        nulls,
        outliers,
        duplicates,
        fd_violations,
        error_rate: error_cells as f64 / total_cells as f64,
    }
}

/// Repair FD violations by majority vote within each determinant group
/// (the "LLM-assisted repair" would pick the semantically right value; the
/// majority heuristic is its deterministic stand-in and what crowdsourced
/// repair converges to).
pub fn repair_fd_violations(table: &Table, det: &str, dep: &str) -> Table {
    let mut out = table.clone();
    let (Some(di), Some(pi)) = (table.schema.index_of(det), table.schema.index_of(dep)) else {
        return out;
    };
    // Majority dependent per determinant.
    let mut majority: Vec<(String, Value)> = Vec::new();
    {
        let mut groups: Vec<(String, Vec<(Value, usize)>)> = Vec::new();
        for row in &table.rows {
            if row[di].is_null() {
                continue;
            }
            let d = row[di].to_string();
            let group = match groups.iter_mut().find(|(k, _)| *k == d) {
                Some((_, g)) => g,
                None => {
                    groups.push((d.clone(), Vec::new()));
                    &mut groups.last_mut().expect("just pushed").1
                }
            };
            match group.iter_mut().find(|(v, _)| *v == row[pi]) {
                Some((_, c)) => *c += 1,
                None => group.push((row[pi].clone(), 1)),
            }
        }
        for (d, deps) in groups {
            if let Some((v, _)) = deps.into_iter().max_by_key(|(_, c)| *c) {
                majority.push((d, v));
            }
        }
    }
    for row in &mut out.rows {
        if row[di].is_null() {
            continue;
        }
        let d = row[di].to_string();
        if let Some((_, v)) = majority.iter().find(|(k, _)| *k == d) {
            row[pi] = v.clone();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_sqlengine::{Column, Schema};

    /// Retail inventory with injected issues: NULL price, outlier price,
    /// duplicate row, and a zip→city FD violation.
    fn dirty() -> Table {
        let schema = Schema::new(vec![
            Column::new("sku", DataType::Int),
            Column::new("price", DataType::Float),
            Column::new("zip", DataType::Text),
            Column::new("city", DataType::Text),
        ]);
        let mut t = Table::new("inventory", schema);
        let rows: Vec<(i64, Option<f64>, &str, &str)> = vec![
            (1, Some(10.0), "100081", "beijing"),
            (2, Some(12.0), "100081", "beijing"),
            (3, None, "100081", "beijing"),
            (4, Some(11.0), "100081", "peking"), // FD violation
            (5, Some(9.5), "018989", "singapore"),
            (6, Some(10.5), "018989", "singapore"),
            (7, Some(9000.0), "018989", "singapore"), // outlier
            (8, Some(10.0), "018989", "singapore"),
            (9, Some(11.5), "018989", "singapore"),
            (10, Some(10.2), "018989", "singapore"),
        ];
        for (sku, price, zip, city) in rows {
            t.push_row(vec![
                Value::Int(sku),
                price.map(Value::Float).unwrap_or(Value::Null),
                Value::Str(zip.into()),
                Value::Str(city.into()),
            ])
            .unwrap();
        }
        // Duplicate of row 0.
        t.push_row(vec![
            Value::Int(1),
            Value::Float(10.0),
            Value::Str("100081".into()),
            Value::Str("beijing".into()),
        ])
        .unwrap();
        t
    }

    #[test]
    fn detects_all_issue_kinds() {
        let t = dirty();
        let rep = clean_report(&t, &[("zip", "city")]);
        assert_eq!(rep.nulls, vec![("price".to_string(), 1)]);
        assert_eq!(rep.outliers.len(), 1);
        assert_eq!(rep.outliers[0].0, "price");
        assert!(rep.outliers[0].1.contains(&6));
        assert_eq!(rep.duplicates, vec![(0, 10)]);
        assert_eq!(rep.fd_violations.len(), 1);
        let v = &rep.fd_violations[0].2[0];
        assert_eq!(v.determinant, "'100081'");
        assert_eq!(v.dependents.len(), 2);
        assert!(rep.error_rate > 0.0);
    }

    #[test]
    fn clean_table_reports_nothing() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let mut t = Table::new("clean", schema);
        for i in 0..10 {
            t.push_row(vec![Value::Int(i)]).unwrap();
        }
        let rep = clean_report(&t, &[]);
        assert!(rep.nulls.is_empty());
        assert!(rep.outliers.is_empty());
        assert!(rep.duplicates.is_empty());
        assert_eq!(rep.error_rate, 0.0);
    }

    #[test]
    fn fd_repair_applies_majority() {
        let t = dirty();
        let fixed = repair_fd_violations(&t, "zip", "city");
        let rep = clean_report(&fixed, &[("zip", "city")]);
        assert!(rep.fd_violations.is_empty());
        // The minority value was overwritten with the majority.
        let city_idx = fixed.schema.index_of("city").unwrap();
        assert_eq!(fixed.rows[3][city_idx], Value::Str("beijing".into()));
    }

    #[test]
    fn repair_on_missing_columns_is_noop() {
        let t = dirty();
        let same = repair_fd_violations(&t, "nope", "city");
        assert_eq!(same.rows, t.rows);
    }
}
