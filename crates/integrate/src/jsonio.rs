//! Hand-written JSON (de)serialization for the integration crate's
//! report types, replacing the former `serde` derives with explicit
//! [`ToJson`]/[`FromJson`] impls over `llmdm-rt`'s owned JSON tree.

use std::collections::BTreeMap;

use llmdm_rt::{FromJson, Json, JsonError, ToJson};

use crate::clean::FdViolation;
use crate::cta::ColumnType;
use crate::er::EntityRecord;
use crate::schema_match::ColumnMatch;
use crate::understand::ChunkPlan;

impl ToJson for EntityRecord {
    fn to_json(&self) -> Json {
        Json::obj([("id", self.id.to_json()), ("fields", self.fields.to_json())])
    }
}

impl FromJson for EntityRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(EntityRecord {
            id: v.field("id")?.as_u64()?,
            fields: BTreeMap::<String, String>::from_json(v.field("fields")?)?,
        })
    }
}

impl ToJson for ColumnMatch {
    fn to_json(&self) -> Json {
        Json::obj([
            ("left", self.left.to_json()),
            ("right", self.right.to_json()),
            ("score", self.score.to_json()),
        ])
    }
}

impl FromJson for ColumnMatch {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ColumnMatch {
            left: v.field("left")?.as_str()?.to_string(),
            right: v.field("right")?.as_str()?.to_string(),
            score: v.field("score")?.as_f64()?,
        })
    }
}

impl ToJson for FdViolation {
    fn to_json(&self) -> Json {
        Json::obj([
            ("determinant", self.determinant.to_json()),
            ("dependents", self.dependents.to_json()),
        ])
    }
}

impl FromJson for FdViolation {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FdViolation {
            determinant: v.field("determinant")?.as_str()?.to_string(),
            dependents: Vec::<(String, usize)>::from_json(v.field("dependents")?)?,
        })
    }
}

impl ToJson for ChunkPlan {
    fn to_json(&self) -> Json {
        Json::obj([
            ("chunks", self.chunks.to_json()),
            ("representatives", self.representatives.to_json()),
            ("drop_columns", self.drop_columns.to_json()),
            ("tokens_per_chunk", self.tokens_per_chunk.to_json()),
        ])
    }
}

impl FromJson for ChunkPlan {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ChunkPlan {
            chunks: Vec::<(usize, usize)>::from_json(v.field("chunks")?)?,
            representatives: Vec::<usize>::from_json(v.field("representatives")?)?,
            drop_columns: Vec::<String>::from_json(v.field("drop_columns")?)?,
            tokens_per_chunk: v.field("tokens_per_chunk")?.as_usize()?,
        })
    }
}

impl ToJson for ColumnType {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_string())
    }
}

impl FromJson for ColumnType {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ColumnType::from_label(v.as_str()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_record_roundtrip() {
        let mut fields = BTreeMap::new();
        fields.insert("name".to_string(), "acme retail group".to_string());
        fields.insert("city".to_string(), "springfield".to_string());
        let rec = EntityRecord { id: 7, fields };
        let back = EntityRecord::from_json_str(&rec.to_json_string()).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn column_match_roundtrip() {
        let m = ColumnMatch { left: "emp_name".into(), right: "employee".into(), score: 0.82 };
        let back = ColumnMatch::from_json_str(&m.to_json_string()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn fd_violation_roundtrip() {
        let v = FdViolation {
            determinant: "zip=12345".into(),
            dependents: vec![("springfield".into(), 3), ("sprngfld".into(), 1)],
        };
        let back = FdViolation::from_json_str(&v.to_json_string()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn chunk_plan_roundtrip() {
        let p = ChunkPlan {
            chunks: vec![(0, 8), (8, 16)],
            representatives: vec![0, 5, 9],
            drop_columns: vec!["notes".into()],
            tokens_per_chunk: 480,
        };
        let back = ChunkPlan::from_json_str(&p.to_json_string()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn column_type_roundtrips_through_label() {
        for ty in [ColumnType::Country, ColumnType::Sports, ColumnType::Unknown] {
            let back = ColumnType::from_json_str(&ty.to_json_string()).unwrap();
            assert_eq!(ty, back);
        }
    }

    #[test]
    fn bad_shape_is_an_error() {
        assert!(ColumnMatch::from_json_str("{\"left\": \"a\"}").is_err());
        assert!(EntityRecord::from_json_str("42").is_err());
    }
}
