//! Table understanding (§II-C2): serialization strategies, SQL→NL
//! statistical descriptions, and the big-table splitting/compression
//! advisor for PLM input budgets.

use llmdm_model::Tokenizer;
use llmdm_sqlengine::{Database, SqlError, Table, Value};

/// Row linearization (the "simple serialization of prior works"):
/// `col1: v1 | col2: v2 …` per row.
pub fn linearize_rows(table: &Table, max_rows: usize) -> String {
    let mut s = String::new();
    for row in table.rows.iter().take(max_rows) {
        let cells: Vec<String> = table
            .schema
            .columns()
            .iter()
            .zip(row)
            .map(|(c, v)| format!("{}: {v}", c.name))
            .collect();
        s.push_str(&cells.join(" | "));
        s.push('\n');
    }
    s
}

/// Column linearization: `col: v1, v2, v3 …` per column.
pub fn linearize_columns(table: &Table, max_values: usize) -> String {
    let mut s = String::new();
    for (i, c) in table.schema.columns().iter().enumerate() {
        let vals: Vec<String> =
            table.rows.iter().take(max_values).map(|r| r[i].to_string()).collect();
        s.push_str(&format!("{}: {}\n", c.name, vals.join(", ")));
    }
    s
}

/// Natural-language serialization — the LLM-enhanced path: each row
/// becomes a sentence capturing the table's semantics ("transforming each
/// row … into a natural language description").
pub fn serialize_natural(table: &Table, max_rows: usize) -> String {
    let mut s = String::new();
    let cols = table.schema.columns();
    for row in table.rows.iter().take(max_rows) {
        let mut phrases = Vec::new();
        for (c, v) in cols.iter().zip(row) {
            if v.is_null() {
                continue;
            }
            phrases.push(format!("its {} is {v}", c.name));
        }
        if let Some(first) = phrases.first().cloned() {
            let head = first.replacen("its ", "", 1);
            let rest = &phrases[1..];
            if rest.is_empty() {
                s.push_str(&format!("There is a {} record whose {head}.\n", table.name));
            } else {
                s.push_str(&format!(
                    "There is a {} record whose {head}, and {}.\n",
                    table.name,
                    rest.join(", and ")
                ));
            }
        }
    }
    s
}

/// SQL→NL statistical description (the paper's `SELECT AVG(SALARY) FROM
/// EMPLOYEE` → "the average salary of all the employees …" example):
/// executes the query for real and templates the sentence from the
/// aggregate structure.
pub fn describe_sql(db: &Database, sql: &str) -> Result<String, SqlError> {
    use llmdm_sqlengine::ast::{AggFunc, Expr, SelectItem, Statement};
    let stmt = llmdm_sqlengine::parse_statement(sql)?;
    let Statement::Select(select) = &stmt else {
        return Err(SqlError::Exec("describe_sql expects a SELECT".into()));
    };
    let rs = llmdm_sqlengine::exec::execute_select(db, select)?;
    let table = select
        .from
        .first()
        .map(|f| f.table.clone())
        .unwrap_or_else(|| "result".to_string());

    let mut sentences = Vec::new();
    for (i, item) in select.projections.iter().enumerate() {
        let SelectItem::Expr { expr: Expr::Aggregate { func, arg, .. }, .. } = item else {
            continue;
        };
        let value = rs
            .rows
            .first()
            .and_then(|r| r.get(i))
            .cloned()
            .unwrap_or(Value::Null);
        let what = match arg {
            None => "rows".to_string(),
            Some(e) => match e.as_ref() {
                Expr::Column { name, .. } => name.clone(),
                _ => "values".to_string(),
            },
        };
        let sentence = match func {
            AggFunc::Avg => {
                format!("the average {what} of all the {table} records is {value}")
            }
            AggFunc::Sum => format!("the total {what} across the {table} table is {value}"),
            AggFunc::Count => format!("the {table} table contains {value} matching rows"),
            AggFunc::Min => format!("the smallest {what} in the {table} table is {value}"),
            AggFunc::Max => format!("the largest {what} in the {table} table is {value}"),
        };
        sentences.push(sentence);
    }
    if sentences.is_empty() {
        return Err(SqlError::Exec("query has no aggregate projections to describe".into()));
    }
    let mut out = sentences.join("; ");
    out.push('.');
    // Capitalize.
    let mut chars = out.chars();
    Ok(match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => out,
    })
}

/// A plan for feeding a big table to a context-limited PLM.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkPlan {
    /// Row ranges `(start, end)` per chunk.
    pub chunks: Vec<(usize, usize)>,
    /// Representative row indexes (distinct-value coverage sample).
    pub representatives: Vec<usize>,
    /// Columns recommended for dropping (wide text columns) when the
    /// budget is still exceeded.
    pub drop_columns: Vec<String>,
    /// Estimated tokens per chunk after the plan.
    pub tokens_per_chunk: usize,
}

/// Split a table into chunks that fit `token_budget` when row-linearized,
/// pick representative rows covering the categorical value space, and
/// recommend wide text columns to drop (§II-C2: "LLMs can assist in
/// splitting big tables … recommend specific compression methods").
pub fn chunk_table(table: &Table, token_budget: usize) -> ChunkPlan {
    let tokenizer = Tokenizer::new();
    let n = table.rows.len();
    if n == 0 {
        return ChunkPlan {
            chunks: Vec::new(),
            representatives: Vec::new(),
            drop_columns: Vec::new(),
            tokens_per_chunk: 0,
        };
    }
    // Tokens per row, measured on a sample.
    let sample_rows = n.min(16);
    let sample = {
        let mut t = Table::new(&table.name, table.schema.clone());
        for r in table.rows.iter().take(sample_rows) {
            t.push_row(r.clone()).expect("same schema");
        }
        t
    };
    let per_row =
        (tokenizer.count(&linearize_rows(&sample, sample_rows)) / sample_rows).max(1);
    let rows_per_chunk = (token_budget / per_row).max(1);
    let chunks: Vec<(usize, usize)> =
        (0..n).step_by(rows_per_chunk).map(|s| (s, (s + rows_per_chunk).min(n))).collect();

    // Representatives: greedy distinct-value coverage over text columns.
    let text_cols: Vec<usize> = table
        .schema
        .columns()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.dtype == llmdm_sqlengine::DataType::Text)
        .map(|(i, _)| i)
        .collect();
    let mut covered: Vec<String> = Vec::new();
    let mut representatives = Vec::new();
    for (r, row) in table.rows.iter().enumerate() {
        let mut novel = false;
        for &c in &text_cols {
            let key = format!("{c}:{}", row[c]);
            if !covered.contains(&key) {
                covered.push(key);
                novel = true;
            }
        }
        if novel {
            representatives.push(r);
        }
        if representatives.len() >= 32 {
            break;
        }
    }
    if representatives.is_empty() {
        representatives.push(0);
    }

    // Drop recommendation: text columns whose average rendered width
    // exceeds 30 chars (documents, long descriptions).
    let drop_columns: Vec<String> = text_cols
        .iter()
        .filter(|&&c| {
            let total: usize =
                table.rows.iter().map(|r| r[c].to_string().len()).sum();
            total / n > 30
        })
        .map(|&c| table.schema.columns()[c].name.clone())
        .collect();

    ChunkPlan {
        chunks,
        representatives,
        drop_columns,
        tokens_per_chunk: rows_per_chunk * per_row,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_sqlengine::{Column, DataType, Schema};

    fn employee_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE employee (name TEXT, salary INT, dept TEXT)").unwrap();
        db.execute(
            "INSERT INTO employee VALUES ('a', 400, 'eng'), ('b', 500, 'eng'), ('c', 600, 'ops')",
        )
        .unwrap();
        db
    }

    #[test]
    fn describes_the_paper_example() {
        let db = employee_db();
        let s = describe_sql(&db, "SELECT AVG(salary) FROM employee").unwrap();
        assert_eq!(s, "The average salary of all the employee records is 500.0.");
    }

    #[test]
    fn describes_multiple_aggregates() {
        let db = employee_db();
        let s =
            describe_sql(&db, "SELECT COUNT(*), MAX(salary) FROM employee WHERE dept = 'eng'")
                .unwrap();
        assert!(s.contains("contains 2 matching rows"));
        assert!(s.contains("largest salary"));
    }

    #[test]
    fn non_aggregate_query_rejected() {
        let db = employee_db();
        assert!(describe_sql(&db, "SELECT name FROM employee").is_err());
    }

    fn wide_table(rows: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("kind", DataType::Text),
            Column::new("notes", DataType::Text),
        ]);
        let mut t = Table::new("log", schema);
        for i in 0..rows as i64 {
            t.push_row(vec![
                Value::Int(i),
                Value::Str(if i % 3 == 0 { "alpha" } else { "beta" }.into()),
                Value::Str("a very long free text note field that repeats many words over and over".into()),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn serializations_differ_and_are_nonempty() {
        let t = wide_table(5);
        let rows = linearize_rows(&t, 5);
        let cols = linearize_columns(&t, 5);
        let nat = serialize_natural(&t, 5);
        assert!(rows.contains("id: 0"));
        assert!(cols.starts_with("id: 0, 1"));
        assert!(nat.contains("There is a log record"));
        assert_ne!(rows, cols);
    }

    #[test]
    fn chunks_respect_budget() {
        let t = wide_table(100);
        let plan = chunk_table(&t, 400);
        assert!(plan.chunks.len() > 1);
        assert!(plan.tokens_per_chunk <= 400 + 100, "est {}", plan.tokens_per_chunk);
        // Chunks tile the table.
        assert_eq!(plan.chunks.first().unwrap().0, 0);
        assert_eq!(plan.chunks.last().unwrap().1, 100);
        let covered: usize = plan.chunks.iter().map(|(s, e)| e - s).sum();
        assert_eq!(covered, 100);
    }

    #[test]
    fn representatives_cover_categories() {
        let t = wide_table(30);
        let plan = chunk_table(&t, 1000);
        let kind_idx = t.schema.index_of("kind").unwrap();
        let kinds: Vec<String> = plan
            .representatives
            .iter()
            .map(|&r| t.rows[r][kind_idx].to_string())
            .collect();
        assert!(kinds.contains(&"'alpha'".to_string()));
        assert!(kinds.contains(&"'beta'".to_string()));
    }

    #[test]
    fn wide_text_column_recommended_for_drop() {
        let t = wide_table(10);
        let plan = chunk_table(&t, 1000);
        assert_eq!(plan.drop_columns, vec!["notes".to_string()]);
    }

    #[test]
    fn empty_table_plan() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let t = Table::new("empty", schema);
        let plan = chunk_table(&t, 100);
        assert!(plan.chunks.is_empty());
    }
}
