//! Column type annotation (§II-C1) — the paper's worked few-shot example:
//! "Given the following column types: country, person, date, movie,
//! sports. You need to predict the column type according to the column
//! values. (1) USA||UK||France, this column type is country. …
//! Basketball||Badminton||Table Tennis, this column type is ___."

use std::sync::Arc;

use llmdm_model::{CompletionRequest, LanguageModel, PromptEnvelope, SimLlm};

/// The semantic column types of the paper's example (plus common extras).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Countries.
    Country,
    /// People's names.
    Person,
    /// Calendar dates.
    Date,
    /// Film titles.
    Movie,
    /// Sports.
    Sports,
    /// Cities.
    City,
    /// Calendar years.
    Year,
    /// Email addresses.
    Email,
    /// Phone numbers.
    Phone,
    /// No rule matched.
    Unknown,
}

impl ColumnType {
    /// The label text used in prompts.
    pub fn label(&self) -> &'static str {
        match self {
            ColumnType::Country => "country",
            ColumnType::Person => "person",
            ColumnType::Date => "date",
            ColumnType::Movie => "movie",
            ColumnType::Sports => "sports",
            ColumnType::City => "city",
            ColumnType::Year => "year",
            ColumnType::Email => "email",
            ColumnType::Phone => "phone",
            ColumnType::Unknown => "unknown",
        }
    }

    /// Parse a label.
    pub fn from_label(s: &str) -> ColumnType {
        match s.trim().to_lowercase().as_str() {
            "country" => ColumnType::Country,
            "person" => ColumnType::Person,
            "date" => ColumnType::Date,
            "movie" => ColumnType::Movie,
            "sports" => ColumnType::Sports,
            "city" => ColumnType::City,
            "year" => ColumnType::Year,
            "email" => ColumnType::Email,
            "phone" => ColumnType::Phone,
            _ => ColumnType::Unknown,
        }
    }

    /// All concrete types (excludes Unknown).
    pub const ALL: [ColumnType; 9] = [
        ColumnType::Country,
        ColumnType::Person,
        ColumnType::Date,
        ColumnType::Movie,
        ColumnType::Sports,
        ColumnType::City,
        ColumnType::Year,
        ColumnType::Email,
        ColumnType::Phone,
    ];
}

const COUNTRIES: &[&str] = &[
    "usa", "uk", "france", "china", "singapore", "germany", "japan", "brazil", "india", "canada",
];
const SPORTS: &[&str] = &[
    "basketball", "badminton", "table tennis", "football", "tennis", "swimming", "volleyball",
];
const CITIES: &[&str] =
    &["beijing", "singapore", "london", "paris", "new york", "tokyo", "berlin"];

/// Rule-based annotation: lexicons and shape patterns. The non-LLM
/// baseline the paper's PLM-era methods correspond to.
pub fn rule_annotate(values: &[&str]) -> ColumnType {
    if values.is_empty() {
        return ColumnType::Unknown;
    }
    let lower: Vec<String> = values.iter().map(|v| v.trim().to_lowercase()).collect();
    let frac = |pred: &dyn Fn(&str) -> bool| -> f64 {
        lower.iter().filter(|v| pred(v)).count() as f64 / lower.len() as f64
    };
    type Check<'a> = (ColumnType, &'a dyn Fn(&str) -> bool);
    let checks: [Check<'_>; 7] = [
        (ColumnType::Email, &|v: &str| v.contains('@') && v.contains('.')),
        (ColumnType::Phone, &|v: &str| {
            let digits = v.chars().filter(|c| c.is_ascii_digit()).count();
            digits >= 7 && v.chars().all(|c| c.is_ascii_digit() || "-() +".contains(c))
        }),
        (ColumnType::Year, &|v: &str| {
            v.len() == 4 && v.chars().all(|c| c.is_ascii_digit()) && v.starts_with(['1', '2'])
        }),
        (ColumnType::Date, &|v: &str| looks_like_date(v)),
        (ColumnType::Country, &|v: &str| COUNTRIES.contains(&v)),
        (ColumnType::Sports, &|v: &str| SPORTS.contains(&v)),
        (ColumnType::City, &|v: &str| CITIES.contains(&v)),
    ];
    for (ty, pred) in checks {
        if frac(pred) >= 0.6 {
            return ty;
        }
    }
    // Person heuristic: 2-3 capitalized alphabetic words.
    let person = values
        .iter()
        .filter(|v| {
            let words: Vec<&str> = v.split_whitespace().collect();
            (2..=3).contains(&words.len())
                && words.iter().all(|w| {
                    w.chars().next().is_some_and(|c| c.is_uppercase())
                        && w.chars().all(|c| c.is_alphabetic() || c == '.')
                })
        })
        .count() as f64
        / values.len() as f64;
    if person >= 0.6 {
        return ColumnType::Person;
    }
    ColumnType::Unknown
}

fn looks_like_date(v: &str) -> bool {
    let parts: Vec<&str> = v.split(['/', '-']).collect();
    parts.len() == 3 && parts.iter().all(|p| p.chars().all(|c| c.is_ascii_digit()))
}

/// Few-shot LLM annotation using the paper's prompt shape; the gold label
/// rides in the harness header and the model's capability curve decides
/// whether ICL lands it (DESIGN.md §2's oracle convention).
pub fn annotate_with_llm(
    model: &Arc<SimLlm>,
    values: &[&str],
    gold: ColumnType,
) -> Result<ColumnType, llmdm_model::ModelError> {
    let candidates: Vec<&str> = ColumnType::ALL.iter().map(|t| t.label()).collect();
    let mut body = format!(
        "Given the following column types: {}. You need to predict the column type \
         according to the column values.\n",
        candidates.join(", ")
    );
    body.push_str("Example: USA||UK||France, this column type is country.\n");
    body.push_str("Example: Michael Jackson||Beckham||Michael Jordan, this column type is person.\n");
    body.push_str(&format!("{}, this column type is __.\n", values.join("||")));
    // Difficulty: ambiguous value sets (rule baseline unsure) are harder.
    let difficulty = if rule_annotate(values) == gold { 0.08 } else { 0.35 };
    let mut b = PromptEnvelope::builder("oracle")
        .header("gold", gold.label())
        .header("difficulty", difficulty)
        .header("examples", 2);
    for alt in ColumnType::ALL.iter().filter(|t| **t != gold).take(3) {
        b = b.header("alt", alt.label());
    }
    let completion = model.complete(&CompletionRequest::new(b.body(body).build()))?;
    Ok(ColumnType::from_label(&completion.text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_model::ModelZoo;

    #[test]
    fn rule_annotation_on_paper_examples() {
        assert_eq!(rule_annotate(&["USA", "UK", "France"]), ColumnType::Country);
        assert_eq!(
            rule_annotate(&["Basketball", "Badminton", "Table Tennis"]),
            ColumnType::Sports
        );
        assert_eq!(
            rule_annotate(&["Michael Jackson", "David Beckham", "Michael Jordan"]),
            ColumnType::Person
        );
    }

    #[test]
    fn rule_annotation_shapes() {
        assert_eq!(rule_annotate(&["2014", "2015", "1999"]), ColumnType::Year);
        assert_eq!(rule_annotate(&["8/14/2023", "1-02-2022"]), ColumnType::Date);
        assert_eq!(rule_annotate(&["a@b.com", "x@y.org"]), ColumnType::Email);
        assert_eq!(rule_annotate(&["555-123-4567", "555 987 6543"]), ColumnType::Phone);
        assert_eq!(rule_annotate(&["Beijing", "London", "Paris"]), ColumnType::City);
    }

    #[test]
    fn mixed_column_is_unknown() {
        assert_eq!(rule_annotate(&["USA", "Basketball", "2014"]), ColumnType::Unknown);
        assert_eq!(rule_annotate(&[]), ColumnType::Unknown);
    }

    #[test]
    fn llm_annotation_matches_gold_with_large_tier() {
        let zoo = ModelZoo::standard(5);
        let model = zoo.large();
        let mut correct = 0;
        let cases: [(&[&str], ColumnType); 4] = [
            (&["USA", "UK", "France"], ColumnType::Country),
            (&["Basketball", "Badminton"], ColumnType::Sports),
            (&["2014", "2015"], ColumnType::Year),
            (&["a@b.com", "c@d.org"], ColumnType::Email),
        ];
        for (values, gold) in cases {
            if annotate_with_llm(&model, values, gold).unwrap() == gold {
                correct += 1;
            }
        }
        assert!(correct >= 3, "correct = {correct}");
    }

    #[test]
    fn label_roundtrip() {
        for t in ColumnType::ALL {
            assert_eq!(ColumnType::from_label(t.label()), t);
        }
        assert_eq!(ColumnType::from_label("gibberish"), ColumnType::Unknown);
    }
}
