//! # llmdm-integrate — LLM for data integration (§II-C)
//!
//! The paper calls data integration "the core of the data management
//! community" and lists the tasks this crate implements:
//!
//! * [`er`] — **entity resolution**: blocking + matching over dirty
//!   records, with both a similarity matcher and an LLM matcher built on
//!   the paper's literal prompt ("Are the following entity descriptions
//!   the same real-world entity?"), evaluated by precision/recall/F1 on a
//!   seeded duplicate-injection workload;
//! * [`schema_match`] — **schema matching**: column correspondence across
//!   differently-named schemas from name similarity + value overlap +
//!   embeddings;
//! * [`cta`] — **column type annotation**: the paper's few-shot example
//!   ("Given the following column types: country, person, date, movie,
//!   sports … predict the column type according to the column values"),
//!   with a rule-based baseline and the simulated-LLM ICL path;
//! * [`clean`] — **data cleaning**: NULL, outlier, duplicate, and
//!   functional-dependency violation detection with majority-repair;
//! * [`understand`] — **table understanding** (§II-C2): row/column
//!   linearization vs natural-language serialization, SQL→NL statistical
//!   descriptions (the paper's `SELECT AVG(salary)` example), and the
//!   big-table splitting/compression advisor for PLM input budgets.

#![warn(missing_docs)]

pub mod clean;
pub mod cta;
pub mod er;
pub mod jsonio;
pub mod schema_match;
pub mod understand;

pub use clean::{clean_report, repair_fd_violations, CleanReport, FdViolation};
pub use cta::{annotate_with_llm, rule_annotate, ColumnType};
pub use er::{block, EntityRecord, ErDataset, ErReport, LlmMatcher, Matcher, SimilarityMatcher};
pub use schema_match::{match_schemas, ColumnMatch};
pub use understand::{
    chunk_table, describe_sql, linearize_columns, linearize_rows, serialize_natural,
    ChunkPlan,
};
