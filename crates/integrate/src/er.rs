//! Entity resolution: blocking, matching, evaluation.

use std::collections::BTreeMap;
use std::sync::Arc;

use llmdm_model::embed::cosine;
use llmdm_model::{CompletionRequest, Embedder, LanguageModel, PromptEnvelope, SimLlm};
use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::{Rng, SeedableRng};

/// An entity record: ordered field → value map plus the source row id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityRecord {
    /// Record id.
    pub id: u64,
    /// Field values (name, address, phone, …).
    pub fields: BTreeMap<String, String>,
}

impl EntityRecord {
    /// One-line textual description for prompts and embeddings.
    pub fn description(&self) -> String {
        self.fields
            .iter()
            .map(|(k, v)| format!("{k}: {v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A labelled ER dataset: records and the true duplicate pairs.
#[derive(Debug, Clone)]
pub struct ErDataset {
    /// All records (originals + injected duplicates).
    pub records: Vec<EntityRecord>,
    /// Ground-truth matching pairs (ids, ordered).
    pub gold_pairs: Vec<(u64, u64)>,
}

const NAMES: &[&str] = &[
    "acme retail group", "bluewater trading", "cedar grove market", "delta fresh foods",
    "eastgate hardware", "fernwood books", "golden lotus tea", "harbor lights cafe",
    "ivory peak outfitters", "juniper home goods", "kestrel electronics", "lakeshore garden",
];
const CITIES: &[&str] = &["springfield", "rivertown", "lakewood", "hillcrest", "ashford"];
const SUFFIXES: &[&str] =
    &["north", "south", "plaza", "outlet", "express", "annex", "depot", "corner"];

impl ErDataset {
    /// Generate `n` base businesses, injecting a perturbed duplicate for
    /// `dup_rate` of them (typos, abbreviations, reformatted phones —
    /// the real-world noise §II-C motivates with "various inputs from
    /// different individuals").
    pub fn generate(n: usize, dup_rate: f64, seed: u64) -> ErDataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut records = Vec::new();
        let mut gold_pairs = Vec::new();
        let mut next_id = 0u64;
        for i in 0..n {
            let name = if i < NAMES.len() {
                NAMES[i % NAMES.len()].to_string()
            } else {
                format!("{} {}", NAMES[i % NAMES.len()], SUFFIXES[i % SUFFIXES.len()])
            };
            let city = CITIES[rng.gen_range(0..CITIES.len())].to_string();
            let phone = format!(
                "{:03}-{:03}-{:04}",
                rng.gen_range(200..999),
                rng.gen_range(100..999),
                rng.gen_range(0..9999)
            );
            let mut fields = BTreeMap::new();
            fields.insert("name".to_string(), name.clone());
            fields.insert("city".to_string(), city.clone());
            fields.insert("phone".to_string(), phone.clone());
            let base_id = next_id;
            next_id += 1;
            records.push(EntityRecord { id: base_id, fields });

            if rng.gen_bool(dup_rate) {
                let mut fields = BTreeMap::new();
                fields.insert("name".to_string(), perturb_name(&name, &mut rng));
                fields.insert("city".to_string(), city);
                fields.insert("phone".to_string(), perturb_phone(&phone, &mut rng));
                let dup_id = next_id;
                next_id += 1;
                records.push(EntityRecord { id: dup_id, fields });
                gold_pairs.push((base_id, dup_id));
            }
        }
        ErDataset { records, gold_pairs }
    }

    /// Whether a pair is a true match.
    pub fn is_gold(&self, a: u64, b: u64) -> bool {
        let p = if a < b { (a, b) } else { (b, a) };
        self.gold_pairs.contains(&p)
    }
}

fn perturb_name(name: &str, rng: &mut SmallRng) -> String {
    let mut words: Vec<String> = name.split_whitespace().map(str::to_string).collect();
    match rng.gen_range(0..3) {
        0 => {
            // Abbreviate a word to its first letter + '.'.
            if let Some(w) = words.first_mut() {
                let c = w.chars().next().unwrap_or('x');
                *w = format!("{c}.");
            }
        }
        1 => {
            // Typo: drop a character from the longest word.
            if let Some(w) = words.iter_mut().max_by_key(|w| w.len()) {
                if w.len() > 3 {
                    let drop = rng.gen_range(1..w.len() - 1);
                    *w = w
                        .chars()
                        .enumerate()
                        .filter(|(i, _)| *i != drop)
                        .map(|(_, c)| c)
                        .collect();
                }
            }
        }
        _ => {
            // Suffix noise: append "inc".
            words.push("inc".to_string());
        }
    }
    words.join(" ")
}

fn perturb_phone(phone: &str, rng: &mut SmallRng) -> String {
    if rng.gen_bool(0.5) {
        phone.replace('-', " ")
    } else {
        phone.replace('-', "")
    }
}

/// Token-prefix blocking: records sharing a block key become candidate
/// pairs. Blocking keys: first 4 letters of each name token.
pub fn block(records: &[EntityRecord]) -> Vec<(u64, u64)> {
    let mut buckets: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for r in records {
        if let Some(name) = r.fields.get("name") {
            for tok in name.split_whitespace() {
                let key: String = tok.chars().take(4).collect::<String>().to_lowercase();
                if key.len() >= 3 {
                    buckets.entry(key).or_default().push(r.id);
                }
            }
        }
    }
    let mut pairs: Vec<(u64, u64)> = Vec::new();
    for ids in buckets.values() {
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                let p = if a < b { (a, b) } else { (b, a) };
                if !pairs.contains(&p) {
                    pairs.push(p);
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

/// A pairwise matcher.
pub trait Matcher {
    /// Decide whether two records refer to the same real-world entity.
    fn matches(&self, a: &EntityRecord, b: &EntityRecord) -> bool;
}

/// Embedding-cosine + token-Jaccard similarity matcher.
#[derive(Debug)]
pub struct SimilarityMatcher {
    embedder: Embedder,
    /// Decision threshold on the blended score.
    pub threshold: f64,
}

impl SimilarityMatcher {
    /// Create a matcher.
    pub fn new(seed: u64, threshold: f64) -> Self {
        SimilarityMatcher { embedder: Embedder::standard(seed), threshold }
    }

    /// Blended similarity in `[0, 1]`.
    pub fn score(&self, a: &EntityRecord, b: &EntityRecord) -> f64 {
        let (da, db) = (a.description(), b.description());
        let emb = match (self.embedder.embed(&da), self.embedder.embed(&db)) {
            (Ok(x), Ok(y)) => cosine(&x, &y) as f64,
            _ => 0.0,
        };
        let jac = jaccard(&da, &db);
        0.6 * emb + 0.4 * jac
    }
}

fn jaccard(a: &str, b: &str) -> f64 {
    let norm = |s: &str| -> Vec<String> {
        let mut v: Vec<String> = s
            .to_lowercase()
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(str::to_string)
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let (ta, tb) = (norm(a), norm(b));
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.iter().filter(|t| tb.contains(t)).count();
    let union = ta.len() + tb.len() - inter;
    inter as f64 / union.max(1) as f64
}

impl Matcher for SimilarityMatcher {
    fn matches(&self, a: &EntityRecord, b: &EntityRecord) -> bool {
        self.score(a, b) >= self.threshold
    }
}

/// The LLM matcher: asks the model the paper's literal ER question. The
/// harness supplies the gold verdict and an ambiguity-based difficulty, so
/// tier quality governs ER accuracy (DESIGN.md §2's oracle convention).
pub struct LlmMatcher {
    model: Arc<SimLlm>,
    scorer: SimilarityMatcher,
    dataset_gold: Box<dyn Fn(u64, u64) -> bool + Send + Sync>,
}

impl std::fmt::Debug for LlmMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LlmMatcher").finish()
    }
}

impl LlmMatcher {
    /// Create a matcher over `model` with the labelled dataset's gold
    /// oracle.
    pub fn new(model: Arc<SimLlm>, seed: u64, dataset: &ErDataset) -> Self {
        let pairs = dataset.gold_pairs.clone();
        LlmMatcher {
            model,
            scorer: SimilarityMatcher::new(seed, 0.5),
            dataset_gold: Box::new(move |a, b| {
                let p = if a < b { (a, b) } else { (b, a) };
                pairs.contains(&p)
            }),
        }
    }
}

impl Matcher for LlmMatcher {
    fn matches(&self, a: &EntityRecord, b: &EntityRecord) -> bool {
        let gold = (self.dataset_gold)(a.id, b.id);
        // Cheap pre-gate, as production ER pipelines do: only ambiguous
        // pairs are worth an LLM call; clear non-matches and near-identical
        // records are decided locally (saving cost and avoiding the
        // model's noise floor on easy negatives).
        let sim = self.scorer.score(a, b);
        if sim < 0.45 {
            return false;
        }
        if sim > 0.92 {
            return true;
        }
        let difficulty = 0.05 + 0.10 * (1.0 - 2.0 * (sim - 0.5).abs()).clamp(0.0, 1.0);
        let prompt = PromptEnvelope::builder("oracle")
            .header("gold", if gold { "yes" } else { "no" })
            .header("difficulty", difficulty)
            .header("alt", if gold { "no" } else { "yes" })
            .body(format!(
                "Are the following entity descriptions the same real-world entity?\n\
                 Entity A: {}\nEntity B: {}\nAnswer yes or no.",
                a.description(),
                b.description()
            ))
            .build();
        match self.model.complete(&CompletionRequest::new(prompt)) {
            Ok(c) => c.text.trim() == "yes",
            Err(_) => false,
        }
    }
}

/// Precision/recall/F1 of a matcher over blocked candidate pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErReport {
    /// Precision.
    pub precision: f64,
    /// Recall (over all gold pairs, so blocking misses count against it).
    pub recall: f64,
    /// F1.
    pub f1: f64,
    /// Candidate pairs examined.
    pub candidates: usize,
}

/// Run blocking + matching and score against gold.
pub fn evaluate(dataset: &ErDataset, matcher: &dyn Matcher) -> ErReport {
    let by_id: BTreeMap<u64, &EntityRecord> =
        dataset.records.iter().map(|r| (r.id, r)).collect();
    let candidates = block(&dataset.records);
    let mut tp = 0usize;
    let mut fp = 0usize;
    for &(a, b) in &candidates {
        let (ra, rb) = (by_id[&a], by_id[&b]);
        if matcher.matches(ra, rb) {
            if dataset.is_gold(a, b) {
                tp += 1;
            } else {
                fp += 1;
            }
        }
    }
    let fn_ = dataset.gold_pairs.len().saturating_sub(tp);
    let precision = if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 1.0 } else { tp as f64 / (tp + fn_) as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    ErReport { precision, recall, f1, candidates: candidates.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_model::ModelZoo;

    #[test]
    fn dataset_injects_duplicates() {
        let d = ErDataset::generate(20, 0.5, 1);
        assert!(d.gold_pairs.len() >= 5);
        assert!(d.records.len() > 20);
        // Duplicates differ textually from their originals.
        let (a, b) = d.gold_pairs[0];
        let ra = d.records.iter().find(|r| r.id == a).unwrap();
        let rb = d.records.iter().find(|r| r.id == b).unwrap();
        assert_ne!(ra.description(), rb.description());
    }

    #[test]
    fn blocking_keeps_gold_pairs() {
        let d = ErDataset::generate(24, 0.5, 3);
        let candidates = block(&d.records);
        for &(a, b) in &d.gold_pairs {
            assert!(
                candidates.contains(&(a, b)),
                "blocking lost gold pair {a},{b}"
            );
        }
        // And prunes the quadratic space.
        let n = d.records.len();
        assert!(candidates.len() < n * (n - 1) / 2);
    }

    #[test]
    fn similarity_matcher_scores_duplicates_higher() {
        let d = ErDataset::generate(24, 0.5, 5);
        let m = SimilarityMatcher::new(5, 0.75);
        let by_id: BTreeMap<u64, &EntityRecord> = d.records.iter().map(|r| (r.id, r)).collect();
        let (a, b) = d.gold_pairs[0];
        let dup_score = m.score(by_id[&a], by_id[&b]);
        // Compare with an unrelated pair.
        let unrelated = d
            .records
            .iter()
            .find(|r| r.id != a && r.id != b && !d.is_gold(r.id, a))
            .unwrap();
        let other_score = m.score(by_id[&a], unrelated);
        assert!(dup_score > other_score + 0.1, "{dup_score} vs {other_score}");
    }

    #[test]
    fn similarity_matcher_f1_is_decent() {
        let d = ErDataset::generate(30, 0.5, 8);
        let m = SimilarityMatcher::new(8, 0.72);
        let rep = evaluate(&d, &m);
        assert!(rep.f1 > 0.7, "f1 {}", rep.f1);
    }

    #[test]
    fn llm_matcher_beats_similarity_with_large_tier() {
        let d = ErDataset::generate(30, 0.5, 9);
        let zoo = ModelZoo::standard(9);
        let llm = LlmMatcher::new(zoo.large(), 9, &d);
        let rep_llm = evaluate(&d, &llm);
        let sim = SimilarityMatcher::new(9, 0.72);
        let rep_sim = evaluate(&d, &sim);
        assert!(
            rep_llm.f1 >= rep_sim.f1 - 0.02,
            "llm f1 {} vs sim f1 {}",
            rep_llm.f1,
            rep_sim.f1
        );
        assert!(rep_llm.f1 > 0.85, "llm f1 {}", rep_llm.f1);
    }

    #[test]
    fn small_tier_is_noticeably_worse() {
        let d = ErDataset::generate(30, 0.5, 11);
        let zoo = ModelZoo::standard(11);
        let large = evaluate(&d, &LlmMatcher::new(zoo.large(), 11, &d));
        let small = evaluate(&d, &LlmMatcher::new(zoo.small(), 11, &d));
        assert!(small.f1 < large.f1, "small {} vs large {}", small.f1, large.f1);
    }

    #[test]
    fn jaccard_props() {
        assert_eq!(jaccard("a b c", "a b c"), 1.0);
        assert_eq!(jaccard("a b", "c d"), 0.0);
        assert!(jaccard("acme retail", "acme retail inc") > 0.6);
    }
}

