#!/usr/bin/env bash
# Tier-1 verification: the workspace must build and test entirely
# offline (the hermetic-build invariant; see tests/hermetic.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== offline release build"
cargo build --release --offline

echo "== offline test suite"
cargo test -q --offline

echo "verify: OK"
