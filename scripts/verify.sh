#!/usr/bin/env bash
# Tier-1 verification: the workspace must build and test entirely
# offline (the hermetic-build invariant; see tests/hermetic.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== offline release build"
cargo build --release --offline

echo "== offline test suite"
cargo test -q --offline

echo "== trace example (self-validating: spans from >=6 crates, JSON re-parses)"
TRACE_DIR="$(mktemp -d)"
LLMDM_BENCH_DIR="$TRACE_DIR" cargo run -q --release --offline -p llmdm --example trace_pipeline >/dev/null
test -s "$TRACE_DIR/TRACE_pipeline.json" || { echo "trace_pipeline emitted no TRACE_pipeline.json"; exit 1; }
rm -rf "$TRACE_DIR"

echo "== obs overhead bench (pins the disabled-recorder cost + <5% tokenizer overhead)"
BENCH_DIR="$(mktemp -d)"
LLMDM_BENCH_FAST=1 LLMDM_BENCH_DIR="$BENCH_DIR" cargo bench --offline -p llmdm-bench --bench obs_overhead
rm -rf "$BENCH_DIR"

echo "== chaos pipeline (self-validating: quiet/lossy/outage schedules, retry caps, dollar reconciliation, determinism)"
cargo run -q --release --offline -p llmdm --example chaos_pipeline >/dev/null

echo "== resil overhead bench (pins the no-fault fast path <5% over a bare completion)"
BENCH_DIR="$(mktemp -d)"
LLMDM_BENCH_FAST=1 LLMDM_BENCH_DIR="$BENCH_DIR" cargo bench --offline -p llmdm-bench --bench resil_overhead
rm -rf "$BENCH_DIR"

echo "== serving pipeline (self-validating: admission, class-pure batching, 1-worker byte-identity, sharded-cache + dollar reconciliation)"
cargo run -q --release --offline -p llmdm --example serving_pipeline >/dev/null

echo "== multi-tenant cluster example (self-validating: rendezvous routing, cluster-wide quota reconciliation, cross-node cache invariant, streaming identical at 1/2/8 workers, outage shedding)"
cargo run -q --release --offline -p llmdm --example multi_tenant_cluster >/dev/null

echo "== serve throughput bench (pins >=3x ops/sec at 8 workers vs 1 + concurrent dollar reconciliation; saturation sweep vs offered load and tenant mix)"
BENCH_DIR="$(mktemp -d)"
LLMDM_BENCH_FAST=1 LLMDM_BENCH_DIR="$BENCH_DIR" cargo bench --offline -p llmdm-bench --bench serve_throughput
test -s "$BENCH_DIR/BENCH_serve.json" || { echo "serve_throughput emitted no BENCH_serve.json"; exit 1; }
rm -rf "$BENCH_DIR"

echo "== request tracing example (self-validating: cross-thread flame trees stable at 1/2/8 workers, EXPLAIN ANALYZE rows reconcile)"
TRACE_DIR="$(mktemp -d)"
LLMDM_BENCH_DIR="$TRACE_DIR" cargo run -q --release --offline -p llmdm --example request_tracing >/dev/null
test -s "$TRACE_DIR/TRACE_request.json" || { echo "request_tracing emitted no TRACE_request.json"; exit 1; }
test -s "$TRACE_DIR/WINDOW_serve.json" || { echo "request_tracing emitted no WINDOW_serve.json"; exit 1; }
rm -rf "$TRACE_DIR"

echo "== obs window bench (pins windowed recording <5% over plain observe + disabled-path budget)"
BENCH_DIR="$(mktemp -d)"
LLMDM_BENCH_FAST=1 LLMDM_BENCH_DIR="$BENCH_DIR" cargo bench --offline -p llmdm-bench --bench obs_window
test -s "$BENCH_DIR/BENCH_obswindow.json" || { echo "obs_window emitted no BENCH_obswindow.json"; exit 1; }
rm -rf "$BENCH_DIR"

echo "== query planner example (self-validating: EXPLAIN renders, planner == direct oracle bit-for-bit)"
cargo run -q --release --offline -p llmdm --example query_planner >/dev/null

echo "== sqlplan bench (pins planner >=1.2x over direct exec on filtered-scan and top-k; bit-equality gate)"
BENCH_DIR="$(mktemp -d)"
LLMDM_BENCH_FAST=1 LLMDM_BENCH_DIR="$BENCH_DIR" cargo bench --offline -p llmdm-bench --bench sqlplan
test -s "$BENCH_DIR/BENCH_sqlplan.json" || { echo "sqlplan emitted no BENCH_sqlplan.json"; exit 1; }
rm -rf "$BENCH_DIR"

echo "== semantic sql example (self-validating: LLM operators end-to-end, EXPLAIN estimates, ANALYZE/meter reconciliation, dedup+cache savings, planner == direct)"
cargo run -q --release --offline -p llmdm --example semantic_sql >/dev/null

echo "== semsql bench (pins >=2x fewer model calls + dollars on duplicate-heavy LLM_MAP via dedup; zero-bill warm cache)"
BENCH_DIR="$(mktemp -d)"
LLMDM_BENCH_FAST=1 LLMDM_BENCH_DIR="$BENCH_DIR" cargo bench --offline -p llmdm-bench --bench semsql
test -s "$BENCH_DIR/BENCH_semsql.json" || { echo "semsql emitted no BENCH_semsql.json"; exit 1; }
rm -rf "$BENCH_DIR"

echo "== crash recovery example (self-validating: kill matrix at all 3 commit barriers, warm-cache restart)"
cargo run -q --release --offline -p llmdm --example crash_recovery >/dev/null

echo "== store durability bench (pins warm scan >=2x cold through the buffer pool; recovery vs WAL length reported)"
BENCH_DIR="$(mktemp -d)"
LLMDM_BENCH_FAST=1 LLMDM_BENCH_DIR="$BENCH_DIR" cargo bench --offline -p llmdm-bench --bench store_durability
test -s "$BENCH_DIR/BENCH_store.json" || { echo "store_durability emitted no BENCH_store.json"; exit 1; }
rm -rf "$BENCH_DIR"

echo "verify: OK"
