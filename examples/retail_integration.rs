//! Retail data-integration scenario (§II-C of the paper: "various inputs
//! from different individuals may cause issues such as inconsistencies in
//! formatting, as well as missing information, leading retailers to draw
//! inaccurate conclusions").
//!
//! Entity resolution over a dirty supplier list, schema matching between
//! CRM and billing exports, column type annotation, cleaning with FD
//! repair, and column-format reconciliation for joinability.
//!
//! Run with `cargo run -p llmdm --example retail_integration`.

use llmdm::integrate::er::{evaluate, ErDataset, LlmMatcher, SimilarityMatcher};
use llmdm::integrate::{clean_report, match_schemas, repair_fd_violations, rule_annotate};
use llmdm::model::ModelZoo;
use llmdm::sql::{Column, DataType, Schema, Table, Value};
use llmdm::transform::synthesize_mapping;

fn main() {
    let zoo = ModelZoo::standard(9);

    // --- Entity resolution over the supplier list -----------------------
    let dataset = ErDataset::generate(30, 0.5, 9);
    println!(
        "supplier list: {} records, {} true duplicate pairs",
        dataset.records.len(),
        dataset.gold_pairs.len()
    );
    let sim = evaluate(&dataset, &SimilarityMatcher::new(9, 0.72));
    let llm = evaluate(&dataset, &LlmMatcher::new(zoo.large(), 9, &dataset));
    println!("  similarity matcher: P {:.2} R {:.2} F1 {:.2}", sim.precision, sim.recall, sim.f1);
    println!("  LLM matcher:        P {:.2} R {:.2} F1 {:.2}", llm.precision, llm.recall, llm.f1);

    // --- Schema matching: CRM export vs billing export ------------------
    let mut crm = Table::new(
        "crm",
        Schema::new(vec![
            Column::new("customer_name", DataType::Text),
            Column::new("customer_city", DataType::Text),
            Column::new("total_spend", DataType::Int),
        ]),
    );
    let mut billing = Table::new(
        "billing",
        Schema::new(vec![
            Column::new("spend_total", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("city", DataType::Text),
        ]),
    );
    for (n, c, s) in [("alice", "springfield", 120i64), ("bob", "rivertown", 90)] {
        crm.push_row(vec![Value::Str(n.into()), Value::Str(c.into()), Value::Int(s)])
            .expect("row");
        billing
            .push_row(vec![Value::Int(s), Value::Str(n.into()), Value::Str(c.into())])
            .expect("row");
    }
    println!("\nschema matches (CRM → billing):");
    for m in match_schemas(&crm, &billing, 9, 0.3) {
        println!("  {} → {} (score {:.2})", m.left, m.right, m.score);
    }

    // --- Column type annotation ------------------------------------------
    for values in [
        vec!["USA", "UK", "France"],
        vec!["555-123-4567", "555 987 6543"],
        vec!["Basketball", "Badminton", "Table Tennis"],
    ] {
        println!("column {:?} → {:?}", values, rule_annotate(&values));
    }

    // --- Cleaning with an FD repair --------------------------------------
    let mut inventory = Table::new(
        "inventory",
        Schema::new(vec![
            Column::new("zip", DataType::Text),
            Column::new("city", DataType::Text),
            Column::new("stock", DataType::Int),
        ]),
    );
    for (z, c, s) in [
        ("100081", "beijing", 10i64),
        ("100081", "beijing", 14),
        ("100081", "peking", 9), // FD violation
        ("018989", "singapore", 3),
    ] {
        inventory
            .push_row(vec![Value::Str(z.into()), Value::Str(c.into()), Value::Int(s)])
            .expect("row");
    }
    let report = clean_report(&inventory, &[("zip", "city")]);
    println!(
        "\ncleaning: error rate {:.1}%, {} FD violation group(s)",
        report.error_rate * 100.0,
        report.fd_violations.iter().map(|(_, _, v)| v.len()).sum::<usize>()
    );
    let repaired = repair_fd_violations(&inventory, "zip", "city");
    println!(
        "after majority repair: zip 100081 city values = {:?}",
        repaired
            .rows
            .iter()
            .filter(|r| r[0] == Value::Str("100081".into()))
            .map(|r| r[1].to_string())
            .collect::<Vec<_>>()
    );

    // --- Joinability: reconcile date formats across exports --------------
    let program = synthesize_mapping(&[
        ("Aug 14 2023", "8/14/2023"),
        ("Jan 02 2022", "1/02/2022"),
    ])
    .expect("format mapping learnable");
    println!(
        "\ncolumn mapping program: {program}\n  'Dec 25 2021' → {}",
        program.apply("Dec 25 2021").expect("applies")
    );
}
