//! NL2SQL cost optimization scenario — §III-B and §III-C of the paper
//! composed: a proxy serving many users runs the cascade for QA traffic,
//! decomposition+combination for NL2SQL traffic, and a semantic cache in
//! front of everything.
//!
//! Run with `cargo run -p llmdm --example nl2sql_cost_optimizer`.

use std::sync::Arc;

use llmdm::cascade::eval::run_table1;
use llmdm::model::{CompletionRequest, LanguageModel, ModelZoo};
use llmdm::nlq::pipeline::run_table2;
use llmdm::nlq::{concert_domain, ExamplePool, Nl2SqlSolver, PromptBuilder};
use llmdm::semcache::{CacheConfig, CachedLlm, SemanticCache};

fn main() {
    // --- The cascade saves money on QA traffic (Table I) ----------------
    let t1 = run_table1(42);
    println!("cascade vs standalone tiers (40 QA queries):");
    for t in &t1.tiers {
        println!("  {:<12} accuracy {:>5.1}%  cost ${:.4}", t.name, t.accuracy * 100.0, t.cost);
    }
    println!(
        "  {:<12} accuracy {:>5.1}%  cost ${:.4}  (mean tier used {:.2})",
        t1.cascade.name,
        t1.cascade.accuracy * 100.0,
        t1.cascade.cost,
        t1.mean_tier_used
    );

    // --- Decomposition + combination on NL2SQL traffic (Table II) -------
    let t2 = run_table2(42);
    println!("\nNL2SQL pipelines (20-query workload):");
    for (name, p) in [
        ("origin", t2.origin),
        ("decomposition", t2.decomposition),
        ("decomp+combination", t2.combination),
    ] {
        println!(
            "  {:<20} accuracy {:>5.1}%  cost ${:.4}  calls {}",
            name,
            p.accuracy * 100.0,
            p.cost,
            p.calls
        );
    }

    // --- A semantic cache in front of a live model -----------------------
    let db = concert_domain(42);
    let zoo = ModelZoo::standard(42);
    zoo.register_solver(Arc::new(Nl2SqlSolver));
    let builder = PromptBuilder::new(ExamplePool::generate(42), db.schema_summary());
    let mut cached = CachedLlm::new(
        zoo.large(),
        SemanticCache::new(CacheConfig::default()),
        None,
    );
    let questions = [
        "What are the names of stadiums that had concerts in 2014?",
        "What are the names of stadiums that had festivals in 2013?",
        "What are the names of stadiums that had concerts in 2014?", // repeat → reuse
        "What are the names of stadiums that had concerts in 2016?", // similar → augment
    ];
    println!("\nsemantic cache in front of the model:");
    for q in questions {
        let prompt = builder.single(q);
        let a = cached
            .ask(q, &prompt, llmdm::semcache::EntryKind::Original)
            .expect("model answers");
        println!(
            "  {:<62} {} ${:.4}",
            q,
            if a.from_cache { "CACHE " } else { "MODEL " },
            a.cost
        );
    }
    let stats = cached.cache().stats();
    println!(
        "  cache: {} reuse, {} augment, {} misses (hit ratio {:.0}%)",
        stats.reuse_hits,
        stats.augment_hits,
        stats.misses,
        stats.hit_ratio() * 100.0
    );

    // --- The combined bill ------------------------------------------------
    let direct_model = zoo.large();
    let uncached_cost: f64 = questions
        .iter()
        .map(|q| {
            direct_model
                .complete(&CompletionRequest::new(builder.single(q)))
                .map(|c| c.cost)
                .unwrap_or(0.0)
        })
        .sum();
    println!("\nwithout any optimization those four asks would cost ${uncached_cost:.4}");
}
