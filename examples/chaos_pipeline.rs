//! chaos_pipeline — the resilience layer under escalating fault schedules.
//!
//! Runs the same 30-query HotpotQA cascade workload under three fault
//! schedules — `quiet` (no faults), `lossy` (per-tier rate-limit /
//! timeout / truncation / malformed rates), and `outage` (lossy plus a
//! hard outage window on the cheap tier and a burst) — and then
//! *self-validates* the resilience invariants:
//!
//! 1. no panics: every query either answers or fails cleanly;
//! 2. retries never exceed the policy cap;
//! 3. exact dollar reconciliation: what the fault injectors say executed
//!    equals what the usage meter billed, to the cent and beyond;
//! 4. accuracy degrades monotonically with fault severity but never
//!    reaches zero (graceful degradation, not collapse);
//! 5. identical seed + plan ⇒ byte-identical fault sequence and report.
//!
//! ```text
//! cargo run --example chaos_pipeline
//! ```

use std::sync::Arc;

use llmdm::cascade::{
    CascadeRouter, DecisionModel, HotpotConfig, HotpotWorkload, QaSolver, ResilientCascade,
};
use llmdm::model::prelude::*;
use llmdm::resil::{FaultKind, FaultPlan, FaultRates, SimClock, TierPlan, Window};

const SEED: u64 = 17;
const QUERIES: usize = 30;
/// Simulated time between arriving queries: lets open breakers cool
/// down and walks the timeline through outage windows.
const INTER_ARRIVAL_MS: u64 = 2_000;
/// Per-query latency budget. Small enough that a tier stuck behind a
/// long outage hint fails fast and falls through instead of sleeping
/// out the whole outage.
const QUERY_BUDGET_MS: u64 = 10_000;

/// The three escalating schedules.
fn schedules() -> Vec<FaultPlan> {
    let lossy_tiers = vec![
        TierPlan::with_rates(
            "sim-small",
            FaultRates { rate_limited: 0.15, timeout: 0.08, truncated: 0.07, malformed: 0.05 },
        )
        .retry_hint(200)
        .timeout_latency(500),
        TierPlan::with_rates(
            "sim-medium",
            FaultRates { rate_limited: 0.10, timeout: 0.05, truncated: 0.05, malformed: 0.03 },
        )
        .retry_hint(200)
        .timeout_latency(500),
        TierPlan::with_rates(
            "sim-large",
            FaultRates { rate_limited: 0.05, timeout: 0.02, truncated: 0.02, malformed: 0.01 },
        )
        .retry_hint(200)
        .timeout_latency(500),
    ];
    let lossy = FaultPlan::new("lossy", SEED, lossy_tiers.clone());
    // Outage: the lossy schedule, plus the cheap tier goes hard-down for
    // 24 simulated seconds mid-run and a burst doubles all rates early.
    let outage_tiers: Vec<TierPlan> = lossy_tiers
        .into_iter()
        .map(|t| {
            if t.tier == "sim-small" {
                t.outage(Window::new(16_000, 40_000))
            } else {
                t
            }
        })
        .collect();
    let outage =
        FaultPlan::new("outage", SEED, outage_tiers).burst(Window::new(0, 8_000), 2.0);
    vec![FaultPlan::none(), lossy, outage]
}

/// Everything one schedule run produces, rendered deterministically.
struct RunReport {
    name: String,
    accuracy: f64,
    answered: usize,
    exhausted: usize,
    degraded: usize,
    fallbacks: u64,
    total_cost: f64,
    executed_cost: f64,
    metered_cost: f64,
    retries: u64,
    retry_cap_ok: bool,
    fault_seq: String,
    rendered: String,
}

fn run_schedule(plan: &FaultPlan) -> RunReport {
    // Fresh zoo per schedule so runs are fully independent.
    let zoo = ModelZoo::standard(SEED);
    zoo.register_solver(Arc::new(QaSolver));
    let workload =
        HotpotWorkload::generate(HotpotConfig { n: QUERIES, seed: SEED, ..Default::default() });

    // Train the decision model on clean calibration traffic, then zero
    // the meter: calibration is free in the experiment.
    let train = HotpotWorkload::generate(HotpotConfig {
        n: 120,
        seed: SEED + 1000,
        ..Default::default()
    });
    let calibration: Vec<(String, String)> =
        train.items.iter().map(|i| (i.prompt(), i.gold.clone())).collect();
    let clean = zoo.cascade_order();
    let data = CascadeRouter::collect_training_data(&clean, &calibration);
    zoo.meter().reset();
    let mut decision = DecisionModel::new();
    decision.train(&data, 400, 0.8);

    // Wrap every tier in the fault injector on one shared clock via the
    // ModelStack builder, keeping the typed injector handles for the
    // executed-cost reconciliation below…
    let clock = SimClock::new();
    let plan = Arc::new(plan.clone());
    let stacks: Vec<ModelStack> = clean
        .iter()
        .map(|m| {
            ModelStack::over(m.clone() as Arc<dyn LanguageModel>)
                .on_clock(clock.clone())
                .with_faults(plan.clone())
        })
        .collect();
    let faulty: Vec<Arc<FaultyModel>> =
        stacks.iter().map(|s| s.faulty().expect("with_faults applied").clone()).collect();
    // …and build the resilient cascade over them.
    let erased: Vec<Arc<dyn LanguageModel>> = stacks.into_iter().map(ModelStack::build_arc).collect();
    let cascade = ResilientCascade::from_models(erased, decision, 0.6, clock.clone());

    let mut answered = 0usize;
    let mut exhausted = 0usize;
    let mut degraded = 0usize;
    let mut fallbacks = 0u64;
    let mut correct = 0usize;
    let mut total_cost = 0.0f64;
    for item in &workload.items {
        match cascade.answer_within(&item.prompt(), QUERY_BUDGET_MS) {
            Ok(a) => {
                answered += 1;
                total_cost += a.total_cost;
                fallbacks += u64::from(a.fallbacks);
                if a.degraded {
                    degraded += 1;
                }
                if a.text.trim() == item.gold {
                    correct += 1;
                }
            }
            Err(_) => exhausted += 1,
        }
        clock.advance(INTER_ARRIVAL_MS);
    }

    // Per-tier resilience accounting.
    let mut retries = 0u64;
    let mut retry_cap_ok = true;
    for tier in cascade.tiers() {
        let s = tier.stats();
        retries += s.retries;
        if s.retries > s.calls * u64::from(tier.policy().max_retries) {
            retry_cap_ok = false;
        }
    }

    // The deterministic fault sequence: per-tier call and fault counts.
    let mut fault_seq = String::new();
    let mut executed_cost = 0.0f64;
    for f in &faulty {
        executed_cost += f.executed_cost();
        fault_seq.push_str(&format!("tier={} calls={}", f.name(), f.calls()));
        for kind in FaultKind::all() {
            fault_seq.push_str(&format!(" {}={}", kind.label(), f.fault_count(kind)));
        }
        fault_seq.push('\n');
    }
    let metered_cost = zoo.meter().snapshot().total_dollars();
    let accuracy = correct as f64 / workload.items.len() as f64;

    let rendered = format!(
        "schedule={} answered={} exhausted={} degraded={} fallbacks={} \
         accuracy={:.4} cascade_cost=${:.6} executed=${:.6} metered=${:.6} retries={}\n{}",
        plan.name,
        answered,
        exhausted,
        degraded,
        fallbacks,
        accuracy,
        total_cost,
        executed_cost,
        metered_cost,
        retries,
        fault_seq,
    );

    RunReport {
        name: plan.name.clone(),
        accuracy,
        answered,
        exhausted,
        degraded,
        fallbacks,
        total_cost,
        executed_cost,
        metered_cost,
        retries,
        retry_cap_ok,
        fault_seq,
        rendered,
    }
}

fn main() {
    println!("chaos_pipeline: {QUERIES} HotpotQA queries through the resilient cascade\n");

    let plans = schedules();
    let mut reports = Vec::new();
    for plan in &plans {
        let report = run_schedule(plan);
        println!("{}", report.rendered);
        reports.push(report);
    }

    // ---- Invariant 1: every query accounted for, no panics. ----------
    for r in &reports {
        assert_eq!(r.answered + r.exhausted, QUERIES, "{}: queries lost", r.name);
    }
    // The quiet schedule must answer everything with zero fallbacks.
    assert_eq!(reports[0].answered, QUERIES, "quiet schedule dropped queries");
    assert_eq!(reports[0].fallbacks, 0, "quiet schedule had fallbacks");
    assert_eq!(reports[0].degraded, 0, "quiet schedule degraded");

    // ---- Invariant 2: retries never exceed the policy cap. -----------
    for r in &reports {
        assert!(r.retry_cap_ok, "{}: retries exceeded cap", r.name);
    }
    assert_eq!(reports[0].retries, 0, "quiet schedule retried");

    // ---- Invariant 3: exact dollar reconciliation. -------------------
    // What the injectors observed executing == what the meter billed.
    for r in &reports {
        let diff = (r.executed_cost - r.metered_cost).abs();
        assert!(
            diff < 1e-9,
            "{}: executed ${:.9} != metered ${:.9}",
            r.name,
            r.executed_cost,
            r.metered_cost
        );
    }

    // ---- Invariant 4: graceful degradation, not collapse. ------------
    // Accuracy may only drift down as fault severity rises (small
    // tolerance: escalation to bigger tiers can mask mild fault rates)
    // and must stay strictly positive even under outage.
    assert!(
        reports[1].accuracy <= reports[0].accuracy + 0.10,
        "lossy accuracy {} above quiet {}",
        reports[1].accuracy,
        reports[0].accuracy
    );
    assert!(
        reports[2].accuracy <= reports[1].accuracy + 0.10,
        "outage accuracy {} above lossy {}",
        reports[2].accuracy,
        reports[1].accuracy
    );
    for r in &reports {
        assert!(r.accuracy > 0.0, "{}: accuracy collapsed to zero", r.name);
    }
    // Faulty schedules must actually have exercised the fallback path.
    assert!(reports[2].fallbacks > 0, "outage schedule never fell back");

    // ---- Invariant 5: determinism. -----------------------------------
    // Identical seed + plan ⇒ byte-identical fault sequence and report.
    for (plan, first) in plans.iter().zip(&reports) {
        let again = run_schedule(plan);
        assert_eq!(
            first.fault_seq, again.fault_seq,
            "{}: fault sequence not reproducible",
            plan.name
        );
        assert_eq!(
            first.rendered, again.rendered,
            "{}: report not byte-identical across reruns",
            plan.name
        );
    }

    // Cost sanity: faults cost money (retried timeouts bill twice,
    // escalation hits pricier tiers), so the faulty schedules should
    // never be cheaper than quiet by more than noise.
    println!(
        "cost: quiet=${:.4} lossy=${:.4} outage=${:.4}",
        reports[0].total_cost, reports[1].total_cost, reports[2].total_cost
    );

    println!("\nchaos_pipeline: all resilience invariants hold");
}
