//! Quickstart: the shortest useful tour of `llmdm`.
//!
//! Run with `cargo run -p llmdm --example quickstart`.
//!
//! You get a simulated model zoo, a SQL engine, an NL2SQL translation,
//! validated and executed — the minimal end-to-end loop of the paper's
//! vision.

use std::sync::Arc;

use llmdm::model::{CompletionRequest, LanguageModel, ModelZoo};
use llmdm::nlq::{concert_domain, ExamplePool, Nl2SqlSolver, PromptBuilder};
use llmdm::validate::{OutputValidator, SqlExecValidator};

fn main() {
    // 1. A database to talk to (the paper's Fig. 7 concert domain).
    let mut db = concert_domain(42);
    println!("schema:\n{}", db.schema_summary());

    // 2. A model zoo with the NL2SQL solver registered.
    let zoo = ModelZoo::standard(42);
    zoo.register_solver(Arc::new(Nl2SqlSolver));
    let model = zoo.large();

    // 3. Ask a natural-language question via a DAIL-style few-shot prompt.
    let question = "What are the names of stadiums that had concerts in 2014 \
                    or had sports meetings in 2015?";
    let builder = PromptBuilder::new(ExamplePool::generate(42), db.schema_summary());
    let prompt = builder.single(question);
    let completion = model.complete(&CompletionRequest::new(prompt)).expect("model answers");
    println!("Q: {question}");
    println!("predicted SQL: {}", completion.text);
    println!(
        "tokens: {} in / {} out, cost ${:.4}, confidence {:.2}",
        completion.usage.input_tokens,
        completion.usage.output_tokens,
        completion.cost,
        completion.confidence
    );

    // 4. Validate before trusting (§III-E).
    let validator = SqlExecValidator::new(db.clone());
    let verdict = validator.validate(&completion.text);
    println!("validator: {verdict:?}");

    // 5. Execute.
    let rs = db.query(completion.text.trim()).expect("validated SQL executes");
    println!("result ({} rows):\n{rs}", rs.len());

    // 6. The bill so far, from the shared usage meter.
    let snapshot = zoo.meter().snapshot();
    println!(
        "total: {} calls, {} tokens, ${:.4}",
        snapshot.total_calls(),
        snapshot.total_tokens(),
        snapshot.total_dollars()
    );
}
