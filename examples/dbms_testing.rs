//! DBMS testing scenario (§II-A1 of the paper: "to comprehensively detect
//! the bugs of DBMS, it is important to feed the database with a huge
//! number of SQL queries" and "to detect the logic bugs of DBMS, we need
//! to generate some SQL queries with semantic equivalence").
//!
//! Generates a constrained query corpus against a live schema, then runs
//! two equivalence oracles (tautology rewrites + TLP partitioning) as a
//! logic-bug detector — and demonstrates the detector catching a
//! deliberately broken rewrite.
//!
//! Run with `cargo run -p llmdm --example dbms_testing`.

use llmdm::datagen::{
    check_equivalence, equivalent_variants, tlp_partition, QueryKind, SqlGenConstraints,
    SqlGenerator,
};
use llmdm::nlq::concert_domain;

fn main() {
    let db = concert_domain(5);
    let mut generator = SqlGenerator::new(5);
    let corpus = generator.generate(
        &db,
        &SqlGenConstraints { n: 60, require_nonempty: false, ..Default::default() },
    );
    println!("generated {} executable queries:", corpus.len());
    for kind in QueryKind::ALL {
        let n = corpus.iter().filter(|g| g.kind == kind).count();
        println!("  {kind:?}: {n}");
    }

    // Logic-bug detection loop.
    let mut pairs = 0usize;
    let mut mismatches = 0usize;
    for g in &corpus {
        for variant in equivalent_variants(&g.sql).unwrap_or_default() {
            pairs += 1;
            if !check_equivalence(&db, &g.sql, &variant).unwrap_or(true) {
                mismatches += 1;
                println!("LOGIC BUG: {} != {}", g.sql, variant);
            }
        }
        if let Ok((unfiltered, partitioned)) = tlp_partition(&g.sql) {
            pairs += 1;
            if !check_equivalence(&db, &unfiltered, &partitioned).unwrap_or(true) {
                mismatches += 1;
                println!("TLP BUG: {unfiltered} != {partitioned}");
            }
        }
    }
    println!("\nequivalence oracle: {pairs} pairs checked, {mismatches} mismatches");
    assert_eq!(mismatches, 0, "the engine must pass its own oracles");

    // Show the detector actually detects: break a partition on purpose.
    // Dropping the `p` branch simulates an engine that silently loses
    // matching rows — detectable whenever the predicate selects anything.
    let victim = corpus
        .iter()
        .find(|g| {
            g.kind == QueryKind::Simple
                && db.clone().query(&g.sql).map(|rs| !rs.is_empty()).unwrap_or(false)
        })
        .expect("corpus has a selective simple query");
    if let Ok((unfiltered, partitioned)) = tlp_partition(&victim.sql) {
        if let Some(cut) = partitioned.find(" UNION ALL ") {
            let broken = &partitioned[cut + " UNION ALL ".len()..];
            let caught = !check_equivalence(&db, &unfiltered, broken).unwrap_or(true);
            println!(
                "sabotaged partition ({} → dropped the matching branch): detector {}",
                victim.sql,
                if caught { "CAUGHT the bug" } else { "MISSED the bug" }
            );
            assert!(caught, "the sabotage demo must demonstrate detection");
        }
    }
}
