//! Durability walkthrough (DESIGN.md §13): the storage tier survives a
//! process kill at *any* point inside a commit, and both consumers —
//! persistent SQL tables and the semantic cache — come back from disk
//! exactly as of the last committed transaction.
//!
//! This example is self-validating; every step asserts:
//! 1. populate a `PERSIST` table through the sqlengine;
//! 2. kill the store mid-commit at each of the three kill points
//!    (post-WAL-append, post-WAL-sync, mid-page-flush), crash the
//!    simulated machine, re-open, and check the recovered database
//!    bit-equals an in-memory oracle replay of exactly the statements
//!    that committed;
//! 3. snapshot a warm semantic cache, "restart the process", and show
//!    the very first lookup after recovery is a warm reuse hit with the
//!    lifetime counters still reconciling.
//!
//! Run with `cargo run -p llmdm --example crash_recovery`.

use llmdm::semcache::{CacheConfig, EntryKind, Lookup, PersistentCache, SemanticCache};
use llmdm::sql::exec::{execute_select, execute_select_direct};
use llmdm::sql::{parse_statement, Database, PersistentDb, Statement};
use llmdm::store::{KillPoint, MemVfs, StorageFaults, StoreConfig, StoreError};

const DDL: &str = "CREATE TABLE readings (id INT, sensor TEXT, value FLOAT)";
const CHECK: &str = "SELECT sensor, value FROM readings ORDER BY id";

fn workload() -> Vec<String> {
    (0..12)
        .map(|i| {
            format!(
                "INSERT INTO readings VALUES ({i}, 'sensor-{}', {}.{:02})",
                i % 3,
                (i * 13) % 40,
                (i * 29) % 100
            )
        })
        .collect()
}

/// Oracle replay: an in-memory database after the first `n` statements.
fn oracle_after(n: usize) -> Database {
    let mut db = Database::new();
    db.execute(DDL).expect("oracle DDL");
    for stmt in &workload()[..n] {
        db.execute(stmt).expect("oracle replay");
    }
    db
}

fn assert_matches_oracle(per: &mut PersistentDb, oracle: &Database, ctx: &str) {
    let sel = match parse_statement(CHECK).expect("parse") {
        Statement::Select(s) => s,
        _ => unreachable!(),
    };
    let want = execute_select(oracle, &sel).expect("oracle planner");
    let want_direct = execute_select_direct(oracle, &sel).expect("oracle direct");
    assert!(want.bit_eq(&want_direct), "{ctx}: oracle disagrees with itself");
    let got = per.query(CHECK).expect("recovered query");
    assert!(got.bit_eq(&want), "{ctx}: recovered table differs from the oracle");
}

/// Run the workload against a store rigged to die at `point` on the
/// `at_ms` commit barrier; crash, recover, and differential-check.
fn kill_and_recover(point: KillPoint, at_ms: u64) {
    let vfs = MemVfs::shared();
    let mut per = PersistentDb::open(
        vfs.clone(),
        StoreConfig::with_faults(StorageFaults::kill_at(point, at_ms)),
    )
    .expect("open");
    per.execute(&format!("{DDL} PERSIST")).expect("DDL");

    let mut survived = 0usize;
    for stmt in workload() {
        match per.execute(&stmt) {
            Ok(_) => survived += 1,
            Err(e) => {
                assert!(e.to_string().contains("killed"), "expected a kill, got: {e}");
                break;
            }
        }
    }
    assert!(survived < workload().len(), "{point:?}: the kill never fired");
    drop(per);
    llmdm::rt::lock_recover(&vfs).crash(); // lose everything unsynced

    let mut per = PersistentDb::open(vfs, StoreConfig::default()).expect("recovery");
    let report = per.store().recovery().clone();

    // How many commits are durable? PostWalAppend dies before the WAL
    // sync, so the interrupted statement is lost; the two later kill
    // points die after it, so the WAL replays that statement's pages.
    let committed = match point {
        KillPoint::PostWalAppend => survived,
        KillPoint::PostWalSync | KillPoint::MidPageFlush => survived + 1,
    };
    assert_matches_oracle(&mut per, &oracle_after(committed), &format!("{point:?}"));
    println!(
        "  {:<16} killed statement #{:<2} -> recovered {:2} rows ({} WAL frames, {} pages redone)",
        format!("{point:?}"),
        survived,
        committed,
        report.frames,
        report.pages_redone
    );
}

fn main() {
    println!("crash_recovery: durable tables + warm cache across injected kills\n");

    // ---- 1. Baseline: populate, restart cleanly, differential-check.
    let vfs = MemVfs::shared();
    let mut per = PersistentDb::open(vfs.clone(), StoreConfig::default()).expect("open");
    per.execute(&format!("{DDL} PERSIST")).expect("DDL");
    for stmt in workload() {
        per.execute(&stmt).expect("populate");
    }
    drop(per);
    let mut per = PersistentDb::open(vfs, StoreConfig::default()).expect("re-open");
    assert_matches_oracle(&mut per, &oracle_after(workload().len()), "clean restart");
    println!("clean restart: {} rows reload bit-identically", workload().len());

    // ---- 2. Chaos: a kill at every point in the commit protocol. The
    // barrier tick is found by a recording dry-run, so each kill lands
    // mid-workload deterministically.
    println!("\nkill matrix (deterministic fault injection):");
    for point in KillPoint::all() {
        let at_ms = {
            let vfs = MemVfs::shared();
            let mut rec = PersistentDb::open(
                vfs,
                StoreConfig::with_faults(StorageFaults::recording()),
            )
            .expect("recording open");
            rec.execute(&format!("{DDL} PERSIST")).expect("DDL");
            for stmt in workload() {
                rec.execute(&stmt).expect("recording run");
            }
            let ops: Vec<_> = rec
                .store()
                .faults()
                .ops()
                .into_iter()
                .filter(|o| o.point == point)
                .collect();
            ops[ops.len() / 2].at_ms // a mid-workload barrier
        };
        kill_and_recover(point, at_ms);
    }

    // ---- 3. Warm cache restart: snapshot, kill a later save mid-commit,
    // recover, and serve a hit on the very first lookup.
    println!("\nsemantic cache across a restart:");
    let vfs = MemVfs::shared();
    let mut cache = SemanticCache::new(CacheConfig::default());
    cache.insert("how do transactions recover after a crash", "replay the WAL", EntryKind::Original);
    cache.insert("what is a buffer pool", "an in-memory page cache", EntryKind::Original);
    assert!(matches!(
        cache.lookup("how do transactions recover after a crash"),
        Lookup::Hit { .. }
    ));
    let saved = cache.stats();
    let mut pc = PersistentCache::open(vfs.clone(), StoreConfig::default()).expect("cache store");
    pc.save(&cache).expect("snapshot");

    // A later save dies mid-commit: the snapshot on disk must stay the
    // complete previous one, never a torn mix.
    cache.insert("unsaved entry", "never durable", EntryKind::Original);
    let mut doomed = PersistentCache::open(
        vfs.clone(),
        StoreConfig::with_faults(StorageFaults::kill_at(KillPoint::PostWalAppend, 1)),
    )
    .expect("doomed open");
    match doomed.save(&cache) {
        Err(StoreError::Killed(p)) => println!("  save killed at {p:?} as scheduled"),
        other => panic!("expected the save to be killed, got {other:?}"),
    }
    drop(doomed);
    llmdm::rt::lock_recover(&vfs).crash();

    let mut pc = PersistentCache::open(vfs, StoreConfig::default()).expect("restart");
    let mut warm = pc.load(CacheConfig::default()).expect("load");
    assert_eq!(warm.len(), 2, "torn save must not be visible");
    assert_eq!(warm.stats(), saved, "lifetime counters survive the restart");
    match warm.lookup("how do transactions recover after a crash") {
        Lookup::Hit { response, .. } => {
            assert_eq!(response, "replay the WAL");
            println!("  first lookup after restart: warm hit ({response:?})");
        }
        other => panic!("expected a warm hit after restart, got {other:?}"),
    }
    assert!(warm.stats().reconciles(), "stats reconcile after restart + lookup");

    println!("\ncrash_recovery: OK");
}
