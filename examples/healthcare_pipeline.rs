//! Healthcare scenario (§II-B, §II-D, §III-D of the paper): EMR data
//! arrives as XML diagnostic reports and JSON lab feeds; it must be
//! relationalized, imputed, explored as a multi-modal lake, and any
//! learning on it must be privacy-preserving.
//!
//! Run with `cargo run -p llmdm --example healthcare_pipeline`.

use llmdm::datagen::Imputer;
use llmdm::explore::DataLake;
use llmdm::model::ModelZoo;
use llmdm::privacy::dp::PrivacyAccountant;
use llmdm::privacy::{membership_attack, train_dpsgd, DpSgdConfig};
use llmdm::sql::Value;
use llmdm::transform::{json_to_tables, xml_to_table, JsonValue, XmlNode};
use llmdm::vecdb::AttrValue;

fn main() {
    let zoo = ModelZoo::standard(7);

    // --- Transformation: XML diagnostic reports → relational -----------
    let xml = XmlNode::parse(
        r#"<reports>
             <report id="1"><patient>alice</patient><unit>cardio</unit><finding>arrhythmia</finding></report>
             <report id="2"><patient>bob</patient><unit>neuro</unit><finding>migraine</finding></report>
             <report id="3"><patient>chen</patient><unit>cardio</unit><finding>murmur</finding></report>
           </reports>"#,
    )
    .expect("hospital XML export parses");
    let reports = xml_to_table(&xml).expect("relationalizes");
    println!("XML → table `{}` with {} rows", reports.name, reports.rows.len());

    // --- Transformation: JSON lab feed → relational (+ child table) ----
    let labs_json = JsonValue::parse(
        r#"[{"patient": "alice", "age": 63, "labs": [{"test": "hb", "value": 11.2}, {"test": "bp", "value": 151.0}]},
            {"patient": "bob", "age": 48, "labs": [{"test": "hb", "value": 13.9}]},
            {"patient": "chen", "age": 71, "labs": [{"test": "bp", "value": 162.0}]},
            {"patient": "dara", "age": 55}]"#,
    )
    .expect("lab feed parses");
    let lab_tables = json_to_tables("patients", &labs_json).expect("relationalizes");
    for t in &lab_tables {
        println!("JSON → table `{}` with {} rows", t.name, t.rows.len());
    }

    // --- Generation: impute a missing unit field with few-shot ICL -----
    let mut units = reports.clone();
    units.rows[2][units.schema.index_of("unit").expect("unit col")] = Value::Null;
    let imputer = Imputer::new(zoo.large());
    let filled =
        imputer.fill_nulls(&units, units.schema.index_of("unit").expect("unit col")).expect("imputes");
    println!(
        "imputed missing unit for row 3: {}",
        filled.rows[2][filled.schema.index_of("unit").expect("unit col")]
    );

    // --- Exploration: one lake over reports, labs, and imaging ---------
    let mut lake = DataLake::new(7);
    lake.add_table(&reports, vec![("entity_type".to_string(), AttrValue::from("report"))])
        .expect("index table");
    for t in &lab_tables {
        lake.add_table(t, vec![("entity_type".to_string(), AttrValue::from("labs"))])
            .expect("index table");
    }
    lake.add_image(
        "chest x-ray 0031",
        "frontal chest radiograph of patient alice",
        &["cardiomegaly", "clear lungs"],
        vec![("entity_type".to_string(), AttrValue::from("imaging"))],
    )
    .expect("index image");
    let hits = lake.search("cardiac findings for alice", 3).expect("semantic search");
    println!("\nlake search 'cardiac findings for alice':");
    for h in &hits {
        println!("  [{:?}] {} (score {:.2})", h.item.modality, h.item.title, h.score);
    }

    // --- Privacy: train a readmission model under DP-SGD ---------------
    // A properly shuffled synthetic cohort (age/vitals features → risk
    // label); the members and the held-out non-members come from the same
    // distribution, as a real MIA evaluation requires.
    let cohort = llmdm::privacy::logreg::synthetic(400, 4, 0.1, 7);
    let (train, holdout) = cohort.split(0.5);
    let mut accountant = PrivacyAccountant::new();
    let model = train_dpsgd(
        &train,
        DpSgdConfig { noise_multiplier: 1.0, epochs: 10, ..Default::default() },
        &mut accountant,
    );
    let (eps, delta) = accountant.advanced_composition(1e-5);
    let attack = membership_attack(&model, &train, &holdout);
    println!(
        "\nDP-SGD readmission model: holdout accuracy {:.2}, \
         (ε, δ) ≈ ({eps:.0}, {delta:.0e}) over {} noisy steps, \
         membership-inference advantage {:.2} (≈0 = no leakage)",
        model.accuracy(&holdout),
        accountant.len(),
        attack.advantage
    );
}
