//! Request-scoped tracing across threads, plus `EXPLAIN ANALYZE`.
//!
//! Run with `cargo run -p llmdm --example request_tracing`.
//!
//! Drives a fixed serving workload through [`llmdm::serve::serve_jobs`]
//! at 1, 2, and 8 workers. Each request's spans come from at least three
//! threads — admission on the caller thread, handling on a worker
//! thread, and a post-processing step on a thread the handler spawns
//! itself (stitched in via [`TraceContext::capture`]) — and the example
//! reassembles them into one flame tree per request with a trace id
//! derived only from `(seed, submission index)`.
//!
//! The example validates its own output and exits non-zero on failure:
//!
//! * every request's reassembled tree has the same canonical shape at
//!   1, 2, and 8 workers (worker count never changes a trace);
//! * each tree is a single root (`serve.admit`) whose spans cover ≥ 3
//!   distinct threads and all carry the request's trace id;
//! * windowed per-class telemetry (batch latency, queue depth, dollars)
//!   shows up in the snapshot with rolling quantiles;
//! * `EXPLAIN ANALYZE` prints per-operator rows + timing whose root
//!   `rows_out` reconciles exactly with the executed result.
//!
//! Writes `TRACE_request.json` and `WINDOW_serve.json` into
//! `LLMDM_BENCH_DIR` (default `.`). `scripts/verify.sh` runs this as a
//! smoke test.

use std::collections::BTreeSet;

use llmdm::obs::{self, Report, TraceContext, WindowConfig};
use llmdm::serve::{record_job_cost, serve_jobs, ServeConfig};
use llmdm::sql::{Database, Value};

const SEED: u64 = 42;
const JOBS: usize = 6;

fn main() {
    // ---- 1. Same workload, three worker counts. ----------------------
    let runs: Vec<(usize, Report)> =
        [1usize, 2, 8].iter().map(|&w| (w, run_workload(w))).collect();

    let ids = runs[0].1.trace_ids();
    assert_eq!(ids.len(), JOBS, "one trace per admitted request");
    for (w, report) in &runs {
        assert_eq!(report.trace_ids(), ids, "trace ids are worker-count independent ({w} workers)");
    }

    // Canonical tree shape per request must not depend on worker count.
    for &id in &ids {
        let shapes: BTreeSet<String> =
            runs.iter().map(|(_, r)| r.trace_canonical(id)).collect();
        assert_eq!(shapes.len(), 1, "trace {id:#x} differs across worker counts: {shapes:?}");
    }

    // ---- 2. Inspect one request under 8 workers. ---------------------
    let (_, report) = runs.last().unwrap();
    for &id in &ids {
        let tree = report.trace_tree(id);
        assert_eq!(tree.len(), 1, "one root per request");
        assert_eq!(tree[0].span.name, "serve.admit", "trace roots at admission");
        let spans: Vec<_> = report.spans.iter().filter(|s| s.trace == id).collect();
        assert!(spans.iter().all(|s| s.trace == id));
        assert!(spans.len() >= 3, "admit + handle + postprocess, got {}", spans.len());
        let threads: BTreeSet<u64> = spans.iter().map(|s| s.thread).collect();
        assert!(threads.len() >= 3, "spans from ≥3 threads, got {}", threads.len());
    }
    println!("{}", report.render_trace(ids[0]));

    // Windowed per-class telemetry made it into the snapshot.
    for metric in ["serve.batch_latency_ms", "serve.queue_depth", "serve.dollars_usd"] {
        let classes = report
            .windows
            .get(metric)
            .unwrap_or_else(|| panic!("window metric {metric} missing"));
        assert!(classes.contains_key("sql") && classes.contains_key("summarize"), "{metric}");
    }
    let lat = &report.windows["serve.batch_latency_ms"]["sql"];
    assert!(lat.hist.count > 0 && lat.hist.p99 >= lat.hist.p50, "rolling quantiles populated");

    // ---- 3. Export. --------------------------------------------------
    let dir = std::env::var_os("LLMDM_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let tpath = report.write_trace(&dir, "request", Some(SEED), &[]).expect("trace written");
    let wpath = report.write_window(&dir, "serve", Some(SEED)).expect("window written");
    println!("wrote {}", tpath.display());
    println!("wrote {}", wpath.display());

    // ---- 4. EXPLAIN ANALYZE reconciles with the executed result. -----
    explain_analyze_demo();

    println!(
        "request tracing validated: {} traces × {} worker configs, {} spans total",
        ids.len(),
        runs.len(),
        report.spans.len()
    );
}

/// Run the fixed workload through `workers` serve workers and snapshot
/// the recorder. The recorder is reset first so each run sees only its
/// own spans (trace ids repeat across runs because the seed does).
fn run_workload(workers: usize) -> Report {
    obs::enable();
    obs::reset();
    obs::set_window_config(WindowConfig { bucket_ms: 500, nbuckets: 8 });

    let config = ServeConfig { workers, queue_capacity: 64, max_batch: 4, seed: SEED, ..Default::default() };
    let jobs: Vec<(String, String)> = (0..JOBS)
        .map(|i| {
            let class = if i % 2 == 0 { "sql" } else { "summarize" };
            (class.to_string(), format!("request-{i}"))
        })
        .collect();

    let run = serve_jobs(&config, jobs, |class, batch| {
        batch
            .iter()
            .map(|job| {
                // Adopt the request's trace on this worker thread: spans
                // below nest under its `serve.admit` root.
                let _g = job.trace.attach();
                let mut span = obs::span("app.handle");
                span.field("job", job.id);

                // Downstream stage on a thread *we* spawn — capture the
                // ambient context and re-attach it over there.
                let ctx = TraceContext::capture();
                let payload = job.payload.clone();
                let post = std::thread::spawn(move || {
                    let _g = ctx.attach();
                    let _s = obs::span("app.postprocess");
                    payload.len() as u64
                });
                let n = post.join().expect("postprocess thread");
                record_job_cost(class, 1e-4 * n as f64);
                Ok::<u64, String>(n)
            })
            .collect()
    });

    assert_eq!(run.stats.admitted, JOBS as u64, "fixture fits the queue");
    assert_eq!(run.results.len(), JOBS);
    obs::snapshot()
}

/// `EXPLAIN ANALYZE` a join query and check the annotated root operator's
/// `rows_out` (and the trailing `result:` line) against the rows the
/// plain query actually returns.
fn explain_analyze_demo() {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE stadium (stadium_id INT, name TEXT, capacity INT); \
         CREATE TABLE concert (concert_id INT, stadium_id INT, year INT, attendance INT); \
         INSERT INTO stadium VALUES \
           (1, 'Balmoor', 4000), (2, 'Glebe Park', 4000), \
           (3, 'Hampden Park', 52500), (4, 'Recreation Park', 3960); \
         INSERT INTO concert VALUES \
           (1, 3, 2014, 41000), (2, 3, 2015, 50200), (3, 1, 2014, 2800), \
           (4, 2, 2016, NULL), (5, 4, 2015, 1200)",
    )
    .expect("fixture loads");

    let sql = "SELECT s.name, c.year FROM stadium s \
               JOIN concert c ON s.stadium_id = c.stadium_id \
               WHERE c.attendance > 2000 ORDER BY c.year";
    let executed = db.execute(sql).expect("query runs").rows.len();

    let rs = db.execute(&format!("EXPLAIN ANALYZE {sql}")).expect("EXPLAIN ANALYZE runs");
    println!("EXPLAIN ANALYZE {sql}");
    let mut lines: Vec<String> = Vec::new();
    for row in &rs.rows {
        match &row[0] {
            Value::Str(line) => {
                println!("  {line}");
                lines.push(line.clone());
            }
            other => panic!("non-string plan row: {other:?}"),
        }
    }
    println!();

    let root = &lines[1]; // line 0 is the "physical (analyzed):" header
    let rows_out: usize = root
        .split("rows_out=")
        .nth(1)
        .and_then(|t| t.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no rows_out on root operator: {root}"));
    assert_eq!(rows_out, executed, "root operator rows reconcile with the result");
    assert_eq!(
        lines.last().map(String::as_str),
        Some(format!("result: {executed} row(s)").as_str()),
        "trailing result line reconciles"
    );
    assert!(lines.iter().any(|l| l.contains("time=")), "operators carry timings");
}
