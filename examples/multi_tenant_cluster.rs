//! multi_tenant_cluster — QoS serving across a simulated sharded
//! cluster, self-validated.
//!
//! Run with `cargo run -p llmdm --example multi_tenant_cluster`.
//!
//! Drives a three-tenant QA workload through the redesigned serving
//! frontend — typed [`ServeRequest`]s, per-tenant token-bucket quotas,
//! weighted-fair dequeue, outage shedding, token streaming — fanned out
//! over a deterministic 3-node [`Cluster`] whose node state is a
//! lock-striped, cache-backed model client. Asserts, end to end:
//!
//! 1. **Routing is deterministic and sticky**: the rendezvous router
//!    sends every key to the same node on every pass, and a realistic
//!    key population touches every node.
//! 2. **Quota accounting reconciles across the cluster**: per node and
//!    merged, `admitted + rejected + shed == submitted` holds for every
//!    tenant; the throttled tenant's rejections carry exact, finite
//!    refill hints.
//! 3. **The cross-node cache invariant holds**: on every node, per
//!    shard and per node, `reuse + augment + stale + misses == lookups`,
//!    total lookups equal total admitted jobs, and a repeat pass is
//!    served entirely from cache (reuse hits == the repeat pass's
//!    admitted count).
//! 4. **Streaming is worker-count-invariant**: the full prefix sequence
//!    of every job is identical at 1, 2, and 8 workers, each prefix
//!    extends the last, and the final prefix is the full completion.
//! 5. **Outage shedding degrades gracefully**: inside a resil-style
//!    outage window the scheduler sheds overflow with hints pointing
//!    past the window, and accounting still reconciles.
//!
//! Exits non-zero on any violation — `scripts/verify.sh` runs it.

use std::sync::Arc;

use llmdm::cascade::{HotpotConfig, HotpotWorkload, QaSolver};
use llmdm::model::prelude::*;
use llmdm::resil::Window;
use llmdm::semcache::{CacheConfig, ConcurrentCachedLlm, EntryKind, ShardedCache};
use llmdm::serve::prelude::*;

const SEED: u64 = 42;
const NODES: usize = 3;
const PER_TENANT: usize = 16;

/// One serving payload: the cache/routing key and the full prompt.
#[derive(Clone)]
struct Req {
    key: String,
    prompt: String,
}

/// Three tenants on distinct priority tiers sharing one question pool:
/// `enterprise` (interactive), `pro` (standard), `free` (batch, tightly
/// throttled). Keys are tenant-scoped so each tenant owns its cache
/// rows and the router spreads all three tenants across nodes.
fn workload() -> Vec<ServeRequest<Req>> {
    let qa = HotpotWorkload::generate(HotpotConfig {
        n: PER_TENANT,
        seed: SEED,
        ..Default::default()
    });
    let mut requests = Vec::new();
    for (i, item) in qa.items.iter().enumerate() {
        for (tenant, class) in [
            ("enterprise", Priority::Interactive),
            ("pro", Priority::Standard),
            ("free", Priority::Batch),
        ] {
            requests.push(
                ServeRequest::builder(
                    tenant,
                    Req {
                        key: format!("{tenant}/q{i}: {}", item.question),
                        prompt: item.prompt(),
                    },
                )
                .class(class)
                .batch_key("hotpot")
                .build()
                .expect("valid request"),
            );
        }
    }
    requests
}

fn main() {
    println!("multi_tenant_cluster: {NODES}-node QoS serving over sharded caches\n");

    let zoo = ModelZoo::standard(SEED);
    zoo.register_solver(Arc::new(QaSolver));
    let model = ModelStack::new(&zoo).build_arc();
    let requests = workload();
    let total = requests.len();

    // Each node owns a 2-stripe sharded cache over the shared model —
    // the cluster shards *state*, the zoo stays one billing domain.
    let cluster: Cluster<ConcurrentCachedLlm> = Cluster::with_nodes(SEED, NODES, |_, i| {
        ConcurrentCachedLlm::new(
            model.clone(),
            ShardedCache::new(
                CacheConfig { capacity: 256, seed: SEED + i as u64, ..Default::default() },
                2,
            ),
            None,
        )
    });

    // ---- 1. Deterministic, sticky routing. -------------------------
    let routes: Vec<usize> = requests.iter().map(|r| cluster.route(&r.payload.key)).collect();
    let again: Vec<usize> = requests.iter().map(|r| cluster.route(&r.payload.key)).collect();
    assert_eq!(routes, again, "routing must be a pure function of (seed, nodes, key)");
    let mut per_node = vec![0usize; NODES];
    for n in &routes {
        per_node[*n] += 1;
    }
    assert!(per_node.iter().all(|c| *c > 0), "every node must see traffic: {per_node:?}");
    println!("[1] rendezvous routing: {total} keys -> {per_node:?} (stable across passes)");

    // ---- 2. Cluster-wide quota reconciliation. ---------------------
    // `free` gets a tight bucket (burst 2, 1 job/sec refill) against a
    // 25 ms arrival cadence, so most of its traffic throttles; paying
    // tenants ride the generous default.
    let config = ServeConfig::builder()
        .workers(2)
        .max_batch(4)
        .seed(SEED)
        .arrival_interval_ms(25)
        .default_policy(TenantPolicy::per_sec(64, 1_000))
        .tenant_policy("free", TenantPolicy::per_sec(2, 1))
        .build()
        .expect("valid config");
    let ask = |_node: usize, llm: &ConcurrentCachedLlm, _class: &str, batch: &[Job<Req>]| {
        batch
            .iter()
            .map(|j| llm.ask(&j.payload.key, &j.payload.prompt, EntryKind::Original))
            .collect::<Vec<Result<_, ModelError>>>()
    };
    let key_of = |r: &ServeRequest<Req>| r.payload.key.clone();

    let pass1 = cluster.serve_routed(&config, requests.clone(), key_of, ask);
    let merged = pass1.merged_stats();
    assert_eq!(pass1.routed, routes, "serve_routed must agree with route()");
    assert_eq!(merged.submitted as usize, total);
    assert!(merged.reconciles(), "merged stats must reconcile: {merged:?}");
    for (name, stats) in &pass1.node_stats {
        assert!(stats.reconciles(), "{name} failed to reconcile: {stats:?}");
    }
    for tenant in ["enterprise", "pro", "free"] {
        let row = &merged.per_tenant[tenant];
        assert!(row.reconciles(), "tenant {tenant}: {row:?}");
        assert_eq!(row.submitted as usize, PER_TENANT, "tenant {tenant}");
    }
    assert_eq!(merged.per_tenant["enterprise"].admitted as usize, PER_TENANT);
    assert_eq!(merged.per_tenant["pro"].admitted as usize, PER_TENANT);
    let free = &merged.per_tenant["free"];
    assert!(free.rejected > 0, "the throttled tenant must hit its quota: {free:?}");
    for (i, d) in pass1.results.iter().enumerate() {
        if let Disposition::Rejected(e) = d {
            assert!(matches!(e, ServeError::Throttled { .. }), "job {i}: {e}");
            let hint = e.retry_after_ms().expect("throttle hints are finite here");
            assert!(hint > 0, "job {i}: zero retry hint");
        }
    }
    println!(
        "[2] quotas: enterprise {}/{}, pro {}/{}, free {}/{} admitted — all rows reconcile",
        merged.per_tenant["enterprise"].admitted,
        PER_TENANT,
        merged.per_tenant["pro"].admitted,
        PER_TENANT,
        free.admitted,
        PER_TENANT
    );

    // ---- 3. Cross-node cache invariant + repeat-pass reuse. --------
    let pass2 = cluster.serve_routed(&config, requests.clone(), key_of, ask);
    let admitted2 = pass2.merged_stats().admitted;
    assert_eq!(
        pass2.merged_stats().per_tenant,
        merged.per_tenant,
        "identical input + config must reproduce identical accounting"
    );
    let mut lookups = 0u64;
    let mut reuse = 0u64;
    for (i, node) in cluster.nodes().iter().enumerate() {
        for (s, shard) in node.state.cache().stats_per_shard().into_iter().enumerate() {
            assert!(shard.reconciles(), "node {i} shard {s}: {shard:?}");
        }
        let g = node.state.cache().stats();
        assert!(g.reconciles(), "node {i} global stats: {g:?}");
        lookups += g.lookups;
        reuse += g.reuse_hits;
    }
    assert_eq!(lookups, merged.admitted + admitted2, "every admitted job is one lookup");
    assert!(reuse >= admitted2, "the repeat pass must be served from cache: {reuse} < {admitted2}");
    println!(
        "[3] caches: {lookups} lookups across {NODES} nodes, {reuse} reuse hits \
         (>= {admitted2} repeat jobs), every shard reconciles"
    );

    // ---- 4. Streaming invariance across worker counts. -------------
    let stream_cfg = ServeConfig::builder().workers(1).seed(SEED).build().expect("valid");
    let stream_handler = |_class: &str, batch: &[Job<Req>]| {
        batch
            .iter()
            .map(|j| {
                model
                    .complete(&CompletionRequest::new(j.payload.prompt.clone()))
                    .map(|c| c.text)
            })
            .collect::<Vec<Result<String, ModelError>>>()
    };
    let collect = |workers: usize| -> Vec<Vec<String>> {
        let cfg = ServeConfig { workers, ..stream_cfg.clone() };
        serve_requests_streaming(&cfg, requests.clone(), stream_handler)
            .results
            .into_iter()
            .map(|d| {
                let Disposition::Done(Ok(handle)) = d else { panic!("stream job failed") };
                let prefixes: Vec<String> =
                    handle.prefixes().into_iter().map(str::to_string).collect();
                assert!(!prefixes.is_empty(), "completions are non-empty");
                for pair in prefixes.windows(2) {
                    assert!(
                        pair[1].starts_with(pair[0].as_str()),
                        "each prefix must extend the previous one"
                    );
                }
                assert_eq!(
                    prefixes.last().map(String::as_str),
                    Some(handle.final_text()),
                    "the last prefix is the whole completion"
                );
                prefixes
            })
            .collect()
    };
    let base = collect(1);
    for workers in [2usize, 8] {
        assert_eq!(collect(workers), base, "prefixes diverged at {workers} workers");
    }
    let chunks: usize = base.iter().map(Vec::len).sum();
    println!("[4] streaming: {chunks} chunks over {total} jobs, identical at 1/2/8 workers");

    // ---- 5. Outage shedding with window-shaped hints. --------------
    // An outage covering the whole run degrades capacity to 4; the
    // overflow sheds with hints pointing past the window's end.
    let shed_cfg = ServeConfig::builder()
        .workers(2)
        .seed(SEED)
        .arrival_interval_ms(10)
        .shed(ShedPolicy::new(vec![Window::new(0, 10_000)], 4))
        .build()
        .expect("valid config");
    let shed_run = cluster.serve_routed(&shed_cfg, requests.clone(), key_of, ask);
    let shed_stats = shed_run.merged_stats();
    assert!(shed_stats.reconciles(), "{shed_stats:?}");
    assert!(shed_stats.shed > 0, "a degraded run this saturated must shed: {shed_stats:?}");
    for d in &shed_run.results {
        if let Disposition::Rejected(e @ ServeError::Shed { .. }) = d {
            let hint = e.retry_after_ms().expect("shed always carries a hint");
            assert!(hint >= 1, "shed hints point past the outage");
        }
    }
    println!(
        "[5] outage: {} shed / {} submitted under degraded capacity, hints point past the window",
        shed_stats.shed, shed_stats.submitted
    );

    println!("\nmulti_tenant_cluster: all cluster QoS invariants hold");
}
