//! serving_pipeline — the concurrent serving layer, self-validated.
//!
//! Run with `cargo run -p llmdm --example serving_pipeline`.
//!
//! Drives a mixed HotpotQA + NL2SQL workload through `llmdm-serve`'s
//! scheduler — now via the typed [`ServeRequest`] surface (tenant +
//! priority class + batch key, built with `ServeRequest::builder`) —
//! over the simulated model zoo, then asserts the serving determinism
//! contract end to end:
//!
//! 1. **Admission is deterministic**: with `queue_capacity = C`, exactly
//!    the first `C` submissions are admitted and the rest rejected with a
//!    usable backpressure hint, regardless of worker count.
//! 2. **Batches are class-pure**: HotpotQA and NL2SQL jobs never share a
//!    coalesced dispatch, and batch sizes respect `max_batch`.
//! 3. **One worker ≡ direct loop**: single-worker serving is
//!    byte-identical (text, cost) to calling the model in a plain loop.
//! 4. **N workers, same answers**: 4-worker serving produces identical
//!    per-job results (the handler is pure per payload), and per-tenant
//!    accounting reconciles (`admitted + rejected + shed == submitted`).
//! 5. **Concurrent cache + exact dollars**: a 4-worker run through
//!    [`ConcurrentCachedLlm`] over a lock-striped [`ShardedCache`] keeps
//!    the per-shard AND global `reuse+augment+stale+misses == lookups`
//!    invariant, and the fault injector's executed cost reconciles with
//!    the usage meter to 1e-9.
//!
//! Exits non-zero on any violation — `scripts/verify.sh` runs it.

use std::sync::Arc;

use llmdm::cascade::{HotpotConfig, HotpotWorkload, QaSolver};
use llmdm::model::prelude::*;
use llmdm::nlq::{concert_domain, ExamplePool, Nl2SqlSolver, PromptBuilder, Workload, WorkloadConfig};
use llmdm::resil::FaultPlan;
use llmdm::semcache::{CacheConfig, ConcurrentCachedLlm, EntryKind, ShardedCache};
use llmdm::serve::prelude::*;

const SEED: u64 = 42;

/// One serving payload: the cache key and full model prompt (the
/// batching class now rides on the typed request).
#[derive(Clone)]
struct Req {
    key: String,
    prompt: String,
}

/// Interleaved HotpotQA and NL2SQL requests as typed submissions:
/// HotpotQA bills tenant `research` at interactive priority, NL2SQL
/// bills tenant `analytics` at batch priority; the batch key keeps the
/// two task families from ever coalescing together.
fn mixed_workload(zoo: &ModelZoo) -> Vec<ServeRequest<Req>> {
    zoo.register_solver(Arc::new(QaSolver));
    zoo.register_solver(Arc::new(Nl2SqlSolver));
    let hotpot = HotpotWorkload::generate(HotpotConfig { n: 24, seed: SEED, ..Default::default() });
    let nlq_db = concert_domain(SEED);
    let builder = PromptBuilder::new(ExamplePool::generate(SEED), nlq_db.schema_summary());
    let nlq = Workload::generate(WorkloadConfig { n: 16, seed: SEED, ..Default::default() });

    let mut jobs: Vec<ServeRequest<Req>> = Vec::new();
    let mut h = hotpot.items.iter();
    let mut n = nlq.queries.iter();
    // 3:2 interleave so classes alternate and coalescing has work to do.
    loop {
        let mut pushed = false;
        for item in h.by_ref().take(3) {
            jobs.push(
                ServeRequest::builder(
                    "research",
                    Req { key: item.question.clone(), prompt: item.prompt() },
                )
                .class(Priority::Interactive)
                .batch_key("hotpot")
                .build()
                .expect("valid request"),
            );
            pushed = true;
        }
        for q in n.by_ref().take(2) {
            jobs.push(
                ServeRequest::builder(
                    "analytics",
                    Req { key: q.text.clone(), prompt: builder.single(&q.text) },
                )
                .class(Priority::Batch)
                .batch_key("nl2sql")
                .build()
                .expect("valid request"),
            );
            pushed = true;
        }
        if !pushed {
            break;
        }
    }
    jobs
}

fn text_and_cost(r: &Result<Completion, ModelError>) -> (Option<(String, u64)>, bool) {
    match r {
        Ok(c) => (Some((c.text.clone(), c.cost.to_bits())), true),
        Err(_) => (None, false),
    }
}

fn main() {
    println!("serving_pipeline: mixed HotpotQA/NL2SQL workload through llmdm-serve\n");

    // ================================================================
    // Sections 1–4: a pure per-payload handler (direct model calls).
    // ================================================================
    let zoo = ModelZoo::standard(SEED);
    let jobs = mixed_workload(&zoo);
    let total = jobs.len();
    let model = ModelStack::new(&zoo).build_arc();
    let handler = |_class: &str, batch: &[Job<Req>]| -> Vec<Result<Completion, ModelError>> {
        batch
            .iter()
            .map(|j| model.complete(&CompletionRequest::new(j.payload.prompt.clone())))
            .collect()
    };

    // ---- 3. One worker ≡ direct loop. ------------------------------
    let direct: Vec<Result<Completion, ModelError>> = jobs
        .iter()
        .map(|r| model.complete(&CompletionRequest::new(r.payload.prompt.clone())))
        .collect();
    let one = serve_requests(
        &ServeConfig { workers: 1, seed: SEED, ..Default::default() },
        jobs.clone(),
        handler,
    );
    assert_eq!(one.stats.admitted as usize, total);
    for (i, d) in one.results.iter().enumerate() {
        let Disposition::Done(served) = d else { panic!("job {i} rejected") };
        assert_eq!(
            text_and_cost(served),
            text_and_cost(&direct[i]),
            "job {i}: 1-worker serve differs from the direct call path"
        );
    }
    println!("[3] 1-worker serve byte-identical to the direct loop over {total} jobs");

    // ---- 4. N workers: identical per-job results, reconciled tenants.
    let four = serve_requests(
        &ServeConfig { workers: 4, seed: SEED, ..Default::default() },
        jobs.clone(),
        handler,
    );
    assert_eq!(four.stats.per_worker_jobs.len(), 4);
    assert_eq!(four.stats.per_worker_jobs.iter().sum::<u64>() as usize, total);
    for (i, (a, b)) in one.results.iter().zip(&four.results).enumerate() {
        let (Disposition::Done(x), Disposition::Done(y)) = (a, b) else {
            panic!("job {i} rejected")
        };
        assert_eq!(text_and_cost(x), text_and_cost(y), "job {i}: 4-worker result differs");
    }
    assert!(four.stats.reconciles(), "per-tenant accounting must reconcile: {:?}", four.stats);
    assert_eq!(four.stats.per_tenant["research"].submitted, 24);
    assert_eq!(four.stats.per_tenant["analytics"].submitted, 16);
    println!("[4] 4-worker serve: same completions (split {:?})", four.stats.per_worker_jobs);

    // ---- 2. Batches are class-pure and bounded. --------------------
    let seen = std::sync::Mutex::new(Vec::<(String, usize)>::new());
    let batched = serve_requests(
        &ServeConfig { workers: 2, max_batch: 8, seed: SEED, ..Default::default() },
        jobs.clone(),
        |class: &str, batch: &[Job<Req>]| {
            assert!(
                batch.iter().all(|j| j.class == class),
                "mixed-class batch under class `{class}`"
            );
            seen.lock().unwrap().push((class.to_string(), batch.len()));
            batch
                .iter()
                .map(|j| model.complete(&CompletionRequest::new(j.payload.prompt.clone())))
                .collect()
        },
    );
    let seen = seen.into_inner().unwrap();
    assert!(seen.iter().all(|(_, n)| *n <= 8), "batch exceeded max_batch: {seen:?}");
    assert_eq!(batched.stats.batches as usize, seen.len());
    assert!(
        batched.stats.largest_batch >= 2,
        "coalescing never happened: largest={}",
        batched.stats.largest_batch
    );
    println!(
        "[2] {} class-pure batches over {} jobs (largest {})",
        batched.stats.batches, total, batched.stats.largest_batch
    );

    // ---- 1. Deterministic admission under backpressure. ------------
    let cap = total / 2;
    for workers in [1usize, 4] {
        let run = serve_requests(
            &ServeConfig { workers, queue_capacity: cap, seed: SEED, ..Default::default() },
            jobs.clone(),
            handler,
        );
        assert_eq!(run.stats.admitted as usize, cap, "workers={workers}");
        assert_eq!(run.stats.rejected as usize, total - cap, "workers={workers}");
        assert!(run.stats.reconciles(), "workers={workers}: {:?}", run.stats);
        for (i, d) in run.results.iter().enumerate() {
            assert_eq!(d.is_rejected(), i >= cap, "workers={workers} job {i}");
        }
        // A rejection maps cleanly onto the model-layer transient error,
        // sharing the retry-hint vocabulary (`retry_after_ms`).
        let Disposition::Rejected(e) = &run.results[cap] else { unreachable!() };
        let hint = e.retry_after_ms().expect("backpressure carries a retry hint");
        let mapped = ModelError::transient(TransientKind::Unavailable, hint);
        assert!(mapped.is_retryable() && e.is_retryable());
        assert_eq!(mapped.retry_after_ms(), Some(hint));
    }
    println!("[1] admission: first {cap} admitted, {} rejected, at 1 and 4 workers", total - cap);

    // ================================================================
    // Section 5: concurrent sharded cache + exact dollar accounting.
    // ================================================================
    let zoo2 = ModelZoo::standard(SEED);
    let jobs2 = mixed_workload(&zoo2);
    // Repeat the workload twice so the second pass produces reuse hits.
    let mut cached_jobs = jobs2.clone();
    cached_jobs.extend(jobs2.iter().cloned());
    let stack = ModelStack::new(&zoo2).with_faults(Arc::new(FaultPlan::none()));
    let faulty = stack.faulty().expect("with_faults applied").clone();
    let llm = ConcurrentCachedLlm::new(
        stack.build_arc(),
        ShardedCache::new(CacheConfig { capacity: 512, seed: SEED, ..Default::default() }, 4),
        None,
    );
    let run = serve_requests(
        &ServeConfig { workers: 4, max_batch: 4, seed: SEED, ..Default::default() },
        cached_jobs,
        |_class: &str, batch: &[Job<Req>]| {
            batch
                .iter()
                .map(|j| llm.ask(&j.payload.key, &j.payload.prompt, EntryKind::Original))
                .collect()
        },
    );
    assert_eq!(run.stats.admitted as usize, 2 * total);
    assert!(run.results.iter().all(|d| matches!(d, Disposition::Done(Ok(_)))));
    for (i, s) in llm.cache().stats_per_shard().into_iter().enumerate() {
        assert!(s.reconciles(), "shard {i} failed to reconcile: {s:?}");
    }
    let g = llm.cache().stats();
    assert!(g.reconciles(), "global cache stats failed to reconcile: {g:?}");
    assert_eq!(g.lookups as usize, 2 * total);
    assert!(g.reuse_hits as usize >= total / 2, "repeat pass must reuse: {g:?}");
    let executed = faulty.executed_cost();
    let metered = zoo2.meter().snapshot().total_dollars();
    let diff = (executed - metered).abs();
    assert!(diff < 1e-9, "executed ${executed:.9} != metered ${metered:.9}");
    println!(
        "[5] 4 workers × sharded cache: {} lookups, {} reuse hits, \
         executed ${executed:.6} == metered ${metered:.6}",
        g.lookups, g.reuse_hits
    );

    println!("\nserving_pipeline: all serving invariants hold");
}
