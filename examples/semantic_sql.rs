//! Semantic SQL walkthrough (DESIGN.md §14): `LLM_MAP`, `LLM_FILTER`,
//! and `LLM_JOIN … ON LLM_MATCH` as first-class plan operators. Queries
//! route model calls through the session [`ModelHandle`] — a full stack
//! (sim tier, retry, semantic cache) billed on a [`UsageMeter`] — and the
//! planner treats them like any other operator: it reorders cheap
//! relational predicates ahead of them, dedups identical prompts inside
//! each operator, estimates calls/dollars in `EXPLAIN`, and reconciles
//! actual calls/cache-hits/dollars per operator in `EXPLAIN ANALYZE`.
//!
//! Self-validations (the binary exits nonzero if any fails):
//! 1. end-to-end semantic queries return the expected rows;
//! 2. `EXPLAIN` shows cache-aware `est_calls`/`est_dollars` on semantic
//!    operators;
//! 3. `EXPLAIN ANALYZE` per-operator LLM counters sum to the query
//!    totals, and the dollars reconcile with the `UsageMeter` to 1e-9;
//! 4. prompt dedup bills one call per *distinct* input, and a warm-cache
//!    re-run bills zero calls and zero dollars;
//! 5. the planner path is bit-identical to the direct-execution oracle
//!    under the same seeded model.
//!
//! Run with `cargo run -p llmdm --example semantic_sql`.

use llmdm::sql::exec::{execute_select, execute_select_direct};
use llmdm::sql::{parse_statement, Database, ModelHandle, Statement, Value};

const SEED: u64 = 42;

fn demo_db(model: ModelHandle) -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE feedback (id INT, author TEXT, body TEXT, topic TEXT, stars INT); \
         CREATE TABLE features (fid INT, fname TEXT); \
         INSERT INTO feedback VALUES \
           (1, 'ana',  'great search, love it', 'search', 5), \
           (2, 'ben',  'terrible export, ugly', 'EXPORT', 1), \
           (3, 'cruz', 'great search, love it', 'search', 5), \
           (4, 'dee',  'fine i guess', 'search', 3), \
           (5, 'eli',  'great search, love it', 'search', 4), \
           (6, 'fay',  'the import wizard is awful', 'import  wizard', 2); \
         INSERT INTO features VALUES \
           (10, 'Search'), (11, 'Export'), (12, 'Import Wizard')",
    )
    .expect("fixture loads");
    db.set_model(model);
    db
}

fn query_text(db: &mut Database, sql: &str) -> Vec<String> {
    db.execute(sql)
        .expect("query runs")
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        })
        .collect()
}

/// Pull `key=<number>` (optionally `$`-prefixed) off an output line.
fn field_f64(line: &str, key: &str) -> f64 {
    let tail = line
        .split(&format!("{key}="))
        .nth(1)
        .unwrap_or_else(|| panic!("no {key} in: {line}"));
    let tail = tail.strip_prefix('$').unwrap_or(tail);
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().unwrap_or_else(|e| panic!("bad {key} in: {line} ({e})"))
}

fn main() {
    // ---- 1. End-to-end semantic queries. -----------------------------
    let handle = ModelHandle::sim(SEED);
    let mut db = demo_db(handle.clone());

    let rs = db
        .execute(
            "SELECT author FROM feedback \
             WHERE stars >= 2 AND LLM_FILTER(body, 'positive sentiment?') ORDER BY id",
        )
        .expect("semantic filter runs");
    let authors: Vec<&Value> = rs.rows.iter().map(|r| &r[0]).collect();
    assert_eq!(
        authors,
        [&Value::Str("ana".into()), &Value::Str("cruz".into()), &Value::Str("eli".into())],
        "sentiment filter picked the wrong rows"
    );
    println!("LLM_FILTER kept {} of 6 reviews", rs.rows.len());

    // Entity resolution: 'EXPORT' / 'import  wizard' / 'search' all
    // match their canonical feature names despite case and spacing.
    let rs = db
        .execute(
            "SELECT f.fname, COUNT(*) FROM features f LLM_JOIN feedback b \
             ON LLM_MATCH(f.fname, b.topic, 'same feature?') \
             GROUP BY f.fname ORDER BY f.fname",
        )
        .expect("semantic join runs");
    assert_eq!(rs.rows.len(), 3, "every feature should resolve at least one review");
    assert_eq!(
        rs.rows[2],
        vec![Value::Str("Search".into()), Value::Int(4)],
        "fuzzy topic variants should all land on Search"
    );
    println!("LLM_JOIN grouped {} feature(s)", rs.rows.len());

    // ---- 2. EXPLAIN: cache-aware cost estimates. ---------------------
    let plan = query_text(
        &mut db,
        "EXPLAIN SELECT LLM_MAP(body, 'sentiment') FROM feedback \
         WHERE stars > 1 AND LLM_FILTER(body, 'positive sentiment?')",
    );
    let est_lines: Vec<&String> = plan.iter().filter(|l| l.contains("est_calls=")).collect();
    assert!(
        est_lines.len() >= 2,
        "expected estimates on LlmMap and LlmFilter, got:\n{}",
        plan.join("\n")
    );
    for line in &est_lines {
        assert!(line.contains("est_dollars=$"), "estimate line lacks dollars: {line}");
        assert!(line.contains("cache_hit="), "estimate line lacks cache ratio: {line}");
    }
    // The reorder rule: the cheap `stars > 1` conjunct must sit *below*
    // the semantic filter in the optimized logical plan.
    let filter_pos = plan.iter().position(|l| l.trim_start().starts_with("LlmFilter"));
    let scan_pos = plan.iter().position(|l| l.contains("Filter stars >"));
    match (filter_pos, scan_pos) {
        (Some(f), Some(s)) => assert!(f < s, "cheap predicate not pushed below the LLM filter"),
        _ => {
            // The cheap conjunct may already be fused into the scan —
            // then only the LlmFilter node remains, which is the point.
            assert!(filter_pos.is_some(), "no LlmFilter node in:\n{}", plan.join("\n"));
        }
    }
    println!("EXPLAIN estimates:");
    for l in &est_lines {
        println!("  {}", l.trim_start());
    }

    // ---- 3. EXPLAIN ANALYZE reconciles with the meter. ---------------
    // Fresh handle: no warm cache, so the analyzed run bills real calls.
    let handle = ModelHandle::sim(SEED);
    let mut db = demo_db(handle.clone());
    let before = handle.meter().snapshot();
    let analyzed = query_text(
        &mut db,
        "EXPLAIN ANALYZE SELECT LLM_MAP(body, 'sentiment') FROM feedback \
         WHERE LLM_FILTER(body, 'positive sentiment?')",
    );
    let after = handle.meter().snapshot();
    let total_line = analyzed
        .iter()
        .find(|l| l.trim_start().starts_with("llm: "))
        .unwrap_or_else(|| panic!("no llm totals line in:\n{}", analyzed.join("\n")));
    let op_lines: Vec<&String> = analyzed.iter().filter(|l| l.contains("llm_calls=")).collect();
    assert!(op_lines.len() >= 2, "expected >=2 semantic operators:\n{}", analyzed.join("\n"));
    let op_calls: f64 = op_lines.iter().map(|l| field_f64(l, "llm_calls")).sum();
    let op_dollars: f64 = op_lines.iter().map(|l| field_f64(l, "dollars")).sum();
    let total_calls = field_f64(total_line, "calls");
    let total_dollars = field_f64(total_line, "dollars");
    assert_eq!(op_calls, total_calls, "per-operator calls don't sum to the total");
    assert!(
        (op_dollars - total_dollars).abs() < 1e-9,
        "per-operator dollars {op_dollars} don't sum to total {total_dollars}"
    );
    let meter_calls = (after.total_calls() - before.total_calls()) as f64;
    let meter_dollars = after.dollars_since(&before);
    assert_eq!(total_calls, meter_calls, "EXPLAIN ANALYZE calls disagree with the UsageMeter");
    assert!(
        (total_dollars - meter_dollars).abs() < 1e-9,
        "EXPLAIN ANALYZE dollars {total_dollars} disagree with the meter {meter_dollars}"
    );
    println!("EXPLAIN ANALYZE reconciled: {total_line}");
    println!("  meter: {meter_calls} calls, ${meter_dollars:.9}");

    // ---- 4. Dedup + cache savings. -----------------------------------
    // 6 rows but only 4 distinct bodies: the map operator must bill 4.
    let handle = ModelHandle::sim(SEED);
    let db = demo_db(handle.clone());
    let stmt = match parse_statement("SELECT LLM_MAP(body, 'sentiment') FROM feedback") {
        Ok(Statement::Select(s)) => s,
        other => panic!("parse: {other:?}"),
    };
    let before = handle.meter().snapshot();
    execute_select(&db, &stmt).expect("cold run");
    let after = handle.meter().snapshot();
    let cold_calls = after.total_calls() - before.total_calls();
    assert_eq!(cold_calls, 4, "dedup should bill one call per distinct body");
    let warm_before = handle.meter().snapshot();
    execute_select(&db, &stmt).expect("warm run");
    let warm_after = handle.meter().snapshot();
    assert_eq!(
        warm_after.total_calls(),
        warm_before.total_calls(),
        "warm-cache re-run billed model calls"
    );
    assert_eq!(warm_after.dollars_since(&warm_before), 0.0, "warm re-run billed dollars");
    println!("dedup: 6 rows -> {cold_calls} billed calls; warm re-run billed 0");

    // ---- 5. Planner ≡ direct oracle, bit for bit. --------------------
    let handle = ModelHandle::sim(SEED);
    let db = demo_db(handle);
    let workload = [
        "SELECT LLM_MAP(body, 'sentiment') FROM feedback",
        "SELECT author FROM feedback WHERE stars >= 2 AND LLM_FILTER(body, 'positive sentiment?')",
        "SELECT f.fname, b.author FROM features f LLM_JOIN feedback b \
         ON LLM_MATCH(f.fname, b.topic, 'same feature?') ORDER BY f.fid, b.id",
        "SELECT LLM_MAP(author, 'upper') FROM feedback ORDER BY LLM_MAP(author, 'lower') LIMIT 3",
    ];
    for sql in workload {
        let Statement::Select(stmt) = parse_statement(sql).expect("parses") else {
            unreachable!("workload is SELECT-only")
        };
        let planned = execute_select(&db, &stmt).expect("planner path executes");
        let direct = execute_select_direct(&db, &stmt).expect("direct oracle executes");
        assert!(
            planned.bit_eq(&direct),
            "planner/direct divergence on: {sql}\n planner: {planned:?}\n direct:  {direct:?}"
        );
        println!("agree ({} rows): {sql}", planned.rows.len());
    }
    println!("\nsemantic SQL: all 5 validations passed");
}
