//! Query-planner walkthrough (DESIGN.md §11): the sqlengine now lowers
//! every `SELECT` into a logical plan, runs rule-based rewrites
//! (constant folding, predicate pushdown, projection pruning, LIMIT →
//! top-k), and executes it through Volcano-style pull iterators. The
//! pre-planner direct executor is kept alive as a differential oracle.
//!
//! This example:
//! 1. shows `EXPLAIN` output — the logical plan after rewrites plus the
//!    physical operator tree — for a few representative queries;
//! 2. cross-checks the planner against the direct oracle bit-for-bit on
//!    a small workload (the same discipline `tests/differential.rs`
//!    applies at scale).
//!
//! Run with `cargo run -p llmdm --example query_planner`.

use llmdm::sql::exec::{execute_select, execute_select_direct};
use llmdm::sql::{parse_statement, Database, Statement, Value};

fn demo_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE stadium (stadium_id INT, name TEXT, capacity INT, city TEXT); \
         CREATE TABLE concert (concert_id INT, stadium_id INT, year INT, attendance INT); \
         INSERT INTO stadium VALUES \
           (1, 'Balmoor', 4000, 'Peterhead'), \
           (2, 'Glebe Park', 4000, 'Brechin'), \
           (3, 'Hampden Park', 52500, 'Glasgow'), \
           (4, 'Recreation Park', 3960, 'Alloa'); \
         INSERT INTO concert VALUES \
           (1, 3, 2014, 41000), \
           (2, 3, 2015, 50200), \
           (3, 1, 2014, 2800), \
           (4, 2, 2016, NULL), \
           (5, 4, 2015, 1200)",
    )
    .expect("fixture loads");
    db
}

fn explain(db: &mut Database, sql: &str) {
    println!("EXPLAIN {sql}");
    let rs = db.execute(&format!("EXPLAIN {sql}")).expect("EXPLAIN succeeds");
    for row in &rs.rows {
        match &row[0] {
            Value::Str(line) => println!("  {line}"),
            other => println!("  {other}"),
        }
    }
    println!();
}

fn main() {
    let mut db = demo_db();

    // 1. EXPLAIN: what the rewriter did is visible in the logical plan
    //    (the tautology folded away, predicates fused into the scan, the
    //    LIMIT pushed into the sort as a top-k fetch).
    explain(
        &mut db,
        "SELECT name, capacity FROM stadium WHERE capacity > 2000 + 2000 AND 1 = 1",
    );
    explain(
        &mut db,
        "SELECT s.name, c.year FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id \
         WHERE s.capacity > 4000 AND c.year >= 2015",
    );
    explain(&mut db, "SELECT name FROM stadium ORDER BY capacity DESC LIMIT 2");

    // 2. Differential check: planner ≡ direct oracle, bit for bit.
    let workload = [
        "SELECT name, capacity FROM stadium WHERE capacity > 2000 + 2000 AND 1 = 1",
        "SELECT s.name, c.year FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id \
         WHERE s.capacity > 4000 AND c.year >= 2015",
        "SELECT name FROM stadium ORDER BY capacity DESC LIMIT 2",
        "SELECT s.city, COUNT(*), MAX(c.attendance) FROM stadium s \
         LEFT JOIN concert c ON s.stadium_id = c.stadium_id \
         GROUP BY s.city ORDER BY COUNT(*) DESC, s.city",
        "SELECT DISTINCT year FROM concert WHERE attendance IS NOT NULL ORDER BY year",
        "SELECT name FROM stadium WHERE stadium_id IN \
         (SELECT stadium_id FROM concert WHERE year = 2014)",
    ];
    let mut checked = 0usize;
    for sql in workload {
        let Statement::Select(stmt) = parse_statement(sql).expect("parses") else {
            unreachable!("workload is SELECT-only")
        };
        let planned = execute_select(&db, &stmt).expect("planner path executes");
        let direct = execute_select_direct(&db, &stmt).expect("direct oracle executes");
        assert!(
            planned.bit_eq(&direct),
            "planner/direct divergence on: {sql}\n planner: {planned:?}\n direct:  {direct:?}"
        );
        checked += 1;
        println!("agree ({} rows): {sql}", planned.rows.len());
    }
    assert_eq!(checked, workload.len());
    println!("\nplanner matched the direct oracle on all {checked} queries");
}
