//! Trace the whole Figure-1 pipeline and export it two ways.
//!
//! Run with `cargo run -p llmdm --example trace_pipeline`.
//!
//! Enables the global `llmdm-obs` recorder, drives every paper mechanism —
//! the four Figure-1 stages, SQL execution, a cascade, a semantic cache in
//! front of vector search, and NL2SQL decomposition — then writes:
//!
//! * `TRACE_pipeline.json` — machine-readable spans + counters +
//!   histograms (stamped with git rev/seed/timestamp), with the semantic
//!   cache's [`CacheStats`] embedded as a `semcache` section;
//! * a human-readable flame-style tree on stdout.
//!
//! The example validates its own output (re-parses the JSON, checks that
//! spans from at least six crates are present, that histograms carry
//! p50/p99, and that model spans carry token/cost fields) and exits
//! non-zero on any failure — `scripts/verify.sh` runs it as a smoke test.



use llmdm::cascade::{CascadeRouter, DecisionModel, HotpotConfig, HotpotWorkload};
use llmdm::model::prelude::*;
use llmdm::nlq::{ExamplePool, PromptBuilder, Workload, WorkloadConfig};
use llmdm::obs::Report;
use llmdm::rt::json::{Json, ToJson};
use llmdm::semcache::{CacheConfig, CachedLlm, EntryKind, SemanticCache};
use llmdm::transform::Grid;
use llmdm::DataManager;

const SEED: u64 = 42;

fn main() {
    llmdm::obs::enable();
    llmdm::obs::reset();

    let cache_stats = {
        let _run = llmdm::obs::span("core.pipeline.run");
        run_pipeline()
    };

    let report = llmdm::obs::snapshot();
    let extra =
        vec![("semcache".to_string(), cache_stats.to_json())];
    let dir = std::env::var_os("LLMDM_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = report
        .write_trace(&dir, "pipeline", Some(SEED), &extra)
        .expect("trace written");

    println!("{}", report.render_text());
    println!("wrote {}", path.display());

    validate(&report, &path);
    println!("trace validated: {} spans across crates {:?}", report.spans.len(), report.span_crates());
}

/// Drive every instrumented subsystem once; returns the cache stats for
/// embedding in the trace.
fn run_pipeline() -> llmdm::semcache::CacheStats {
    // ---- Transformation: JSON + messy spreadsheet ingestion. ----
    let mut dm = DataManager::new(SEED);
    dm.ingest_json(
        "orders",
        r#"[{"id": 1, "customer": "alice", "total": 120},
            {"id": 2, "customer": "bob", "total": 80},
            {"id": 3, "customer": "alice", "total": 95}]"#,
    )
    .expect("json ingests");
    let grid: Grid = vec![
        vec!["Quarterly Report".into(), "".into(), "".into()],
        vec!["product".into(), "region".into(), "units".into()],
        vec!["widget".into(), "east".into(), "10".into()],
        vec!["gadget".into(), "west".into(), "20".into()],
    ];
    dm.ingest_spreadsheet("sales", &grid).expect("spreadsheet ingests");

    // ---- Integration: clean. ----
    dm.clean_table("orders", &[("customer", "customer")]).expect("clean runs");

    // ---- Exploration: lake + search. ----
    dm.build_lake(&[("notes", "alice is our best customer")]).expect("lake builds");
    dm.lake().search("best customer alice", 2).expect("lake searches");

    // ---- Generation: SQL synthesis + execution through the engine. ----
    dm.generate_sql(4);
    dm.database_mut()
        .query("SELECT customer, SUM(total) FROM orders GROUP BY customer")
        .expect("sql executes");

    // ---- Cascade over a QA workload. ----
    let zoo = dm.zoo();
    let workload =
        HotpotWorkload::generate(HotpotConfig { n: 8, seed: SEED, ..Default::default() });
    let router = CascadeRouter::new(zoo.cascade_order(), DecisionModel::new(), 0.55);
    for item in &workload.items {
        router.answer(&item.prompt()).expect("cascade answers");
    }

    // ---- Semantic cache in front of NL2SQL (vecdb underneath). ----
    // The cache keys on the user question (not the full prompt), so it
    // stays a `CachedLlm` — but the model behind it is composed with the
    // ModelStack builder, the workspace-standard way to assemble
    // decorator chains.
    let nlq_db = llmdm::nlq::concert_domain(SEED);
    let builder = PromptBuilder::new(ExamplePool::generate(SEED), nlq_db.schema_summary());
    let stacked = ModelStack::tier(zoo, ModelTier::Large).with_default_retry().build_arc();
    let mut cached = CachedLlm::new_dyn(
        stacked,
        SemanticCache::new(CacheConfig { seed: SEED, ..Default::default() }),
        None,
    );
    let nlq_workload =
        Workload::generate(WorkloadConfig { n: 6, seed: SEED, ..Default::default() });
    for q in &nlq_workload.queries {
        let prompt = builder.single(&q.text);
        cached.ask(&q.text, &prompt, EntryKind::Original).expect("cached ask");
    }
    // Repeat the first query verbatim: a guaranteed reuse hit.
    if let Some(q) = nlq_workload.queries.first() {
        let prompt = builder.single(&q.text);
        cached.ask(&q.text, &prompt, EntryKind::Original).expect("cached ask");
    }

    // ---- NL2SQL decomposition fan-out. ----
    llmdm::nlq::run_decomposition(&nlq_db, &nlq_workload.queries, zoo, &builder);

    cached.cache().stats()
}

/// Assert the acceptance criteria on the emitted report + file.
fn validate(report: &Report, path: &std::path::Path) {
    // 1. Spans from at least six distinct crates.
    let crates = report.span_crates();
    for required in ["model", "cascade", "semcache", "vecdb", "sqlengine", "core"] {
        assert!(crates.contains(required), "missing spans from crate `{required}`: {crates:?}");
    }
    assert!(crates.len() >= 6, "need >= 6 crates, got {crates:?}");

    // 2. The file re-parses via llmdm_rt::json and carries the meta stamp.
    let text = std::fs::read_to_string(path).expect("trace file readable");
    let parsed = Json::parse(&text).expect("trace JSON parses");
    assert_eq!(parsed.get("kind").and_then(|k| k.as_str().ok()), Some("llmdm-trace"));
    let meta = parsed.get("meta").expect("meta object");
    assert_eq!(meta.get("seed").unwrap().as_u64().unwrap(), SEED);
    assert!(meta.get("timestamp_unix").unwrap().as_u64().unwrap() > 0);

    // 3. Histograms report quantiles (p50/p99 present and ordered).
    let hists = parsed.get("histograms").expect("histograms object");
    let latency = hists.get("model.latency_ms").expect("model latency histogram");
    let p50 = latency.get("p50").unwrap().as_f64().unwrap();
    let p99 = latency.get("p99").unwrap().as_f64().unwrap();
    assert!(p50 > 0.0 && p99 >= p50, "quantiles p50={p50} p99={p99}");

    // 4. Model spans carry per-call token/cost fields.
    let spans = match parsed.get("spans") {
        Some(Json::Arr(items)) => items,
        other => panic!("spans must be an array, got {other:?}"),
    };
    let model_span = spans
        .iter()
        .find(|s| s.get("name").and_then(|n| n.as_str().ok()) == Some("model.complete"))
        .expect("at least one model.complete span");
    let fields = model_span.get("fields").expect("span fields");
    for key in ["model", "tokens_in", "tokens_out", "cost_usd", "latency_ms"] {
        assert!(fields.get(key).is_some(), "model span missing field `{key}`");
    }

    // 5. Cache section embedded, counters reconciled with the meter side.
    let sem = parsed.get("semcache").expect("semcache stats section");
    assert!(sem.get("hit_ratio").unwrap().as_f64().unwrap() > 0.0, "reuse hit must register");
    let counters = parsed.get("counters").expect("counters object");
    assert!(counters.get("model.calls").unwrap().as_f64().unwrap() > 0.0);
    assert!(counters.get("model.cost_usd").unwrap().as_f64().unwrap() > 0.0);
}
